//! HIR dialect registration: op names, attribute keys, op specs and
//! structural verifiers (paper Table 2).

use crate::types::{self, MemKind, MemrefInfo};
use ir::{
    traits, Arity, Attribute, Diagnostic, DiagnosticEngine, Dialect, DialectRegistry, Module, OpId,
    OpSpec,
};

/// Fully-qualified HIR operation names.
pub mod opname {
    pub const FUNC: &str = "hir.func";
    pub const FOR: &str = "hir.for";
    pub const UNROLL_FOR: &str = "hir.unroll_for";
    pub const YIELD: &str = "hir.yield";
    pub const RETURN: &str = "hir.return";
    pub const CALL: &str = "hir.call";
    pub const IF: &str = "hir.if";
    pub const CONSTANT: &str = "hir.constant";
    pub const DELAY: &str = "hir.delay";
    pub const ALLOC: &str = "hir.alloc";
    pub const MEM_READ: &str = "hir.mem_read";
    pub const MEM_WRITE: &str = "hir.mem_write";
    pub const ADD: &str = "hir.add";
    pub const SUB: &str = "hir.sub";
    pub const MULT: &str = "hir.mult";
    pub const AND: &str = "hir.and";
    pub const OR: &str = "hir.or";
    pub const XOR: &str = "hir.xor";
    pub const NOT: &str = "hir.not";
    pub const SHL: &str = "hir.shl";
    pub const SHR: &str = "hir.shr";
    pub const CMP: &str = "hir.cmp";
    pub const SELECT: &str = "hir.select";
    pub const TRUNC: &str = "hir.trunc";
    pub const ZEXT: &str = "hir.zext";
    pub const SEXT: &str = "hir.sext";
    pub const SLICE: &str = "hir.slice";
}

/// Attribute keys used by HIR ops.
pub mod attrkey {
    /// Static cycle offset from the op's time operand.
    pub const OFFSET: &str = "offset";
    /// Delay amount of `hir.delay`.
    pub const BY: &str = "by";
    /// Callee symbol of `hir.call`.
    pub const CALLEE: &str = "callee";
    /// Constant payload of `hir.constant`.
    pub const VALUE: &str = "value";
    /// Unroll-loop static bounds.
    pub const LB: &str = "lb";
    pub const UB: &str = "ub";
    pub const STEP: &str = "step";
    /// Memory kind of `hir.alloc` (`reg`/`lutram`/`bram`).
    pub const KIND: &str = "kind";
    /// Comparison predicate of `hir.cmp` (`eq`,`ne`,`lt`,`le`,`gt`,`ge`).
    pub const PREDICATE: &str = "predicate";
    /// Bit-slice bounds of `hir.slice`.
    pub const HI: &str = "hi";
    pub const LO: &str = "lo";
    /// Function metadata.
    pub const RESULT_DELAYS: &str = "result_delays";
    pub const ARG_DELAYS: &str = "arg_delays";
    pub const ARG_NAMES: &str = "arg_names";
    /// Marks an external (blackbox Verilog) function.
    pub const EXTERNAL: &str = "external";
    /// Signature attrs for external functions (which have no region).
    pub const ARG_TYPES: &str = "arg_types";
    pub const RESULT_TYPES: &str = "result_types";
}

/// Comparison predicates for `hir.cmp`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpPredicate {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpPredicate {
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpPredicate::Eq => "eq",
            CmpPredicate::Ne => "ne",
            CmpPredicate::Lt => "lt",
            CmpPredicate::Le => "le",
            CmpPredicate::Gt => "gt",
            CmpPredicate::Ge => "ge",
        }
    }

    pub fn from_mnemonic(s: &str) -> Option<Self> {
        match s {
            "eq" => Some(CmpPredicate::Eq),
            "ne" => Some(CmpPredicate::Ne),
            "lt" => Some(CmpPredicate::Lt),
            "le" => Some(CmpPredicate::Le),
            "gt" => Some(CmpPredicate::Gt),
            "ge" => Some(CmpPredicate::Ge),
            _ => None,
        }
    }

    /// Evaluate on signed integers.
    pub fn eval(self, a: i128, b: i128) -> bool {
        match self {
            CmpPredicate::Eq => a == b,
            CmpPredicate::Ne => a != b,
            CmpPredicate::Lt => a < b,
            CmpPredicate::Le => a <= b,
            CmpPredicate::Gt => a > b,
            CmpPredicate::Ge => a >= b,
        }
    }
}

/// Build the HIR dialect with all op specs and verifiers.
pub fn hir_dialect() -> Dialect {
    let mut d = Dialect::new("hir");
    d.add_op(
        OpSpec::new(opname::FUNC)
            .with_traits(traits::SYMBOL | traits::TIME_SCOPE)
            .with_operands(Arity::Exact(0))
            .with_results(Arity::Exact(0))
            .with_regions(Arity::Any)
            .with_verifier(verify_func)
            .with_summary("hardware function; entry block args are (args..., %t: !hir.time)"),
    );
    d.add_op(
        OpSpec::new(opname::FOR)
            .with_traits(traits::TIME_SCOPE)
            .with_operands(Arity::Exact(4))
            .with_results(Arity::Exact(1))
            .with_regions(Arity::Exact(1))
            .with_verifier(verify_for)
            .with_summary("sequential/pipelined loop with explicit iteration schedule"),
    );
    d.add_op(
        OpSpec::new(opname::UNROLL_FOR)
            .with_traits(traits::TIME_SCOPE)
            .with_operands(Arity::Exact(1))
            .with_results(Arity::Exact(1))
            .with_regions(Arity::Exact(1))
            .with_verifier(verify_unroll_for)
            .with_summary("fully unrolled loop; body replicated in hardware"),
    );
    d.add_op(
        OpSpec::new(opname::YIELD)
            .with_operands(Arity::Exact(1))
            .with_results(Arity::Exact(0))
            .with_verifier(verify_yield)
            .with_summary("schedules the start of the next loop iteration"),
    );
    d.add_op(
        OpSpec::new(opname::RETURN)
            .with_traits(traits::TERMINATOR)
            .with_summary("terminates a function body"),
    );
    d.add_op(
        OpSpec::new(opname::CALL)
            .with_traits(traits::MEMORY_EFFECT)
            .with_operands(Arity::AtLeast(1))
            .with_verifier(verify_call)
            .with_summary("invoke an HIR function or external Verilog module"),
    );
    d.add_op(
        OpSpec::new(opname::IF)
            .with_operands(Arity::Exact(2))
            .with_results(Arity::Exact(0))
            .with_regions(Arity::AtLeast(1))
            .with_verifier(verify_if)
            .with_summary("conditional execution; branches share the schedule"),
    );
    d.add_op(
        OpSpec::new(opname::CONSTANT)
            .with_traits(traits::PURE | traits::CONSTANT_LIKE)
            .with_operands(Arity::Exact(0))
            .with_results(Arity::Exact(1))
            .with_verifier(verify_constant)
            .with_summary("compile-time constant"),
    );
    d.add_op(
        OpSpec::new(opname::DELAY)
            .with_operands(Arity::Exact(2))
            .with_results(Arity::Exact(1))
            .with_verifier(verify_delay)
            .with_summary("delay a value by a fixed number of cycles (shift register)"),
    );
    d.add_op(
        OpSpec::new(opname::ALLOC)
            .with_operands(Arity::Exact(0))
            .with_results(Arity::AtLeast(1))
            .with_verifier(verify_alloc)
            .with_summary("allocate an on-chip tensor; each result is one port"),
    );
    d.add_op(
        OpSpec::new(opname::MEM_READ)
            .with_traits(traits::MEMORY_EFFECT)
            .with_operands(Arity::AtLeast(2))
            .with_results(Arity::Exact(1))
            .with_verifier(verify_mem_read)
            .with_summary("scheduled read through a memref port"),
    );
    d.add_op(
        OpSpec::new(opname::MEM_WRITE)
            .with_traits(traits::MEMORY_EFFECT)
            .with_operands(Arity::AtLeast(3))
            .with_results(Arity::Exact(0))
            .with_verifier(verify_mem_write)
            .with_summary("scheduled write through a memref port (1 cycle)"),
    );

    for (name, commutative) in [
        (opname::ADD, true),
        (opname::SUB, false),
        (opname::MULT, true),
        (opname::AND, true),
        (opname::OR, true),
        (opname::XOR, true),
        (opname::SHL, false),
        (opname::SHR, false),
    ] {
        let mut t = traits::PURE;
        if commutative {
            t |= traits::COMMUTATIVE;
        }
        d.add_op(
            OpSpec::new(name)
                .with_traits(t)
                .with_operands(Arity::Exact(2))
                .with_results(Arity::Exact(1))
                .with_verifier(verify_binary)
                .with_summary("combinational arithmetic/logic"),
        );
    }
    d.add_op(
        OpSpec::new(opname::NOT)
            .with_traits(traits::PURE)
            .with_operands(Arity::Exact(1))
            .with_results(Arity::Exact(1))
            .with_summary("combinational bitwise not"),
    );
    d.add_op(
        OpSpec::new(opname::CMP)
            .with_traits(traits::PURE)
            .with_operands(Arity::Exact(2))
            .with_results(Arity::Exact(1))
            .with_verifier(verify_cmp)
            .with_summary("combinational comparison producing i1"),
    );
    d.add_op(
        OpSpec::new(opname::SELECT)
            .with_traits(traits::PURE)
            .with_operands(Arity::Exact(3))
            .with_results(Arity::Exact(1))
            .with_verifier(verify_select)
            .with_summary("2:1 multiplexer"),
    );
    for name in [opname::TRUNC, opname::ZEXT, opname::SEXT] {
        d.add_op(
            OpSpec::new(name)
                .with_traits(traits::PURE)
                .with_operands(Arity::Exact(1))
                .with_results(Arity::Exact(1))
                .with_verifier(verify_cast)
                .with_summary("combinational width cast"),
        );
    }
    d.add_op(
        OpSpec::new(opname::SLICE)
            .with_traits(traits::PURE)
            .with_operands(Arity::Exact(1))
            .with_results(Arity::Exact(1))
            .with_verifier(verify_slice)
            .with_summary("combinational bit slice [hi:lo]"),
    );
    d
}

/// Build a registry with the HIR dialect loaded.
pub fn hir_registry() -> DialectRegistry {
    let mut reg = DialectRegistry::new();
    reg.register(hir_dialect());
    reg
}

// ------------------------------------------------------------ verifier impls

fn err(m: &Module, op: OpId, diags: &mut DiagnosticEngine, msg: String) {
    diags.emit(
        Diagnostic::error(m.op(op).loc().clone(), msg)
            .with_snippet(crate::pretty::pretty_op(m, op)),
    );
}

fn is_int_like(ty: &ir::Type) -> bool {
    ty.is_integer() || types::is_const(ty)
}

fn has_int_attr(m: &Module, op: OpId, key: &str) -> bool {
    m.op(op).attr(key).and_then(|a| a.as_int()).is_some()
}

fn verify_func(m: &Module, op: OpId, diags: &mut DiagnosticEngine) {
    let data = m.op(op);
    if data.attr(ir::SYM_NAME).and_then(|a| a.as_str()).is_none() {
        err(
            m,
            op,
            diags,
            "hir.func requires a 'sym_name' string attribute".into(),
        );
        return;
    }
    let external = data.attr(attrkey::EXTERNAL).is_some();
    if external {
        if !data.regions().is_empty() {
            err(
                m,
                op,
                diags,
                "external hir.func must not have a body".into(),
            );
        }
        if data
            .attr(attrkey::ARG_TYPES)
            .and_then(|a| a.as_array())
            .is_none()
            || data
                .attr(attrkey::RESULT_TYPES)
                .and_then(|a| a.as_array())
                .is_none()
        {
            err(
                m,
                op,
                diags,
                "external hir.func requires 'arg_types' and 'result_types'".into(),
            );
        }
        return;
    }
    if data.regions().len() != 1 {
        err(m, op, diags, "hir.func requires exactly one region".into());
        return;
    }
    let region = data.regions()[0];
    let blocks = m.region(region).blocks();
    if blocks.len() != 1 {
        err(m, op, diags, "hir.func body must be a single block".into());
        return;
    }
    let entry = blocks[0];
    match m.block(entry).args().last() {
        Some(&last) if types::is_time(&m.value_type(last)) => {}
        _ => err(
            m,
            op,
            diags,
            "hir.func entry block's last argument must be !hir.time".into(),
        ),
    }
    match m.block(entry).ops().last() {
        Some(&last) if m.op(last).name().as_str() == opname::RETURN => {}
        _ => err(
            m,
            op,
            diags,
            "hir.func body must end with hir.return".into(),
        ),
    }
}

fn verify_for(m: &Module, op: OpId, diags: &mut DiagnosticEngine) {
    let data = m.op(op);
    if data.operands().len() != 4 {
        return; // arity already reported
    }
    for (i, label) in ["lower bound", "upper bound", "step"].iter().enumerate() {
        let t = m.value_type(data.operands()[i]);
        if !is_int_like(&t) {
            err(
                m,
                op,
                diags,
                format!("hir.for {label} must be integer or !hir.const, got {t}"),
            );
        }
    }
    let t = m.value_type(data.operands()[3]);
    if !types::is_time(&t) {
        err(
            m,
            op,
            diags,
            format!("hir.for time operand must be !hir.time, got {t}"),
        );
    }
    if !has_int_attr(m, op, attrkey::OFFSET) {
        err(
            m,
            op,
            diags,
            "hir.for requires an integer 'offset' attribute".into(),
        );
    }
    if !types::is_time(&m.value_type(data.results()[0])) {
        err(
            m,
            op,
            diags,
            "hir.for result must be !hir.time (loop completion time)".into(),
        );
    }
    verify_loop_body(m, op, diags, false);
}

fn verify_unroll_for(m: &Module, op: OpId, diags: &mut DiagnosticEngine) {
    let data = m.op(op);
    for key in [attrkey::LB, attrkey::UB, attrkey::STEP] {
        if !has_int_attr(m, op, key) {
            err(
                m,
                op,
                diags,
                format!("hir.unroll_for requires integer '{key}' attribute"),
            );
        }
    }
    if let Some(step) = data.attr(attrkey::STEP).and_then(|a| a.as_int()) {
        if step <= 0 {
            err(m, op, diags, "hir.unroll_for step must be positive".into());
        }
    }
    if data.operands().len() == 1 && !types::is_time(&m.value_type(data.operands()[0])) {
        err(
            m,
            op,
            diags,
            "hir.unroll_for time operand must be !hir.time".into(),
        );
    }
    verify_loop_body(m, op, diags, true);
}

fn verify_loop_body(m: &Module, op: OpId, diags: &mut DiagnosticEngine, unroll: bool) {
    let data = m.op(op);
    let Some(&region) = data.regions().first() else {
        return;
    };
    let blocks = m.region(region).blocks();
    if blocks.len() != 1 {
        err(
            m,
            op,
            diags,
            format!("{} body must be a single block", data.name()),
        );
        return;
    }
    let entry = blocks[0];
    let args = m.block(entry).args();
    if args.len() != 2 {
        err(
            m,
            op,
            diags,
            format!(
                "{} body must take (induction variable, !hir.time) arguments",
                data.name()
            ),
        );
        return;
    }
    let iv_ty = m.value_type(args[0]);
    let iv_ok = if unroll {
        types::is_const(&iv_ty)
    } else {
        iv_ty.is_integer()
    };
    if !iv_ok {
        err(
            m,
            op,
            diags,
            format!(
                "{} induction variable must be {}, got {iv_ty}",
                data.name(),
                if unroll {
                    "!hir.const"
                } else {
                    "an integer type"
                }
            ),
        );
    }
    if !types::is_time(&m.value_type(args[1])) {
        err(
            m,
            op,
            diags,
            format!("{} iteration time must be !hir.time", data.name()),
        );
    }
    let yields = m
        .block(entry)
        .ops()
        .iter()
        .filter(|&&o| m.op(o).name().as_str() == opname::YIELD)
        .count();
    if yields != 1 {
        err(
            m,
            op,
            diags,
            format!(
                "{} body must contain exactly one hir.yield, found {yields}",
                data.name()
            ),
        );
    }
}

fn verify_yield(m: &Module, op: OpId, diags: &mut DiagnosticEngine) {
    let data = m.op(op);
    if !types::is_time(&m.value_type(data.operands()[0])) {
        err(m, op, diags, "hir.yield operand must be !hir.time".into());
    }
    if !has_int_attr(m, op, attrkey::OFFSET) {
        err(
            m,
            op,
            diags,
            "hir.yield requires an integer 'offset' attribute".into(),
        );
    }
}

fn verify_call(m: &Module, op: OpId, diags: &mut DiagnosticEngine) {
    let data = m.op(op);
    if data
        .attr(attrkey::CALLEE)
        .and_then(|a| a.as_symbol())
        .is_none()
    {
        err(
            m,
            op,
            diags,
            "hir.call requires a 'callee' symbol attribute".into(),
        );
    }
    match data.operands().last() {
        Some(&last) if types::is_time(&m.value_type(last)) => {}
        _ => err(
            m,
            op,
            diags,
            "hir.call's last operand must be the !hir.time start".into(),
        ),
    }
    if !has_int_attr(m, op, attrkey::OFFSET) {
        err(
            m,
            op,
            diags,
            "hir.call requires an integer 'offset' attribute".into(),
        );
    }
}

fn verify_if(m: &Module, op: OpId, diags: &mut DiagnosticEngine) {
    let data = m.op(op);
    if m.value_type(data.operands()[0]) != ir::Type::i1() {
        err(m, op, diags, "hir.if condition must be i1".into());
    }
    if !types::is_time(&m.value_type(data.operands()[1])) {
        err(m, op, diags, "hir.if time operand must be !hir.time".into());
    }
    if data.regions().len() > 2 {
        err(
            m,
            op,
            diags,
            "hir.if takes a then region and an optional else region".into(),
        );
    }
}

fn verify_constant(m: &Module, op: OpId, diags: &mut DiagnosticEngine) {
    let data = m.op(op);
    let Some(value) = data.attr(attrkey::VALUE) else {
        err(
            m,
            op,
            diags,
            "hir.constant requires a 'value' attribute".into(),
        );
        return;
    };
    let ty = m.value_type(data.results()[0]);
    let ok = match value {
        Attribute::Int(..) => is_int_like(&ty),
        Attribute::Float(..) => ty.is_float(),
        _ => false,
    };
    if !ok {
        err(
            m,
            op,
            diags,
            format!("hir.constant value does not match result type {ty}"),
        );
    }
}

fn verify_delay(m: &Module, op: OpId, diags: &mut DiagnosticEngine) {
    let data = m.op(op);
    if !types::is_time(&m.value_type(data.operands()[1])) {
        err(
            m,
            op,
            diags,
            "hir.delay second operand must be !hir.time".into(),
        );
    }
    match data.attr(attrkey::BY).and_then(|a| a.as_int()) {
        Some(by) if by >= 0 => {}
        Some(_) => err(m, op, diags, "hir.delay 'by' must be non-negative".into()),
        None => err(
            m,
            op,
            diags,
            "hir.delay requires an integer 'by' attribute".into(),
        ),
    }
    let in_ty = m.value_type(data.operands()[0]);
    let out_ty = m.value_type(data.results()[0]);
    if in_ty != out_ty {
        err(
            m,
            op,
            diags,
            format!("hir.delay result type {out_ty} must match input {in_ty}"),
        );
    }
}

fn verify_alloc(m: &Module, op: OpId, diags: &mut DiagnosticEngine) {
    let data = m.op(op);
    let Some(kind) = data
        .attr(attrkey::KIND)
        .and_then(|a| a.as_str())
        .and_then(MemKind::from_mnemonic)
    else {
        err(
            m,
            op,
            diags,
            "hir.alloc requires a 'kind' attribute (reg/lutram/bram)".into(),
        );
        return;
    };
    let mut infos = Vec::new();
    for &r in data.results() {
        let ty = m.value_type(r);
        match MemrefInfo::from_type(&ty) {
            Some(info) => infos.push(info),
            None => {
                err(
                    m,
                    op,
                    diags,
                    format!("hir.alloc results must be memrefs, got {ty}"),
                );
                return;
            }
        }
    }
    for info in &infos {
        if info.kind != kind {
            err(
                m,
                op,
                diags,
                format!(
                    "hir.alloc kind '{kind}' does not match port kind '{}'",
                    info.kind
                ),
            );
        }
        if info.dims != infos[0].dims || info.elem != infos[0].elem {
            err(
                m,
                op,
                diags,
                "hir.alloc ports must agree on shape and element type".into(),
            );
        }
    }
    // Port-count limits (paper §4.4: e.g. block RAMs are dual ported).
    let max_ports = match kind {
        MemKind::Reg => usize::MAX,
        MemKind::LutRam | MemKind::BlockRam => 2,
    };
    if infos.len() > max_ports {
        err(
            m,
            op,
            diags,
            format!(
                "hir.alloc of kind '{kind}' supports at most {max_ports} ports, got {}",
                infos.len()
            ),
        );
    }
}

fn verify_mem_access(
    m: &Module,
    op: OpId,
    diags: &mut DiagnosticEngine,
    mem_operand: usize,
    write: bool,
) -> Option<MemrefInfo> {
    let data = m.op(op);
    let name = data.name().clone();
    let mem_ty = m.value_type(data.operands()[mem_operand]);
    let Some(info) = MemrefInfo::from_type(&mem_ty) else {
        err(
            m,
            op,
            diags,
            format!("{name} memory operand must be a memref, got {mem_ty}"),
        );
        return None;
    };
    if write && !info.port.can_write() {
        err(
            m,
            op,
            diags,
            format!("{name} requires a writable port, got '{}'", info.port),
        );
    }
    if !write && !info.port.can_read() {
        err(
            m,
            op,
            diags,
            format!("{name} requires a readable port, got '{}'", info.port),
        );
    }
    let idx_start = mem_operand + 1;
    let idx_end = data.operands().len() - 1; // last operand is the time
    let rank = info.dims.len();
    if idx_end - idx_start != rank {
        err(
            m,
            op,
            diags,
            format!("{name} expects {rank} indices, got {}", idx_end - idx_start),
        );
        return Some(info);
    }
    for (d, &idx) in info.dims.iter().zip(&data.operands()[idx_start..idx_end]) {
        let ty = m.value_type(idx);
        if d.is_distributed() {
            if !types::is_const(&ty) {
                err(
                    m,
                    op,
                    diags,
                    format!("distributed dimensions must be indexed by !hir.const, got {ty}"),
                );
            }
        } else if !is_int_like(&ty) {
            err(
                m,
                op,
                diags,
                format!("{name} index must be integer or !hir.const, got {ty}"),
            );
        }
    }
    let t = m.value_type(*data.operands().last().unwrap());
    if !types::is_time(&t) {
        err(
            m,
            op,
            diags,
            format!("{name} last operand must be !hir.time, got {t}"),
        );
    }
    if !has_int_attr(m, op, attrkey::OFFSET) {
        err(
            m,
            op,
            diags,
            format!("{name} requires an integer 'offset' attribute"),
        );
    }
    Some(info)
}

fn verify_mem_read(m: &Module, op: OpId, diags: &mut DiagnosticEngine) {
    if let Some(info) = verify_mem_access(m, op, diags, 0, false) {
        let res_ty = m.value_type(m.op(op).results()[0]);
        if res_ty != info.elem {
            err(
                m,
                op,
                diags,
                format!(
                    "hir.mem_read result type {res_ty} must match element type {}",
                    info.elem
                ),
            );
        }
    }
}

fn verify_mem_write(m: &Module, op: OpId, diags: &mut DiagnosticEngine) {
    if let Some(info) = verify_mem_access(m, op, diags, 1, true) {
        let val_ty = m.value_type(m.op(op).operands()[0]);
        if val_ty != info.elem && !types::is_const(&val_ty) {
            err(
                m,
                op,
                diags,
                format!(
                    "hir.mem_write value type {val_ty} must match element type {}",
                    info.elem
                ),
            );
        }
    }
}

fn verify_binary(m: &Module, op: OpId, diags: &mut DiagnosticEngine) {
    let data = m.op(op);
    let lhs = m.value_type(data.operands()[0]);
    let rhs = m.value_type(data.operands()[1]);
    let res = m.value_type(data.results()[0]);
    let name = data.name().clone();
    if res.is_float() {
        if !lhs.is_float() || !rhs.is_float() {
            err(
                m,
                op,
                diags,
                format!("{name} float result requires float operands"),
            );
        }
        return;
    }
    for t in [&lhs, &rhs] {
        if !is_int_like(t) {
            err(
                m,
                op,
                diags,
                format!("{name} operand must be integer or !hir.const, got {t}"),
            );
        }
    }
    if !is_int_like(&res) {
        err(
            m,
            op,
            diags,
            format!("{name} result must be integer, got {res}"),
        );
    }
}

fn verify_cmp(m: &Module, op: OpId, diags: &mut DiagnosticEngine) {
    let data = m.op(op);
    match data.attr(attrkey::PREDICATE).and_then(|a| a.as_str()) {
        Some(p) if CmpPredicate::from_mnemonic(p).is_some() => {}
        _ => err(
            m,
            op,
            diags,
            "hir.cmp requires a valid 'predicate' attribute".into(),
        ),
    }
    if m.value_type(data.results()[0]) != ir::Type::i1() {
        err(m, op, diags, "hir.cmp result must be i1".into());
    }
}

fn verify_select(m: &Module, op: OpId, diags: &mut DiagnosticEngine) {
    let data = m.op(op);
    if m.value_type(data.operands()[0]) != ir::Type::i1() {
        err(m, op, diags, "hir.select condition must be i1".into());
    }
    let a = m.value_type(data.operands()[1]);
    let b = m.value_type(data.operands()[2]);
    if a != b {
        err(
            m,
            op,
            diags,
            format!("hir.select branches must have equal types, got {a} vs {b}"),
        );
    }
}

fn verify_cast(m: &Module, op: OpId, diags: &mut DiagnosticEngine) {
    let data = m.op(op);
    let name = data.name().clone();
    let in_ty = m.value_type(data.operands()[0]);
    let out_ty = m.value_type(data.results()[0]);
    let (Some(in_w), Some(out_w)) = (in_ty.int_width(), out_ty.int_width()) else {
        if !(is_int_like(&in_ty) && out_ty.is_integer()) {
            err(
                m,
                op,
                diags,
                format!("{name} requires integer input and output"),
            );
        }
        return;
    };
    match name.as_str() {
        opname::TRUNC if out_w >= in_w => {
            err(
                m,
                op,
                diags,
                format!("hir.trunc must narrow: {in_w} -> {out_w}"),
            );
        }
        opname::ZEXT | opname::SEXT if out_w <= in_w => {
            err(
                m,
                op,
                diags,
                format!("{name} must widen: {in_w} -> {out_w}"),
            );
        }
        _ => {}
    }
}

fn verify_slice(m: &Module, op: OpId, diags: &mut DiagnosticEngine) {
    let data = m.op(op);
    let hi = data.attr(attrkey::HI).and_then(|a| a.as_int());
    let lo = data.attr(attrkey::LO).and_then(|a| a.as_int());
    let (Some(hi), Some(lo)) = (hi, lo) else {
        err(
            m,
            op,
            diags,
            "hir.slice requires integer 'hi' and 'lo' attributes".into(),
        );
        return;
    };
    if lo < 0 || hi < lo {
        err(m, op, diags, format!("hir.slice invalid range [{hi}:{lo}]"));
        return;
    }
    let out_w = m.value_type(m.op(op).results()[0]).int_width();
    if out_w != Some((hi - lo + 1) as u32) {
        err(
            m,
            op,
            diags,
            format!("hir.slice result width must be {}", hi - lo + 1),
        );
    }
    if let Some(in_w) = m.value_type(m.op(op).operands()[0]).int_width() {
        if hi as u32 >= in_w {
            err(
                m,
                op,
                diags,
                format!("hir.slice bit {hi} out of range for width {in_w}"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Table 2: the dialect provides the listed data types and the
    /// three op categories (control flow, compute, memory access).
    #[test]
    fn table2_inventory_is_complete() {
        let reg = hir_registry();
        // Control flow ops.
        for op in [
            opname::FUNC,
            opname::FOR,
            opname::UNROLL_FOR,
            opname::RETURN,
            opname::YIELD,
            opname::CALL,
            opname::IF,
        ] {
            assert!(reg.spec(op).is_some(), "missing control-flow op {op}");
        }
        // Compute ops (the paper names hir.add and hir.mult; we provide the
        // full complement).
        for op in [
            opname::ADD,
            opname::SUB,
            opname::MULT,
            opname::AND,
            opname::OR,
            opname::XOR,
            opname::NOT,
            opname::SHL,
            opname::SHR,
            opname::CMP,
            opname::SELECT,
            opname::TRUNC,
            opname::ZEXT,
            opname::SEXT,
            opname::SLICE,
        ] {
            assert!(reg.spec(op).is_some(), "missing compute op {op}");
            assert!(
                reg.op_has_trait(op, ir::traits::PURE),
                "compute ops are pure: {op}"
            );
        }
        // Memory access ops.
        for op in [opname::ALLOC, opname::MEM_READ, opname::MEM_WRITE] {
            assert!(reg.spec(op).is_some(), "missing memory op {op}");
        }
        // Data types: i32, i1, f32, hir.memref (+ time and const).
        assert!(crate::types::is_memref(
            &crate::types::MemrefInfo::packed(
                &[4],
                ir::Type::int(32),
                crate::types::Port::Read,
                MemKind::BlockRam
            )
            .to_type()
        ));
        assert!(crate::types::is_time(&crate::types::time_type()));
        assert!(crate::types::is_const(&crate::types::const_type()));
        assert_eq!(ir::Type::i1().int_width(), Some(1));
        assert_eq!(ir::Type::f32().bit_width(), Some(32));
        // Every registered op documents itself.
        for spec in reg.all_specs() {
            assert!(
                !spec.summary().is_empty(),
                "{} lacks a summary",
                spec.name()
            );
        }
    }

    #[test]
    fn cmp_predicates_roundtrip() {
        for p in [
            CmpPredicate::Eq,
            CmpPredicate::Ne,
            CmpPredicate::Lt,
            CmpPredicate::Le,
            CmpPredicate::Gt,
            CmpPredicate::Ge,
        ] {
            assert_eq!(CmpPredicate::from_mnemonic(p.mnemonic()), Some(p));
        }
        assert!(CmpPredicate::Lt.eval(-5, 3));
        assert!(!CmpPredicate::Gt.eval(-5, 3));
        assert!(CmpPredicate::Le.eval(3, 3));
    }
}
