//! HIR dialect types: `!hir.time`, `!hir.const` and `!hir.memref`.
//!
//! The memref type (paper §4.4) describes a multidimensional tensor held in
//! on-chip memory. Each dimension is either *packed* (elements laid out
//! within one buffer) or *distributed* (elements spread across banks, paper
//! Figure 3). A memref value represents **one port** of the underlying
//! tensor storage, with read, write or read-write permission.

use ir::{Attribute, Type};
use std::fmt;

/// Access permission of a memref port (paper §4.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Port {
    /// Read-only port (`r`).
    Read,
    /// Write-only port (`w`).
    Write,
    /// Read-write port (`rw`).
    ReadWrite,
}

impl Port {
    /// Short mnemonic used in the type syntax.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Port::Read => "r",
            Port::Write => "w",
            Port::ReadWrite => "rw",
        }
    }

    /// Parse from the mnemonic.
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        match s {
            "r" => Some(Port::Read),
            "w" => Some(Port::Write),
            "rw" => Some(Port::ReadWrite),
            _ => None,
        }
    }

    /// Whether reads are allowed through this port.
    pub fn can_read(self) -> bool {
        matches!(self, Port::Read | Port::ReadWrite)
    }

    /// Whether writes are allowed through this port.
    pub fn can_write(self) -> bool {
        matches!(self, Port::Write | Port::ReadWrite)
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mnemonic())
    }
}

/// One dimension of a memref.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dim {
    /// Packed dimension: varies *within* a bank.
    Packed(u64),
    /// Distributed dimension: varies *across* banks. Must be indexed with
    /// compile-time constants (paper §4.4).
    Distributed(u64),
}

impl Dim {
    /// Extent of the dimension.
    pub fn size(self) -> u64 {
        match self {
            Dim::Packed(n) | Dim::Distributed(n) => n,
        }
    }

    /// Whether this dimension is distributed across banks.
    pub fn is_distributed(self) -> bool {
        matches!(self, Dim::Distributed(_))
    }
}

/// Physical memory kind a tensor is bound to (paper §3, Table 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemKind {
    /// Flip-flop register file: zero-latency reads.
    Reg,
    /// Distributed (LUT) RAM: 1-cycle reads, cheap for small buffers.
    LutRam,
    /// Block RAM: 1-cycle reads, for larger buffers.
    BlockRam,
}

impl MemKind {
    /// Read latency in cycles (paper §4.1: "Memory reads may take zero or
    /// one cycle depending on whether the memref is implemented using
    /// registers or on-chip buffers").
    pub fn read_latency(self) -> u32 {
        match self {
            MemKind::Reg => 0,
            MemKind::LutRam | MemKind::BlockRam => 1,
        }
    }

    /// Mnemonic used in the type syntax and `hir.alloc`'s `kind` attribute.
    pub fn mnemonic(self) -> &'static str {
        match self {
            MemKind::Reg => "reg",
            MemKind::LutRam => "lutram",
            MemKind::BlockRam => "bram",
        }
    }

    /// Parse from the mnemonic.
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        match s {
            "reg" => Some(MemKind::Reg),
            "lutram" => Some(MemKind::LutRam),
            "bram" => Some(MemKind::BlockRam),
            _ => None,
        }
    }
}

impl fmt::Display for MemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mnemonic())
    }
}

/// Decoded form of a `!hir.memref` type.
///
/// # Examples
///
/// ```
/// use hir::types::{MemrefInfo, Dim, Port, MemKind};
/// use ir::Type;
///
/// // The paper's Figure 3: !hir.memref<3*2*i32, packing=[1], r>
/// // (dimension 0 distributed, dimension 1 packed).
/// let m = MemrefInfo::new(
///     vec![Dim::Distributed(3), Dim::Packed(2)],
///     Type::int(32),
///     Port::Read,
///     MemKind::BlockRam,
/// );
/// assert_eq!(m.num_banks(), 3);
/// assert_eq!(m.bank_size(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct MemrefInfo {
    /// Dimensions, outermost first.
    pub dims: Vec<Dim>,
    /// Element type.
    pub elem: Type,
    /// Port permission of this memref value.
    pub port: Port,
    /// Physical kind of the backing storage.
    pub kind: MemKind,
}

impl MemrefInfo {
    /// Create a memref description.
    ///
    /// # Panics
    /// Panics if `dims` is empty or any dimension has extent 0.
    pub fn new(dims: Vec<Dim>, elem: Type, port: Port, kind: MemKind) -> Self {
        assert!(!dims.is_empty(), "memref must have at least one dimension");
        assert!(
            dims.iter().all(|d| d.size() > 0),
            "memref dimensions must be non-zero"
        );
        MemrefInfo {
            dims,
            elem,
            port,
            kind,
        }
    }

    /// All dims packed, the common case.
    pub fn packed(shape: &[u64], elem: Type, port: Port, kind: MemKind) -> Self {
        MemrefInfo::new(
            shape.iter().map(|&n| Dim::Packed(n)).collect(),
            elem,
            port,
            kind,
        )
    }

    /// Total number of elements.
    pub fn num_elements(&self) -> u64 {
        self.dims.iter().map(|d| d.size()).product()
    }

    /// Number of banks (product of distributed dims; 1 when none).
    pub fn num_banks(&self) -> u64 {
        self.dims
            .iter()
            .filter(|d| d.is_distributed())
            .map(|d| d.size())
            .product()
    }

    /// Elements per bank (product of packed dims; 1 when all distributed).
    pub fn bank_size(&self) -> u64 {
        self.dims
            .iter()
            .filter(|d| !d.is_distributed())
            .map(|d| d.size())
            .product()
    }

    /// Read latency of this memref's storage.
    pub fn read_latency(&self) -> u32 {
        self.kind.read_latency()
    }

    /// Bank index selected by a full index vector (row-major over the
    /// distributed dims, outermost first).
    ///
    /// # Panics
    /// Panics if `index` has the wrong rank or is out of bounds.
    pub fn bank_index(&self, index: &[u64]) -> u64 {
        self.check_index(index);
        let mut bank = 0u64;
        for (dim, &i) in self.dims.iter().zip(index) {
            if dim.is_distributed() {
                bank = bank * dim.size() + i;
            }
        }
        bank
    }

    /// Linear offset within the selected bank (row-major over packed dims).
    ///
    /// # Panics
    /// Panics if `index` has the wrong rank or is out of bounds.
    pub fn linear_index(&self, index: &[u64]) -> u64 {
        self.check_index(index);
        let mut lin = 0u64;
        for (dim, &i) in self.dims.iter().zip(index) {
            if !dim.is_distributed() {
                lin = lin * dim.size() + i;
            }
        }
        lin
    }

    /// Flat element number combining bank and in-bank offset; a bijection
    /// from valid indices to `0..num_elements()`.
    pub fn flat_index(&self, index: &[u64]) -> u64 {
        self.bank_index(index) * self.bank_size() + self.linear_index(index)
    }

    fn check_index(&self, index: &[u64]) {
        assert_eq!(index.len(), self.dims.len(), "memref index rank mismatch");
        for (dim, &i) in self.dims.iter().zip(index) {
            assert!(
                i < dim.size(),
                "memref index {i} out of bounds for dim of size {}",
                dim.size()
            );
        }
    }

    /// Minimum address bits needed per bank (0 for single-element banks).
    pub fn addr_bits(&self) -> u32 {
        bits_for(self.bank_size().saturating_sub(1))
    }

    /// Encode into an `ir` dialect type.
    pub fn to_type(&self) -> Type {
        let dims: Vec<Attribute> = self
            .dims
            .iter()
            .map(|d| match d {
                Dim::Packed(n) => Attribute::index(*n as i128),
                Dim::Distributed(n) => Attribute::Array(vec![Attribute::index(*n as i128)]),
            })
            .collect();
        Type::dialect(
            "hir",
            "memref",
            vec![
                Attribute::Array(dims),
                Attribute::Type(self.elem.clone()),
                Attribute::string(self.port.mnemonic()),
                Attribute::string(self.kind.mnemonic()),
            ],
        )
    }

    /// Decode from an `ir` type; `None` if it is not a well-formed memref.
    pub fn from_type(ty: &Type) -> Option<Self> {
        if !ty.is_dialect("hir", "memref") {
            return None;
        }
        let params = ty.dialect_params()?;
        let [dims_attr, elem_attr, port_attr, kind_attr] = params else {
            return None;
        };
        let dims = dims_attr
            .as_array()?
            .iter()
            .map(|a| match a {
                Attribute::Int(n, _) if *n > 0 => Some(Dim::Packed(*n as u64)),
                Attribute::Array(inner) => match inner.as_slice() {
                    [Attribute::Int(n, _)] if *n > 0 => Some(Dim::Distributed(*n as u64)),
                    _ => None,
                },
                _ => None,
            })
            .collect::<Option<Vec<_>>>()?;
        if dims.is_empty() {
            return None;
        }
        let elem = elem_attr.as_type()?.clone();
        let port = Port::from_mnemonic(port_attr.as_str()?)?;
        let kind = MemKind::from_mnemonic(kind_attr.as_str()?)?;
        Some(MemrefInfo {
            dims,
            elem,
            port,
            kind,
        })
    }

    /// Same tensor shape/element/kind, different port.
    pub fn with_port(&self, port: Port) -> Self {
        MemrefInfo {
            port,
            ..self.clone()
        }
    }
}

impl fmt::Display for MemrefInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "!hir.memref<")?;
        for d in &self.dims {
            match d {
                Dim::Packed(n) => write!(f, "{n}*")?,
                Dim::Distributed(n) => write!(f, "[{n}]*")?,
            }
        }
        write!(f, "{}, {}, {}>", self.elem, self.port, self.kind)
    }
}

/// Number of bits needed to represent `v` (at least 1).
pub fn bits_for(v: u64) -> u32 {
    (64 - v.leading_zeros()).max(1)
}

/// The `!hir.time` type: a time variable (paper §4.2).
pub fn time_type() -> Type {
    Type::dialect("hir", "time", vec![])
}

/// The `!hir.const` type: a compile-time constant integer (paper §4.3).
pub fn const_type() -> Type {
    Type::dialect("hir", "const", vec![])
}

/// Whether `ty` is `!hir.time`.
pub fn is_time(ty: &Type) -> bool {
    ty.is_dialect("hir", "time")
}

/// Whether `ty` is `!hir.const`.
pub fn is_const(ty: &Type) -> bool {
    ty.is_dialect("hir", "const")
}

/// Whether `ty` is a `!hir.memref`.
pub fn is_memref(ty: &Type) -> bool {
    ty.is_dialect("hir", "memref")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig3() -> MemrefInfo {
        // Figure 3: 3x2 i32 with dim 0 distributed, dim 1 packed.
        MemrefInfo::new(
            vec![Dim::Distributed(3), Dim::Packed(2)],
            Type::int(32),
            Port::Read,
            MemKind::BlockRam,
        )
    }

    #[test]
    fn figure3_banking() {
        let m = fig3();
        assert_eq!(m.num_banks(), 3);
        assert_eq!(m.bank_size(), 2);
        assert_eq!(m.num_elements(), 6);
        // Element (i, j) goes to bank i, offset j.
        for i in 0..3 {
            for j in 0..2 {
                assert_eq!(m.bank_index(&[i, j]), i);
                assert_eq!(m.linear_index(&[i, j]), j);
            }
        }
    }

    #[test]
    fn flat_index_is_bijective() {
        let m = MemrefInfo::new(
            vec![Dim::Packed(4), Dim::Distributed(3), Dim::Packed(5)],
            Type::int(8),
            Port::ReadWrite,
            MemKind::LutRam,
        );
        let mut seen = std::collections::HashSet::new();
        for a in 0..4 {
            for b in 0..3 {
                for c in 0..5 {
                    let f = m.flat_index(&[a, b, c]);
                    assert!(f < m.num_elements());
                    assert!(seen.insert(f), "collision at {:?}", (a, b, c));
                }
            }
        }
        assert_eq!(seen.len() as u64, m.num_elements());
    }

    #[test]
    fn type_roundtrip() {
        let m = fig3();
        let t = m.to_type();
        let back = MemrefInfo::from_type(&t).expect("decode");
        assert_eq!(m, back);
        assert!(is_memref(&t));
        assert!(!is_memref(&Type::int(32)));
    }

    #[test]
    fn ports_and_kinds() {
        assert!(Port::Read.can_read() && !Port::Read.can_write());
        assert!(!Port::Write.can_read() && Port::Write.can_write());
        assert!(Port::ReadWrite.can_read() && Port::ReadWrite.can_write());
        assert_eq!(MemKind::Reg.read_latency(), 0);
        assert_eq!(MemKind::BlockRam.read_latency(), 1);
        assert_eq!(Port::from_mnemonic("rw"), Some(Port::ReadWrite));
        assert_eq!(MemKind::from_mnemonic("bram"), Some(MemKind::BlockRam));
        assert_eq!(MemKind::from_mnemonic("nope"), None);
    }

    #[test]
    fn addr_bits() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
        let m = MemrefInfo::packed(&[16, 16], Type::int(32), Port::Read, MemKind::BlockRam);
        assert_eq!(m.addr_bits(), 8);
    }

    #[test]
    fn time_and_const_types() {
        assert!(is_time(&time_type()));
        assert!(is_const(&const_type()));
        assert!(!is_time(&const_type()));
    }

    #[test]
    #[should_panic(expected = "rank mismatch")]
    fn wrong_rank_panics() {
        fig3().bank_index(&[1]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        fig3().linear_index(&[0, 2]);
    }
}
