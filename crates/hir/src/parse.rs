//! Parser for HIR's paper-style surface syntax — the notation of the
//! paper's listings, and exactly what [`crate::pretty`] prints:
//!
//! ```text
//! hir.func @transpose at %t(%Ai : !hir.memref<16*16*i32, r, bram>,
//!                           %Co : !hir.memref<16*16*i32, w, bram>) {
//!   %c0 = hir.constant 0 : index
//!   %tf = hir.for %i : i32 = %c0 to %c16 step %c1 iter_time(%ti = %t offset 1) {
//!     %v = hir.mem_read %Ai[%i, %j] at %ti offset 0 : i32
//!     hir.yield at %ti offset 1
//!   }
//!   hir.return
//! }
//! ```
//!
//! `pretty_module(parse_pretty(s)?)` is a fixpoint of `pretty_module` for
//! every module the printer produces, and the paper's listings (modulo the
//! offsets-as-attributes convention, see DESIGN.md) parse directly.

use crate::builder::HirBuilder;
use crate::dialect::{attrkey, opname, CmpPredicate};
use crate::types::{const_type, time_type, Dim, MemKind, MemrefInfo, Port};
use ir::{AttrMap, Attribute, Module, Type, ValueId};
use std::collections::HashMap;
use std::fmt;

/// A parse error with 1-based line/column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrettyParseError {
    pub line: u32,
    pub col: u32,
    pub message: String,
}

impl fmt::Display for PrettyParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}
impl std::error::Error for PrettyParseError {}

type Result<T> = std::result::Result<T, PrettyParseError>;

/// Parse a module in the paper-style syntax.
///
/// # Errors
/// Returns a positioned [`PrettyParseError`] on malformed input.
pub fn parse_pretty(source: &str) -> Result<Module> {
    let mut p = Parser::new(source)?;
    let mut hb = HirBuilder::new();
    while p.tok != Tok::Eof {
        p.parse_func(&mut hb)?;
    }
    Ok(hb.finish())
}

/// Default cap on recorded errors in recovery mode.
pub const DEFAULT_ERROR_LIMIT: usize = 20;

/// Outcome of [`parse_pretty_recover`].
#[derive(Debug)]
pub struct RecoveredPretty {
    /// Best-effort module; only meaningful when `errors` is empty.
    pub module: Module,
    /// All parse errors, in source order.
    pub errors: Vec<PrettyParseError>,
    /// Recovery stopped early because the error limit was reached.
    pub hit_error_limit: bool,
}

/// Parse with error recovery at function granularity: on a parse failure the
/// error is recorded and the parser skips to the next `hir.func`, so one run
/// reports the first error of every broken function in the file. (Function
/// granularity is what makes recovery safe here: [`HirBuilder::func`] resets
/// all builder state, discarding whatever a broken function left behind.)
///
/// `error_limit` caps the number of recorded errors (0 means
/// [`DEFAULT_ERROR_LIMIT`]).
pub fn parse_pretty_recover(source: &str, error_limit: usize) -> RecoveredPretty {
    let limit = if error_limit == 0 {
        DEFAULT_ERROR_LIMIT
    } else {
        error_limit
    };
    let mut errors = Vec::new();
    let mut p = match Parser::new(source) {
        Ok(p) => p,
        Err(e) => {
            return RecoveredPretty {
                module: Module::new(),
                errors: vec![e],
                hit_error_limit: false,
            }
        }
    };
    let mut hb = HirBuilder::new();
    let mut hit_error_limit = false;
    while p.tok != Tok::Eof {
        if errors.len() >= limit {
            hit_error_limit = true;
            break;
        }
        if let Err(e) = p.parse_func(&mut hb) {
            errors.push(e);
            if !p.synchronize_to_func() {
                break;
            }
        }
    }
    RecoveredPretty {
        module: hb.finish(),
        errors,
        hit_error_limit,
    }
}

// --------------------------------------------------------------------- lexer

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    /// `%name`
    Value(String),
    /// `@name`
    Symbol(String),
    /// Bare identifier or keyword (`hir.for`, `at`, `offset`, `i32`...).
    Ident(String),
    /// `!hir.memref` etc.
    Bang(String),
    Int(i64),
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Lt,
    Gt,
    Colon,
    Comma,
    Eq,
    Star,
    Arrow,
    Eof,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    /// Text of the last block comment skipped before the current token
    /// (argument labels are printed as `/*name*/`).
    last_comment: Option<String>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            last_comment: None,
        }
    }

    fn err(&self, message: impl Into<String>) -> PrettyParseError {
        PrettyParseError {
            line: self.line,
            col: self.col,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn skip_trivia(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'*') => {
                    self.bump();
                    self.bump();
                    let mut text = String::new();
                    loop {
                        match self.bump() {
                            Some(b'*') if self.peek() == Some(b'/') => {
                                self.bump();
                                break;
                            }
                            Some(c) => text.push(c as char),
                            None => return Err(self.err("unterminated block comment")),
                        }
                    }
                    self.last_comment = Some(text);
                }
                _ => return Ok(()),
            }
        }
    }

    fn ident(&mut self) -> String {
        let mut s = String::new();
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'.' {
                s.push(b as char);
                self.bump();
            } else {
                break;
            }
        }
        s
    }

    fn next(&mut self) -> Result<(Tok, u32, u32)> {
        self.last_comment = None;
        self.skip_trivia()?;
        let (line, col) = (self.line, self.col);
        let Some(b) = self.peek() else {
            return Ok((Tok::Eof, line, col));
        };
        let tok = match b {
            b'%' => {
                self.bump();
                Tok::Value(self.ident())
            }
            b'@' => {
                self.bump();
                Tok::Symbol(self.ident())
            }
            b'!' => {
                self.bump();
                Tok::Bang(self.ident())
            }
            b'(' => {
                self.bump();
                Tok::LParen
            }
            b')' => {
                self.bump();
                Tok::RParen
            }
            b'{' => {
                self.bump();
                Tok::LBrace
            }
            b'}' => {
                self.bump();
                Tok::RBrace
            }
            b'[' => {
                self.bump();
                Tok::LBracket
            }
            b']' => {
                self.bump();
                Tok::RBracket
            }
            b'<' => {
                self.bump();
                Tok::Lt
            }
            b'>' => {
                self.bump();
                Tok::Gt
            }
            b':' => {
                self.bump();
                Tok::Colon
            }
            b',' => {
                self.bump();
                Tok::Comma
            }
            b'=' => {
                self.bump();
                Tok::Eq
            }
            b'*' => {
                self.bump();
                Tok::Star
            }
            b'-' => {
                self.bump();
                if self.peek() == Some(b'>') {
                    self.bump();
                    Tok::Arrow
                } else {
                    let text = self.ident();
                    let v: i64 = text
                        .parse()
                        .map_err(|_| self.err(format!("invalid number -{text}")))?;
                    Tok::Int(-v)
                }
            }
            b'0'..=b'9' => {
                let text = self.ident();
                let v: i64 = text
                    .parse()
                    .map_err(|_| self.err(format!("invalid number {text}")))?;
                Tok::Int(v)
            }
            _ if b.is_ascii_alphabetic() || b == b'_' => Tok::Ident(self.ident()),
            other => return Err(self.err(format!("unexpected character '{}'", other as char))),
        };
        Ok((tok, line, col))
    }
}

// -------------------------------------------------------------------- parser

struct Parser<'a> {
    lexer: Lexer<'a>,
    tok: Tok,
    line: u32,
    col: u32,
    /// `%name` -> SSA value, per function.
    values: HashMap<String, ValueId>,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Result<Self> {
        let mut lexer = Lexer::new(src);
        let (tok, line, col) = lexer.next()?;
        Ok(Parser {
            lexer,
            tok,
            line,
            col,
            values: HashMap::new(),
        })
    }

    fn err(&self, message: impl Into<String>) -> PrettyParseError {
        PrettyParseError {
            line: self.line,
            col: self.col,
            message: message.into(),
        }
    }

    fn advance(&mut self) -> Result<Tok> {
        let (tok, line, col) = self.lexer.next()?;
        self.line = line;
        self.col = col;
        Ok(std::mem::replace(&mut self.tok, tok))
    }

    /// Skip tokens until the next `hir.func` keyword (the only top-level
    /// construct), always consuming at least one token so recovery makes
    /// progress. Returns `false` when the end of input is reached first.
    fn synchronize_to_func(&mut self) -> bool {
        loop {
            match self.advance() {
                Ok(_) => {}
                Err(_) => {
                    // Lexer error mid-skip: drop the offending byte and keep
                    // scanning; these cascades are not worth reporting.
                    self.lexer.bump();
                    continue;
                }
            }
            match &self.tok {
                Tok::Eof => return false,
                Tok::Ident(s) if s == "hir.func" => return true,
                _ => {}
            }
        }
    }

    fn expect(&mut self, want: &Tok) -> Result<()> {
        if &self.tok == want {
            self.advance()?;
            Ok(())
        } else {
            Err(self.err(format!("expected {want:?}, found {:?}", self.tok)))
        }
    }

    fn eat(&mut self, want: &Tok) -> Result<bool> {
        if &self.tok == want {
            self.advance()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<()> {
        match &self.tok {
            Tok::Ident(s) if s == kw => {
                self.advance()?;
                Ok(())
            }
            other => Err(self.err(format!("expected '{kw}', found {other:?}"))),
        }
    }

    fn is_keyword(&self, kw: &str) -> bool {
        matches!(&self.tok, Tok::Ident(s) if s == kw)
    }

    fn value_name(&mut self) -> Result<String> {
        match std::mem::replace(&mut self.tok, Tok::Eof) {
            Tok::Value(n) => {
                self.advance()?;
                Ok(n)
            }
            other => {
                self.tok = other;
                Err(self.err(format!("expected %value, found {:?}", self.tok)))
            }
        }
    }

    fn symbol_name(&mut self) -> Result<String> {
        match std::mem::replace(&mut self.tok, Tok::Eof) {
            Tok::Symbol(n) => {
                self.advance()?;
                Ok(n)
            }
            other => {
                self.tok = other;
                Err(self.err(format!("expected @symbol, found {:?}", self.tok)))
            }
        }
    }

    fn int(&mut self) -> Result<i64> {
        match self.tok {
            Tok::Int(v) => {
                self.advance()?;
                Ok(v)
            }
            _ => Err(self.err(format!("expected integer, found {:?}", self.tok))),
        }
    }

    fn lookup(&self, name: &str) -> Result<ValueId> {
        self.values
            .get(name)
            .copied()
            .ok_or_else(|| self.err(format!("use of undefined value %{name}")))
    }

    fn use_value(&mut self) -> Result<ValueId> {
        let n = self.value_name()?;
        self.lookup(&n)
    }

    // ---------------------------------------------------------------- types

    fn parse_type(&mut self) -> Result<Type> {
        match std::mem::replace(&mut self.tok, Tok::Eof) {
            Tok::Ident(id) => {
                self.advance()?;
                scalar_type(&id).ok_or_else(|| self.err(format!("unknown type '{id}'")))
            }
            Tok::Bang(full) => {
                self.advance()?;
                match full.as_str() {
                    "hir.time" => Ok(time_type()),
                    "hir.const" => Ok(const_type()),
                    "hir.memref" => self.parse_memref_params(),
                    other => Err(self.err(format!("unknown dialect type !{other}"))),
                }
            }
            other => {
                self.tok = other;
                Err(self.err(format!("expected type, found {:?}", self.tok)))
            }
        }
    }

    /// `<16*16*i32, r, bram>` or with `[2]*` distributed dims.
    fn parse_memref_params(&mut self) -> Result<Type> {
        self.expect(&Tok::Lt)?;
        let mut dims = Vec::new();
        let elem;
        loop {
            match std::mem::replace(&mut self.tok, Tok::Eof) {
                Tok::Int(n) => {
                    self.advance()?;
                    self.expect(&Tok::Star)?;
                    if n <= 0 {
                        return Err(self.err("memref dims must be positive"));
                    }
                    dims.push(Dim::Packed(n as u64));
                }
                Tok::LBracket => {
                    self.tok = Tok::LBracket;
                    self.advance()?;
                    let n = self.int()?;
                    self.expect(&Tok::RBracket)?;
                    self.expect(&Tok::Star)?;
                    if n <= 0 {
                        return Err(self.err("memref dims must be positive"));
                    }
                    dims.push(Dim::Distributed(n as u64));
                }
                Tok::Ident(id) => {
                    self.advance()?;
                    elem = scalar_type(&id)
                        .ok_or_else(|| self.err(format!("unknown element type '{id}'")))?;
                    break;
                }
                other => {
                    self.tok = other;
                    return Err(self.err(format!(
                        "expected memref dimension (e.g. `16*`) or element type, found {:?}",
                        self.tok
                    )));
                }
            }
        }
        self.expect(&Tok::Comma)?;
        let port = match &self.tok {
            Tok::Ident(s) => Port::from_mnemonic(s)
                .ok_or_else(|| self.err(format!("unknown port kind '{s}'")))?,
            other => return Err(self.err(format!("expected port kind, found {other:?}"))),
        };
        self.advance()?;
        self.expect(&Tok::Comma)?;
        let kind = match &self.tok {
            Tok::Ident(s) => MemKind::from_mnemonic(s)
                .ok_or_else(|| self.err(format!("unknown memory kind '{s}'")))?,
            other => return Err(self.err(format!("expected memory kind, found {other:?}"))),
        };
        self.advance()?;
        self.expect(&Tok::Gt)?;
        if dims.is_empty() {
            return Err(self.err("memref needs at least one dimension"));
        }
        Ok(MemrefInfo::new(dims, elem, port, kind).to_type())
    }

    // ------------------------------------------------------------ functions

    fn parse_func(&mut self, hb: &mut HirBuilder) -> Result<()> {
        self.keyword("hir.func")?;
        self.values.clear();
        if self.is_keyword("extern") {
            self.advance()?;
            return self.parse_extern(hb);
        }
        let name = self.symbol_name()?;
        self.keyword("at")?;
        let time_name = self.value_name()?;
        self.expect(&Tok::LParen)?;
        let mut args: Vec<(String, String, Type)> = Vec::new(); // (%name, label, type)
        if self.tok != Tok::RParen {
            loop {
                let vname = self.value_name()?;
                // A `/*label*/` comment right after the value names the
                // port; default to the SSA name.
                let label = self
                    .lexer
                    .last_comment
                    .take()
                    .unwrap_or_else(|| vname.clone());
                self.expect(&Tok::Colon)?;
                let ty = self.parse_type()?;
                args.push((vname, label, ty));
                if !self.eat(&Tok::Comma)? {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        // Optional result signature `-> (ty delay d, ...)`.
        let mut result_delays: Vec<i64> = Vec::new();
        if self.eat(&Tok::Arrow)? {
            self.expect(&Tok::LParen)?;
            loop {
                let _ty = self.parse_type()?;
                self.keyword("delay")?;
                result_delays.push(self.int()?);
                if !self.eat(&Tok::Comma)? {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
        }

        let named: Vec<(&str, Type)> = args
            .iter()
            .map(|(_, label, t)| (label.as_str(), t.clone()))
            .collect();
        let f = hb.func(&name, &named, &result_delays);
        let formal = f.args(hb.module());
        for ((vname, _, _), v) in args.iter().zip(formal) {
            self.values.insert(vname.clone(), v);
        }
        self.values.insert(time_name, f.time_var(hb.module()));

        self.expect(&Tok::LBrace)?;
        while self.tok != Tok::RBrace {
            self.parse_op(hb)?;
        }
        self.expect(&Tok::RBrace)?;
        Ok(())
    }

    fn parse_extern(&mut self, hb: &mut HirBuilder) -> Result<()> {
        let name = self.symbol_name()?;
        self.expect(&Tok::LParen)?;
        let mut arg_types = Vec::new();
        if self.tok != Tok::RParen {
            loop {
                arg_types.push(self.parse_type()?);
                if !self.eat(&Tok::Comma)? {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        self.expect(&Tok::Arrow)?;
        self.expect(&Tok::LParen)?;
        let mut result_types = Vec::new();
        let mut delays = Vec::new();
        if self.tok != Tok::RParen {
            loop {
                result_types.push(self.parse_type()?);
                self.keyword("delay")?;
                delays.push(self.int()?);
                if !self.eat(&Tok::Comma)? {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        hb.extern_func(&name, &arg_types, &result_types, &delays);
        Ok(())
    }

    // ------------------------------------------------------------------ ops

    /// ` at %t offset k` (offset optional, default 0).
    fn parse_schedule(&mut self) -> Result<(ValueId, i64)> {
        self.keyword("at")?;
        let t = self.use_value()?;
        let mut offset = 0;
        if self.is_keyword("offset") {
            self.advance()?;
            offset = self.parse_offset_amount()?;
        }
        Ok((t, offset))
    }

    /// Offsets are integers here, but the paper writes `%1` (a constant
    /// SSA value); accept both, resolving constants through the builder.
    fn parse_offset_amount(&mut self) -> Result<i64> {
        match &self.tok {
            Tok::Int(_) => self.int(),
            Tok::Value(_) => {
                let name = self.value_name()?;
                // Constant names printed as %cN carry their value; otherwise
                // the value must be a known constant.
                if let Some(rest) = name.strip_prefix('c') {
                    if let Ok(v) = rest.parse::<i64>() {
                        return Ok(v);
                    }
                }
                Err(self.err(format!(
                    "offset %{name} is not a recognizable constant \
                     (use an integer literal or a %c<N> constant name)"
                )))
            }
            other => Err(self.err(format!(
                "expected an integer offset or %c<N> constant, found {other:?}"
            ))),
        }
    }

    fn parse_op(&mut self, hb: &mut HirBuilder) -> Result<()> {
        // Optional results.
        let mut results: Vec<String> = Vec::new();
        if let Tok::Value(_) = self.tok {
            results.push(self.value_name()?);
            while self.eat(&Tok::Comma)? {
                results.push(self.value_name()?);
            }
            self.expect(&Tok::Eq)?;
        }
        let opword = match &self.tok {
            Tok::Ident(s) => s.clone(),
            other => return Err(self.err(format!("expected operation, found {other:?}"))),
        };
        self.advance()?;
        match opword.as_str() {
            "hir.constant" => self.op_constant(hb, &results),
            "hir.for" => self.op_for(hb, &results),
            "hir.unroll_for" => self.op_unroll_for(hb, &results),
            "hir.yield" => {
                let (t, off) = self.parse_schedule()?;
                hb.yield_at(t, off);
                Ok(())
            }
            "hir.return" => self.op_return(hb),
            "hir.mem_read" => self.op_mem_read(hb, &results),
            "hir.mem_write" => self.op_mem_write(hb),
            "hir.delay" => self.op_delay(hb, &results),
            "hir.alloc" => self.op_alloc(hb, &results),
            "hir.call" => self.op_call(hb, &results),
            "hir.if" => self.op_if(hb),
            other if other.starts_with("hir.") => self.op_compute(hb, other, &results),
            other => Err(self.err(format!("unknown operation '{other}'"))),
        }
    }

    fn bind(&mut self, name: &str, v: ValueId) -> Result<()> {
        if self.values.insert(name.to_string(), v).is_some() {
            return Err(self.err(format!("redefinition of %{name}")));
        }
        Ok(())
    }

    fn one_result<'r>(&self, results: &'r [String], what: &str) -> Result<&'r String> {
        if results.len() != 1 {
            return Err(self.err(format!("{what} defines exactly one result")));
        }
        Ok(&results[0])
    }

    fn op_constant(&mut self, hb: &mut HirBuilder, results: &[String]) -> Result<()> {
        let name = self.one_result(results, "hir.constant")?.clone();
        let v = self.int()?;
        self.expect(&Tok::Colon)?;
        let ty = self.parse_type()?;
        let val = if crate::types::is_const(&ty) || ty.is_index() {
            hb.const_val(v)
        } else {
            hb.typed_const(v, ty)
        };
        self.bind(&name, val)
    }

    fn op_for(&mut self, hb: &mut HirBuilder, results: &[String]) -> Result<()> {
        let tf_name = self.one_result(results, "hir.for")?.clone();
        let iv_name = self.value_name()?;
        self.expect(&Tok::Colon)?;
        let iv_ty = self.parse_type()?;
        self.expect(&Tok::Eq)?;
        let lb = self.use_value()?;
        self.keyword("to")?;
        let ub = self.use_value()?;
        self.keyword("step")?;
        let step = self.use_value()?;
        self.keyword("iter_time")?;
        self.expect(&Tok::LParen)?;
        let ti_name = self.value_name()?;
        self.expect(&Tok::Eq)?;
        let t = self.use_value()?;
        let mut offset = 0;
        if self.is_keyword("offset") {
            self.advance()?;
            offset = self.parse_offset_amount()?;
        }
        self.expect(&Tok::RParen)?;

        let lp = hb.for_loop(lb, ub, step, t, offset, iv_ty);
        self.bind(&iv_name, lp.induction_var(hb.module()))?;
        self.bind(&ti_name, lp.iter_time(hb.module()))?;
        self.bind(&tf_name, lp.result_time(hb.module()))?;

        self.expect(&Tok::LBrace)?;
        let body = lp.body(hb.module());
        hb.push_block(body);
        while self.tok != Tok::RBrace {
            self.parse_op(hb)?;
        }
        hb.pop_block();
        self.expect(&Tok::RBrace)?;
        Ok(())
    }

    fn op_unroll_for(&mut self, hb: &mut HirBuilder, results: &[String]) -> Result<()> {
        let tf_name = self.one_result(results, "hir.unroll_for")?.clone();
        let iv_name = self.value_name()?;
        self.expect(&Tok::Eq)?;
        let lb = self.int()?;
        self.keyword("to")?;
        let ub = self.int()?;
        self.keyword("step")?;
        let step = self.int()?;
        self.keyword("iter_time")?;
        self.expect(&Tok::LParen)?;
        let ti_name = self.value_name()?;
        self.expect(&Tok::Eq)?;
        let t = self.use_value()?;
        let mut offset = 0;
        if self.is_keyword("offset") {
            self.advance()?;
            offset = self.parse_offset_amount()?;
        }
        self.expect(&Tok::RParen)?;

        let lp = hb.unroll_for(lb, ub, step, t, offset);
        self.bind(&iv_name, lp.induction_var(hb.module()))?;
        self.bind(&ti_name, lp.iter_time(hb.module()))?;
        self.bind(&tf_name, lp.result_time(hb.module()))?;

        self.expect(&Tok::LBrace)?;
        let body = lp.body(hb.module());
        hb.push_block(body);
        while self.tok != Tok::RBrace {
            self.parse_op(hb)?;
        }
        hb.pop_block();
        self.expect(&Tok::RBrace)?;
        Ok(())
    }

    fn op_return(&mut self, hb: &mut HirBuilder) -> Result<()> {
        let mut vals = Vec::new();
        while let Tok::Value(_) = self.tok {
            vals.push(self.use_value()?);
            if !self.eat(&Tok::Comma)? {
                break;
            }
        }
        hb.return_(&vals);
        Ok(())
    }

    fn op_mem_read(&mut self, hb: &mut HirBuilder, results: &[String]) -> Result<()> {
        let name = self.one_result(results, "hir.mem_read")?.clone();
        let mem = self.use_value()?;
        let idx = self.parse_indices()?;
        let (t, off) = self.parse_schedule()?;
        // Optional trailing `: type` (informational; checked).
        if self.eat(&Tok::Colon)? {
            let _ = self.parse_type()?;
        }
        let v = hb.mem_read(mem, &idx, t, off);
        self.bind(&name, v)
    }

    fn op_mem_write(&mut self, hb: &mut HirBuilder) -> Result<()> {
        let v = self.use_value()?;
        self.keyword("to")?;
        let mem = self.use_value()?;
        let idx = self.parse_indices()?;
        let (t, off) = self.parse_schedule()?;
        hb.mem_write(v, mem, &idx, t, off);
        Ok(())
    }

    fn parse_indices(&mut self) -> Result<Vec<ValueId>> {
        self.expect(&Tok::LBracket)?;
        let mut idx = Vec::new();
        if self.tok != Tok::RBracket {
            loop {
                idx.push(self.use_value()?);
                if !self.eat(&Tok::Comma)? {
                    break;
                }
            }
        }
        self.expect(&Tok::RBracket)?;
        Ok(idx)
    }

    fn op_delay(&mut self, hb: &mut HirBuilder, results: &[String]) -> Result<()> {
        let name = self.one_result(results, "hir.delay")?.clone();
        let input = self.use_value()?;
        self.keyword("by")?;
        let by = self.parse_offset_amount()?;
        let (t, off) = self.parse_schedule()?;
        if self.eat(&Tok::Colon)? {
            let _ = self.parse_type()?;
        }
        let v = hb.delay(input, by, t, off);
        self.bind(&name, v)
    }

    fn op_alloc(&mut self, hb: &mut HirBuilder, results: &[String]) -> Result<()> {
        self.expect(&Tok::LParen)?;
        self.expect(&Tok::RParen)?;
        self.expect(&Tok::Colon)?;
        // `(type, type)` — one memref per port; or a single bare type.
        let mut types = Vec::new();
        if self.eat(&Tok::LParen)? {
            loop {
                types.push(self.parse_type()?);
                if !self.eat(&Tok::Comma)? {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
        } else {
            types.push(self.parse_type()?);
        }
        if types.len() != results.len() {
            return Err(self.err(format!(
                "hir.alloc binds {} results but lists {} port types",
                results.len(),
                types.len()
            )));
        }
        let infos: Vec<MemrefInfo> = types
            .iter()
            .map(|t| {
                MemrefInfo::from_type(t).ok_or_else(|| self.err("alloc types must be memrefs"))
            })
            .collect::<Result<_>>()?;
        let base = &infos[0];
        let ports: Vec<Port> = infos.iter().map(|i| i.port).collect();
        let vals = hb.alloc(&base.dims, base.elem.clone(), base.kind, &ports);
        for (name, v) in results.iter().zip(vals) {
            self.bind(name, v)?;
        }
        Ok(())
    }

    fn op_call(&mut self, hb: &mut HirBuilder, results: &[String]) -> Result<()> {
        let callee = self.symbol_name()?;
        self.expect(&Tok::LParen)?;
        let mut args = Vec::new();
        if self.tok != Tok::RParen {
            loop {
                args.push(self.use_value()?);
                if !self.eat(&Tok::Comma)? {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        let (t, off) = self.parse_schedule()?;
        let vals = hb.call(&callee, &args, t, off);
        if vals.len() != results.len() {
            return Err(self.err(format!(
                "@{callee} returns {} values but {} results are bound",
                vals.len(),
                results.len()
            )));
        }
        for (name, v) in results.iter().zip(vals) {
            self.bind(name, v)?;
        }
        Ok(())
    }

    fn op_if(&mut self, hb: &mut HirBuilder) -> Result<()> {
        let cond = self.use_value()?;
        let (t, off) = self.parse_schedule()?;
        self.expect(&Tok::LBrace)?;
        // Parse the then block; decide about else after the brace.
        let ifop = hb.if_op(cond, t, off, false);
        let then_block = ifop.then_block(hb.module());
        hb.push_block(then_block);
        while self.tok != Tok::RBrace {
            self.parse_op(hb)?;
        }
        hb.pop_block();
        self.expect(&Tok::RBrace)?;
        if self.is_keyword("else") {
            self.advance()?;
            self.expect(&Tok::LBrace)?;
            let else_block = hb.add_else_block(ifop);
            hb.push_block(else_block);
            while self.tok != Tok::RBrace {
                self.parse_op(hb)?;
            }
            hb.pop_block();
            self.expect(&Tok::RBrace)?;
        }
        Ok(())
    }

    /// Generic compute: `%r = hir.add (%a, %b) : (i32, i32) -> (i32)` with
    /// optional `{pred}` or `{hi:lo}` trailers.
    fn op_compute(&mut self, hb: &mut HirBuilder, opword: &str, results: &[String]) -> Result<()> {
        let name = self.one_result(results, opword)?.clone();
        self.expect(&Tok::LParen)?;
        let mut operands = Vec::new();
        if self.tok != Tok::RParen {
            loop {
                operands.push(self.use_value()?);
                if !self.eat(&Tok::Comma)? {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        self.expect(&Tok::Colon)?;
        self.expect(&Tok::LParen)?;
        let mut in_tys = Vec::new();
        if self.tok != Tok::RParen {
            loop {
                in_tys.push(self.parse_type()?);
                if !self.eat(&Tok::Comma)? {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        self.expect(&Tok::Arrow)?;
        self.expect(&Tok::LParen)?;
        let out_ty = self.parse_type()?;
        self.expect(&Tok::RParen)?;

        // Optional `{eq}` / `{7:4}` trailer.
        let mut predicate: Option<CmpPredicate> = None;
        let mut slice_bounds: Option<(i64, i64)> = None;
        if self.eat(&Tok::LBrace)? {
            match std::mem::replace(&mut self.tok, Tok::Eof) {
                Tok::Ident(p) => {
                    self.advance()?;
                    predicate = Some(
                        CmpPredicate::from_mnemonic(&p)
                            .ok_or_else(|| self.err(format!("unknown predicate '{p}'")))?,
                    );
                }
                Tok::Int(hi) => {
                    self.advance()?;
                    self.expect(&Tok::Colon)?;
                    let lo = self.int()?;
                    slice_bounds = Some((hi, lo));
                }
                other => {
                    self.tok = other;
                    return Err(self.err("expected predicate or slice bounds"));
                }
            }
            self.expect(&Tok::RBrace)?;
        }

        let mut attrs = AttrMap::new();
        if let Some(p) = predicate {
            attrs.insert(attrkey::PREDICATE.into(), Attribute::string(p.mnemonic()));
        }
        if let Some((hi, lo)) = slice_bounds {
            attrs.insert(attrkey::HI.into(), Attribute::index(hi as i128));
            attrs.insert(attrkey::LO.into(), Attribute::index(lo as i128));
        }
        if opword == opname::CMP && predicate.is_none() {
            return Err(self.err("hir.cmp requires a {predicate}"));
        }
        if opword == opname::SLICE && slice_bounds.is_none() {
            return Err(self.err("hir.slice requires {hi:lo} bounds"));
        }
        let v = hb.raw_op(opword, operands, vec![out_ty], attrs);
        self.bind(&name, v)
    }
}

fn scalar_type(id: &str) -> Option<Type> {
    match id {
        "index" => return Some(Type::index()),
        "f32" => return Some(Type::f32()),
        "f64" => return Some(Type::f64()),
        _ => {}
    }
    id.strip_prefix('i')
        .and_then(|w| w.parse::<u32>().ok())
        .filter(|&w| w > 0)
        .map(Type::int)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pretty::pretty_module;

    #[test]
    fn parses_the_papers_listing_1() {
        // Listing 1 of the paper, in this implementation's conventions
        // (integer offsets; memory kinds spelled out).
        let src = r#"
hir.func @transpose at %t(
    %Ai : !hir.memref<16*16*i32, r, bram>,
    %Co : !hir.memref<16*16*i32, w, bram>) {
  %c0 = hir.constant 0 : index
  %c1 = hir.constant 1 : index
  %c16 = hir.constant 16 : index
  %tf0 = hir.for %i : i32 = %c0 to %c16 step %c1 iter_time(%ti = %t offset 1) {
    %tf = hir.for %j : i32 = %c0 to %c16 step %c1 iter_time(%tj = %ti offset 1) {
      %v = hir.mem_read %Ai[%i, %j] at %tj offset 0 : i32
      %j1 = hir.delay %j by 1 at %tj offset 0 : i32
      hir.mem_write %v to %Co[%j1, %i] at %tj offset 1
      hir.yield at %tj offset 1
    }
    hir.yield at %tf offset 1
  }
  hir.return
}
"#;
        let m = parse_pretty(src).expect("parse listing 1");
        let mut diags = ir::DiagnosticEngine::new();
        ir::verify_module(&m, &crate::hir_registry(), &mut diags)
            .unwrap_or_else(|_| panic!("{}", diags.render()));
        // Functionally identical to the builder version.
        use crate::interp::{ArgValue, Interpreter};
        let input: Vec<i128> = (0..256).collect();
        let r = Interpreter::new(&m)
            .run(
                "transpose",
                &[ArgValue::tensor_from(&input), ArgValue::uninit_tensor(256)],
            )
            .expect("simulate");
        for i in 0..16usize {
            for j in 0..16usize {
                assert_eq!(r.tensors[&1][j * 16 + i], Some(input[i * 16 + j]));
            }
        }
    }

    #[test]
    fn pretty_print_then_parse_is_functionally_stable() {
        // Build with the API, print, parse, print again: fixpoint.
        let mut hb = HirBuilder::new();
        let f = hb.func("k", &[("x", Type::int(32))], &[0]);
        let t = f.time_var(hb.module());
        let x = f.args(hb.module())[0];
        let d = hb.delay(x, 2, t, 0);
        let s = hb.add(d, d);
        let _ = s;
        hb.return_(&[s]);
        let m = hb.finish();
        let text = pretty_module(&m);
        let reparsed =
            parse_pretty(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{text}"));
        assert_eq!(text, pretty_module(&reparsed), "pretty fixpoint");
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse_pretty("hir.func @f at %t( {").unwrap_err();
        assert!(err.line >= 1);
        let err = parse_pretty("hir.func @f at %t() {\n  %v = hir.mem_read %nope[%i] at %t\n}")
            .unwrap_err();
        assert!(err.message.contains("undefined value"), "{err}");
    }

    #[test]
    fn offset_errors_name_the_offending_token() {
        let err =
            parse_pretty("hir.func @f at %t() {\n  %d = hir.delay %t by %bogus at %t offset 0\n}")
                .unwrap_err();
        assert!(err.message.contains("%bogus"), "{err}");
        assert_eq!(err.line, 2);

        let err =
            parse_pretty("hir.func @f at %t() {\n  hir.yield at %t offset @sym\n}").unwrap_err();
        assert!(err.message.contains("Symbol"), "names the token: {err}");
    }

    #[test]
    fn memref_param_errors_name_the_offending_token() {
        let err = parse_pretty("hir.func @f at %t(%A : !hir.memref<@oops*i32, r, bram>) {\n}")
            .unwrap_err();
        assert!(
            err.message.contains("expected memref dimension") && err.message.contains("Symbol"),
            "{err}"
        );
    }

    #[test]
    fn recovery_reports_one_error_per_broken_function() {
        let src = r#"
hir.func @good at %t(%x : i32) -> (i32 delay 0) {
  %y = hir.add (%x, %x) : (i32, i32) -> (i32)
  hir.return %y
}
hir.func @broken1 at %t() {
  %v = hir.bogus_unknown_thing ???
}
hir.func @broken2 at %t() {
  %v = hir.mem_read %undefined[%i] at %t offset 0 : i32
}
hir.func @also_good at %t() {
  hir.return
}
"#;
        let r = parse_pretty_recover(src, 0);
        assert_eq!(r.errors.len(), 2, "{:?}", r.errors);
        assert!(!r.hit_error_limit);
        assert!(r.errors[0].line >= 6, "{:?}", r.errors[0]);
        assert!(r.errors[1].message.contains("undefined value"));
        // Both good functions survived.
        assert_eq!(r.module.top_ops().len(), 4, "partial funcs stay in module");
    }

    #[test]
    fn recovery_matches_strict_parse_on_valid_input() {
        let src = "hir.func @g at %t() {\n  hir.return\n}\n";
        let r = parse_pretty_recover(src, 0);
        assert!(r.errors.is_empty(), "{:?}", r.errors);
        assert_eq!(
            pretty_module(&r.module),
            pretty_module(&parse_pretty(src).unwrap())
        );
    }

    #[test]
    fn recovery_honors_error_limit() {
        let mut src = String::new();
        for i in 0..8 {
            src.push_str(&format!("hir.func @f{i} at %t() {{\n  hir.oops ???\n}}\n"));
        }
        let r = parse_pretty_recover(&src, 2);
        assert_eq!(r.errors.len(), 2);
        assert!(r.hit_error_limit);
    }
}
