//! Typed wrappers over raw [`ir::OpId`]s for each HIR operation.
//!
//! Wrappers are thin `Copy` handles validated at construction via
//! [`wrap`](FuncOp::wrap)-style constructors; accessors assume verified IR
//! and panic on malformed structure (the verifier reports those first).

use crate::dialect::{attrkey, opname, CmpPredicate};
use crate::types::{self, MemrefInfo};
use ir::{Attribute, BlockId, Module, OpId, RegionId, Type, ValueId};

macro_rules! wrapper {
    ($(#[$doc:meta])* $name:ident, $opname:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
        pub struct $name(pub OpId);

        impl $name {
            /// Wrap `op` if it is the right kind of operation.
            pub fn wrap(m: &Module, op: OpId) -> Option<Self> {
                (m.op(op).name().as_str() == $opname).then_some(Self(op))
            }

            /// The underlying op id.
            pub fn id(self) -> OpId {
                self.0
            }
        }
    };
}

/// The static cycle offset of a scheduled op (its `offset` attribute),
/// defaulting to 0 when absent.
pub fn time_offset(m: &Module, op: OpId) -> i64 {
    m.op(op)
        .attr(attrkey::OFFSET)
        .and_then(|a| a.as_int())
        .unwrap_or(0) as i64
}

/// The time operand of a scheduled op (always the last operand), if the op
/// is scheduled at all.
pub fn time_operand(m: &Module, op: OpId) -> Option<ValueId> {
    let last = *m.op(op).operands().last()?;
    types::is_time(&m.value_type(last)).then_some(last)
}

// ------------------------------------------------------------------ hir.func

wrapper!(
    /// `hir.func`: a hardware function. The entry block's arguments are the
    /// function's data/memref arguments followed by the start-time variable.
    FuncOp,
    opname::FUNC
);

impl FuncOp {
    /// The function's symbol name.
    pub fn name(self, m: &Module) -> String {
        m.op(self.0)
            .attr(ir::SYM_NAME)
            .and_then(|a| a.as_str())
            .expect("verified func")
            .to_string()
    }

    /// Whether this is an external (blackbox Verilog) declaration.
    pub fn is_external(self, m: &Module) -> bool {
        m.op(self.0).attr(attrkey::EXTERNAL).is_some()
    }

    /// The body region (panics for external functions).
    pub fn body_region(self, m: &Module) -> RegionId {
        m.op(self.0).regions()[0]
    }

    /// The single body block.
    pub fn body(self, m: &Module) -> BlockId {
        m.region(self.body_region(m)).blocks()[0]
    }

    /// The start-time variable `%t` (last entry-block argument).
    pub fn time_var(self, m: &Module) -> ValueId {
        *m.block(self.body(m)).args().last().expect("verified func")
    }

    /// Data/memref arguments (entry args minus the time variable).
    pub fn args(self, m: &Module) -> Vec<ValueId> {
        let args = m.block(self.body(m)).args();
        args[..args.len() - 1].to_vec()
    }

    /// Argument types (works for external functions too).
    pub fn arg_types(self, m: &Module) -> Vec<Type> {
        if self.is_external(m) {
            m.op(self.0)
                .attr(attrkey::ARG_TYPES)
                .and_then(|a| a.as_array())
                .map(|a| a.iter().filter_map(|x| x.as_type().cloned()).collect())
                .unwrap_or_default()
        } else {
            self.args(m).into_iter().map(|v| m.value_type(v)).collect()
        }
    }

    /// Result types.
    pub fn result_types(self, m: &Module) -> Vec<Type> {
        if self.is_external(m) {
            m.op(self.0)
                .attr(attrkey::RESULT_TYPES)
                .and_then(|a| a.as_array())
                .map(|a| a.iter().filter_map(|x| x.as_type().cloned()).collect())
                .unwrap_or_default()
        } else {
            self.return_op(m)
                .map(|r| {
                    m.op(r)
                        .operands()
                        .iter()
                        .map(|&v| m.value_type(v))
                        .collect()
                })
                .unwrap_or_default()
        }
    }

    /// The terminating `hir.return` (non-external functions).
    pub fn return_op(self, m: &Module) -> Option<OpId> {
        m.block(self.body(m)).ops().last().copied()
    }

    /// Delay (cycles after `%t`) at which each result is valid.
    pub fn result_delays(self, m: &Module) -> Vec<i64> {
        m.op(self.0)
            .attr(attrkey::RESULT_DELAYS)
            .and_then(|a| a.as_array())
            .map(|a| {
                a.iter()
                    .filter_map(|x| x.as_int())
                    .map(|v| v as i64)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Delay at which each argument must be provided (defaults to all-0).
    pub fn arg_delays(self, m: &Module) -> Vec<i64> {
        m.op(self.0)
            .attr(attrkey::ARG_DELAYS)
            .and_then(|a| a.as_array())
            .map(|a| {
                a.iter()
                    .filter_map(|x| x.as_int())
                    .map(|v| v as i64)
                    .collect()
            })
            .unwrap_or_else(|| vec![0; self.arg_types(m).len()])
    }

    /// Optional human-readable argument names (used for Verilog ports).
    pub fn arg_names(self, m: &Module) -> Option<Vec<String>> {
        m.op(self.0)
            .attr(attrkey::ARG_NAMES)
            .and_then(|a| a.as_array())
            .map(|a| {
                a.iter()
                    .filter_map(|x| x.as_str().map(str::to_owned))
                    .collect()
            })
    }
}

// ------------------------------------------------------------------- hir.for

wrapper!(
    /// `hir.for`: sequential or pipelined loop (paper §4.1).
    ForOp,
    opname::FOR
);

impl ForOp {
    pub fn lower_bound(self, m: &Module) -> ValueId {
        m.op(self.0).operands()[0]
    }
    pub fn upper_bound(self, m: &Module) -> ValueId {
        m.op(self.0).operands()[1]
    }
    pub fn step(self, m: &Module) -> ValueId {
        m.op(self.0).operands()[2]
    }
    /// Parent time variable the first iteration is scheduled against.
    pub fn time(self, m: &Module) -> ValueId {
        m.op(self.0).operands()[3]
    }
    /// Offset of the first iteration from [`ForOp::time`].
    pub fn offset(self, m: &Module) -> i64 {
        time_offset(m, self.0)
    }
    pub fn body(self, m: &Module) -> BlockId {
        m.region(m.op(self.0).regions()[0]).blocks()[0]
    }
    /// The loop induction variable.
    pub fn induction_var(self, m: &Module) -> ValueId {
        m.block(self.body(m)).args()[0]
    }
    /// The per-iteration time variable `%ti`.
    pub fn iter_time(self, m: &Module) -> ValueId {
        m.block(self.body(m)).args()[1]
    }
    /// The loop completion time `%tf`.
    pub fn result_time(self, m: &Module) -> ValueId {
        m.op(self.0).results()[0]
    }
    /// The body's `hir.yield` (which may appear anywhere in the body —
    /// paper §4.2: textual order carries no meaning).
    pub fn yield_op(self, m: &Module) -> YieldOp {
        let body = self.body(m);
        let y = m
            .block(body)
            .ops()
            .iter()
            .copied()
            .find(|&o| m.op(o).name().as_str() == opname::YIELD)
            .expect("verified loop has a yield");
        YieldOp(y)
    }
    /// Initiation interval when the yield is scheduled directly on the
    /// iteration time with a static offset; `None` for data-dependent II
    /// (e.g. yields on an inner loop's completion time).
    pub fn initiation_interval(self, m: &Module) -> Option<i64> {
        let y = self.yield_op(m);
        (y.time(m) == self.iter_time(m)).then(|| y.offset(m))
    }
}

wrapper!(
    /// `hir.unroll_for`: fully unrolled loop with static bounds (paper §7.3).
    UnrollForOp,
    opname::UNROLL_FOR
);

impl UnrollForOp {
    pub fn lb(self, m: &Module) -> i64 {
        m.op(self.0)
            .attr(attrkey::LB)
            .and_then(|a| a.as_int())
            .expect("verified") as i64
    }
    pub fn ub(self, m: &Module) -> i64 {
        m.op(self.0)
            .attr(attrkey::UB)
            .and_then(|a| a.as_int())
            .expect("verified") as i64
    }
    pub fn step(self, m: &Module) -> i64 {
        m.op(self.0)
            .attr(attrkey::STEP)
            .and_then(|a| a.as_int())
            .expect("verified") as i64
    }
    pub fn time(self, m: &Module) -> ValueId {
        m.op(self.0).operands()[0]
    }
    pub fn offset(self, m: &Module) -> i64 {
        time_offset(m, self.0)
    }
    pub fn body(self, m: &Module) -> BlockId {
        m.region(m.op(self.0).regions()[0]).blocks()[0]
    }
    pub fn induction_var(self, m: &Module) -> ValueId {
        m.block(self.body(m)).args()[0]
    }
    pub fn iter_time(self, m: &Module) -> ValueId {
        m.block(self.body(m)).args()[1]
    }
    pub fn result_time(self, m: &Module) -> ValueId {
        m.op(self.0).results()[0]
    }
    pub fn yield_op(self, m: &Module) -> YieldOp {
        let body = self.body(m);
        let y = m
            .block(body)
            .ops()
            .iter()
            .copied()
            .find(|&o| m.op(o).name().as_str() == opname::YIELD)
            .expect("verified loop has a yield");
        YieldOp(y)
    }
    /// The unrolled iteration values.
    pub fn iterations(self, m: &Module) -> Vec<i64> {
        let (lb, ub, step) = (self.lb(m), self.ub(m), self.step(m));
        let mut v = Vec::new();
        let mut i = lb;
        while i < ub {
            v.push(i);
            i += step;
        }
        v
    }
}

wrapper!(
    /// `hir.yield`: schedules the next loop iteration (paper §4.2).
    YieldOp,
    opname::YIELD
);

impl YieldOp {
    pub fn time(self, m: &Module) -> ValueId {
        m.op(self.0).operands()[0]
    }
    pub fn offset(self, m: &Module) -> i64 {
        time_offset(m, self.0)
    }
}

wrapper!(
    /// `hir.return`: function terminator.
    ReturnOp,
    opname::RETURN
);

impl ReturnOp {
    pub fn values(self, m: &Module) -> Vec<ValueId> {
        m.op(self.0).operands().to_vec()
    }
}

wrapper!(
    /// `hir.call`: invoke another HIR function or external module (paper §5.4).
    CallOp,
    opname::CALL
);

impl CallOp {
    pub fn callee(self, m: &Module) -> String {
        m.op(self.0)
            .attr(attrkey::CALLEE)
            .and_then(|a| a.as_symbol())
            .expect("verified")
            .to_string()
    }
    pub fn args(self, m: &Module) -> Vec<ValueId> {
        let ops = m.op(self.0).operands();
        ops[..ops.len() - 1].to_vec()
    }
    pub fn time(self, m: &Module) -> ValueId {
        *m.op(self.0).operands().last().expect("verified")
    }
    pub fn offset(self, m: &Module) -> i64 {
        time_offset(m, self.0)
    }
}

wrapper!(
    /// `hir.if`: conditional region execution.
    IfOp,
    opname::IF
);

impl IfOp {
    pub fn condition(self, m: &Module) -> ValueId {
        m.op(self.0).operands()[0]
    }
    pub fn time(self, m: &Module) -> ValueId {
        m.op(self.0).operands()[1]
    }
    pub fn offset(self, m: &Module) -> i64 {
        time_offset(m, self.0)
    }
    pub fn then_block(self, m: &Module) -> BlockId {
        m.region(m.op(self.0).regions()[0]).blocks()[0]
    }
    pub fn else_block(self, m: &Module) -> Option<BlockId> {
        m.op(self.0)
            .regions()
            .get(1)
            .map(|&r| m.region(r).blocks()[0])
    }
}

// ------------------------------------------------------------- value-producing

wrapper!(
    /// `hir.constant`: compile-time constant.
    ConstantOp,
    opname::CONSTANT
);

impl ConstantOp {
    pub fn value_attr(self, m: &Module) -> Attribute {
        m.op(self.0).attr(attrkey::VALUE).expect("verified").clone()
    }
    /// Integer payload (panics for float constants).
    pub fn int_value(self, m: &Module) -> i64 {
        self.value_attr(m).as_int().expect("integer constant") as i64
    }
    pub fn result(self, m: &Module) -> ValueId {
        m.op(self.0).results()[0]
    }
}

wrapper!(
    /// `hir.delay`: shift-register delay (paper Table 3).
    DelayOp,
    opname::DELAY
);

impl DelayOp {
    pub fn input(self, m: &Module) -> ValueId {
        m.op(self.0).operands()[0]
    }
    pub fn time(self, m: &Module) -> ValueId {
        m.op(self.0).operands()[1]
    }
    pub fn by(self, m: &Module) -> i64 {
        m.op(self.0)
            .attr(attrkey::BY)
            .and_then(|a| a.as_int())
            .expect("verified") as i64
    }
    pub fn offset(self, m: &Module) -> i64 {
        time_offset(m, self.0)
    }
    pub fn result(self, m: &Module) -> ValueId {
        m.op(self.0).results()[0]
    }
}

wrapper!(
    /// `hir.alloc`: allocate an on-chip tensor; each result is one port.
    AllocOp,
    opname::ALLOC
);

impl AllocOp {
    pub fn ports(self, m: &Module) -> Vec<ValueId> {
        m.op(self.0).results().to_vec()
    }
    pub fn info(self, m: &Module) -> MemrefInfo {
        MemrefInfo::from_type(&m.value_type(m.op(self.0).results()[0])).expect("verified alloc")
    }
}

wrapper!(
    /// `hir.mem_read`: scheduled read through a memref port.
    MemReadOp,
    opname::MEM_READ
);

impl MemReadOp {
    pub fn memref(self, m: &Module) -> ValueId {
        m.op(self.0).operands()[0]
    }
    pub fn indices(self, m: &Module) -> Vec<ValueId> {
        let ops = m.op(self.0).operands();
        ops[1..ops.len() - 1].to_vec()
    }
    pub fn time(self, m: &Module) -> ValueId {
        *m.op(self.0).operands().last().expect("verified")
    }
    pub fn offset(self, m: &Module) -> i64 {
        time_offset(m, self.0)
    }
    pub fn result(self, m: &Module) -> ValueId {
        m.op(self.0).results()[0]
    }
    pub fn info(self, m: &Module) -> MemrefInfo {
        MemrefInfo::from_type(&m.value_type(self.memref(m))).expect("verified mem_read")
    }
    /// Read latency of the backing storage (0 for registers, 1 for RAM).
    pub fn latency(self, m: &Module) -> i64 {
        self.info(m).read_latency() as i64
    }
}

wrapper!(
    /// `hir.mem_write`: scheduled write through a memref port (takes 1 cycle).
    MemWriteOp,
    opname::MEM_WRITE
);

impl MemWriteOp {
    pub fn value(self, m: &Module) -> ValueId {
        m.op(self.0).operands()[0]
    }
    pub fn memref(self, m: &Module) -> ValueId {
        m.op(self.0).operands()[1]
    }
    pub fn indices(self, m: &Module) -> Vec<ValueId> {
        let ops = m.op(self.0).operands();
        ops[2..ops.len() - 1].to_vec()
    }
    pub fn time(self, m: &Module) -> ValueId {
        *m.op(self.0).operands().last().expect("verified")
    }
    pub fn offset(self, m: &Module) -> i64 {
        time_offset(m, self.0)
    }
    pub fn info(self, m: &Module) -> MemrefInfo {
        MemrefInfo::from_type(&m.value_type(self.memref(m))).expect("verified mem_write")
    }
}

// ------------------------------------------------------------------- compute

/// Kind of a combinational compute op.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ComputeKind {
    Add,
    Sub,
    Mult,
    And,
    Or,
    Xor,
    Not,
    Shl,
    Shr,
    Cmp(CmpPredicate),
    Select,
    Trunc,
    Zext,
    Sext,
    Slice,
}

/// Classify an op as a combinational compute op, if it is one.
pub fn compute_kind(m: &Module, op: OpId) -> Option<ComputeKind> {
    Some(match m.op(op).name().as_str() {
        opname::ADD => ComputeKind::Add,
        opname::SUB => ComputeKind::Sub,
        opname::MULT => ComputeKind::Mult,
        opname::AND => ComputeKind::And,
        opname::OR => ComputeKind::Or,
        opname::XOR => ComputeKind::Xor,
        opname::NOT => ComputeKind::Not,
        opname::SHL => ComputeKind::Shl,
        opname::SHR => ComputeKind::Shr,
        opname::CMP => ComputeKind::Cmp(
            m.op(op)
                .attr(attrkey::PREDICATE)
                .and_then(|a| a.as_str())
                .and_then(CmpPredicate::from_mnemonic)?,
        ),
        opname::SELECT => ComputeKind::Select,
        opname::TRUNC => ComputeKind::Trunc,
        opname::ZEXT => ComputeKind::Zext,
        opname::SEXT => ComputeKind::Sext,
        opname::SLICE => ComputeKind::Slice,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HirBuilder;
    use crate::types::{MemKind, Port};

    #[test]
    fn for_op_accessors_roundtrip() {
        let mut hb = HirBuilder::new();
        let f = hb.func("f", &[], &[]);
        let c0 = hb.const_val(0);
        let c16 = hb.const_val(16);
        let c1 = hb.const_val(1);
        let t = f.time_var(hb.module());
        let lp = hb.for_loop(c0, c16, c1, t, 1, Type::int(8));
        hb.in_loop(lp, |hb, _iv, ti| {
            hb.yield_at(ti, 1);
        });
        hb.return_(&[]);
        let m = hb.finish();

        let lp = ForOp::wrap(&m, lp.id()).unwrap();
        assert_eq!(lp.offset(&m), 1);
        assert_eq!(lp.initiation_interval(&m), Some(1));
        assert!(types::is_time(&m.value_type(lp.iter_time(&m))));
        assert!(types::is_time(&m.value_type(lp.result_time(&m))));
        assert_eq!(m.value_type(lp.induction_var(&m)), Type::int(8));
        let f = FuncOp::wrap(&m, m.top_ops()[0]).unwrap();
        assert_eq!(f.name(&m), "f");
        assert!(!f.is_external(&m));
    }

    #[test]
    fn mem_ops_accessors() {
        let mut hb = HirBuilder::new();
        let mem_r = MemrefInfo::packed(&[8], Type::int(32), Port::Read, MemKind::BlockRam);
        let mem_w = mem_r.with_port(Port::Write);
        let f = hb.func("g", &[("a", mem_r.to_type()), ("b", mem_w.to_type())], &[]);
        let t = f.time_var(hb.module());
        let args = f.args(hb.module());
        let idx = hb.const_val(3);
        let v = hb.mem_read(args[0], &[idx], t, 0);
        hb.mem_write(v, args[1], &[idx], t, 1);
        hb.return_(&[]);
        let m = hb.finish();

        let body = FuncOp::wrap(&m, m.top_ops()[0]).unwrap().body(&m);
        let ops = m.block(body).ops();
        let rd = MemReadOp::wrap(&m, ops[1]).expect("read at position 1");
        assert_eq!(rd.indices(&m).len(), 1);
        assert_eq!(rd.latency(&m), 1);
        assert_eq!(rd.offset(&m), 0);
        let wr = MemWriteOp::wrap(&m, ops[2]).expect("write at position 2");
        assert_eq!(wr.offset(&m), 1);
        assert_eq!(wr.info(&m).port, Port::Write);
        assert_eq!(wr.value(&m), rd.result(&m));
    }

    #[test]
    fn compute_kind_classification() {
        let mut hb = HirBuilder::new();
        let f = hb.func("h", &[("x", Type::int(32))], &[]);
        let x = f.args(hb.module())[0];
        let s = hb.add(x, x);
        let c = hb.cmp(CmpPredicate::Lt, x, s);
        hb.return_(&[]);
        let m = hb.finish();
        let s_op = m.defining_op(s).unwrap();
        let c_op = m.defining_op(c).unwrap();
        assert_eq!(compute_kind(&m, s_op), Some(ComputeKind::Add));
        assert_eq!(
            compute_kind(&m, c_op),
            Some(ComputeKind::Cmp(CmpPredicate::Lt))
        );
        assert_eq!(compute_kind(&m, m.top_ops()[0]), None);
    }
}
