//! Paper-style pretty printer for HIR.
//!
//! Produces the human-readable syntax used throughout the paper's listings
//! (e.g. `hir.mem_write %v to %C[%i] at %ti offset 1`), used for examples and
//! for diagnostic snippets. The canonical, round-trippable form remains
//! [`ir::print_module`].

use crate::dialect::{attrkey, opname};
use crate::ops;
use crate::types::{self, MemrefInfo};
use ir::{Module, OpId, ValueId};
use std::collections::HashMap;
use std::fmt::Write;

/// Pretty-print every function in the module.
pub fn pretty_module(m: &Module) -> String {
    let mut out = String::new();
    for &top in m.top_ops() {
        out.push_str(&pretty_func(m, top));
        out.push('\n');
    }
    out
}

/// Pretty-print one `hir.func` (or any op tree).
pub fn pretty_func(m: &Module, func: OpId) -> String {
    let mut p = Pretty::new(m);
    p.print_tree(func, 0);
    p.out
}

/// Pretty-print a single op line (without its region bodies), used for
/// diagnostics like the paper's Figure 1b.
pub fn pretty_op(m: &Module, op: OpId) -> String {
    let mut p = Pretty::new(m);
    // Pre-name every value in the enclosing function so operand names are
    // stable regardless of which op we print.
    let mut root = op;
    while let Some(parent) = m.op(root).parent() {
        root = m.block_parent_op(parent);
    }
    p.assign_names(root);
    p.print_op_line(op)
}

struct Pretty<'m> {
    m: &'m Module,
    registry: ir::DialectRegistry,
    names: HashMap<ValueId, String>,
    next: usize,
    out: String,
}

impl<'m> Pretty<'m> {
    fn new(m: &'m Module) -> Self {
        Pretty {
            m,
            registry: crate::dialect::hir_registry(),
            names: HashMap::new(),
            next: 0,
            out: String::new(),
        }
    }

    /// Whether `op` is well-formed enough for its specialized pretty form.
    ///
    /// The per-op arms below index operands, results, regions, block
    /// arguments and attributes at fixed positions — guarantees that hold
    /// only for spec-conforming ops. Partially recovered modules from the
    /// error-tolerant parsers can violate them, so anything non-conforming
    /// is printed in the generic form instead.
    fn spec_conforms(&self, op: OpId) -> bool {
        let m = self.m;
        let data = m.op(op);
        let name = data.name().as_str();
        let Some(spec) = self.registry.spec(name) else {
            return true; // unknown ops already use the generic form
        };
        if !spec.operand_arity().check(data.operands().len())
            || !spec.result_arity().check(data.results().len())
            || !spec.region_arity().check(data.regions().len())
            || !data
                .regions()
                .iter()
                .all(|&r| !m.region(r).blocks().is_empty())
        {
            return false;
        }
        let first_block_args = |min: usize| {
            data.regions().first().is_some_and(|&r| {
                m.region(r)
                    .blocks()
                    .first()
                    .is_some_and(|&b| m.block(b).args().len() >= min)
            })
        };
        match name {
            opname::FUNC => {
                let named = data.attr(ir::SYM_NAME).and_then(|a| a.as_str()).is_some();
                // Externals have no body; everyone else needs the entry
                // block with at least the start-time argument.
                named && (ops::FuncOp(op).is_external(m) || first_block_args(1))
            }
            // Induction variable + iteration time.
            opname::FOR => first_block_args(2),
            opname::UNROLL_FOR => {
                first_block_args(2)
                    && [attrkey::LB, attrkey::UB, attrkey::STEP]
                        .iter()
                        .all(|k| data.attr(k).and_then(|a| a.as_int()).is_some())
            }
            opname::CALL => data
                .attr(attrkey::CALLEE)
                .and_then(|a| a.as_symbol())
                .is_some(),
            opname::CONSTANT => data.attr(attrkey::VALUE).is_some(),
            opname::DELAY => data.attr(attrkey::BY).and_then(|a| a.as_int()).is_some(),
            _ => true,
        }
    }

    fn assign_names(&mut self, root: OpId) {
        // Walk in print order: block args then results.
        let m = self.m;
        m.walk(root, &mut |op| {
            for &r in m.op(op).regions() {
                for &b in m.region(r).blocks() {
                    for &a in m.block(b).args() {
                        self.name(a);
                    }
                }
            }
            for &res in m.op(op).results() {
                self.name(res);
            }
        });
    }

    fn name(&mut self, v: ValueId) -> String {
        if let Some(n) = self.names.get(&v) {
            return n.clone();
        }
        // Constants get their literal value as name, like the paper (%16);
        // a typed constant with the same value gets a disambiguated name so
        // the printed text stays parseable.
        let n = if let Some(def) = self.m.defining_op(v) {
            // Read the attribute leniently: this runs inside diagnostic
            // rendering, where the constant may be the malformed op (e.g. a
            // missing 'value' attribute) being reported.
            if ops::ConstantOp::wrap(self.m, def).is_some() {
                if let Some(i) = self.m.op(def).attr(attrkey::VALUE).and_then(|a| a.as_int()) {
                    let base = format!("%c{i}");
                    if self.names.values().any(|existing| existing == &base) {
                        self.fresh()
                    } else {
                        base
                    }
                } else {
                    self.fresh()
                }
            } else {
                self.fresh()
            }
        } else {
            self.fresh()
        };
        self.names.insert(v, n.clone());
        n
    }

    fn fresh(&mut self) -> String {
        let n = format!("%{}", self.next);
        self.next += 1;
        n
    }

    fn indent(&mut self, depth: usize) {
        for _ in 0..depth {
            self.out.push_str("  ");
        }
    }

    fn print_tree(&mut self, op: OpId, depth: usize) {
        let m = self.m;
        let name = m.op(op).name().as_str().to_string();
        self.indent(depth);
        if !self.spec_conforms(op) {
            let line = self.generic_op_line(op);
            self.out.push_str(&line);
            self.out.push('\n');
            for &r in m.op(op).regions().to_vec().iter() {
                for &b in m.region(r).blocks().to_vec().iter() {
                    for &o in m.block(b).ops().to_vec().iter() {
                        self.print_tree(o, depth + 1);
                    }
                }
            }
            return;
        }
        match name.as_str() {
            opname::FUNC => {
                let f = ops::FuncOp(op);
                if f.is_external(m) {
                    let args = f
                        .arg_types(m)
                        .iter()
                        .map(type_str)
                        .collect::<Vec<_>>()
                        .join(", ");
                    let results = f
                        .result_types(m)
                        .iter()
                        .zip(f.result_delays(m).iter().chain(std::iter::repeat(&0)))
                        .map(|(t, d)| format!("{} delay {d}", type_str(t)))
                        .collect::<Vec<_>>()
                        .join(", ");
                    let line = format!("hir.func extern @{}({args}) -> ({results})\n", f.name(m));
                    self.out.push_str(&line);
                    return;
                }
                let t = self.name(f.time_var(m));
                let mut header = format!("hir.func @{} at {t}(", f.name(m));
                let arg_names = f.arg_names(m);
                for (i, a) in f.args(m).iter().enumerate() {
                    if i > 0 {
                        header.push_str(", ");
                    }
                    let n = self.name(*a);
                    let ty = m.value_type(*a);
                    let label = arg_names
                        .as_ref()
                        .and_then(|ns| ns.get(i).cloned())
                        .unwrap_or_else(|| n.clone());
                    let _ = write!(header, "{n} /*{label}*/ : {}", type_str(&ty));
                }
                header.push(')');
                // Result signature: types with their declared delays.
                let rtypes = f.result_types(m);
                if !rtypes.is_empty() {
                    let delays = f.result_delays(m);
                    let results = rtypes
                        .iter()
                        .enumerate()
                        .map(|(i, t)| {
                            format!(
                                "{} delay {}",
                                type_str(t),
                                delays.get(i).copied().unwrap_or(0)
                            )
                        })
                        .collect::<Vec<_>>()
                        .join(", ");
                    let _ = write!(header, " -> ({results})");
                }
                header.push_str(" {\n");
                self.out.push_str(&header);
                let body = f.body(m);
                for &o in m.block(body).ops().to_vec().iter() {
                    self.print_tree(o, depth + 1);
                }
                self.indent(depth);
                self.out.push_str("}\n");
            }
            opname::FOR => {
                let lp = ops::ForOp(op);
                let iv = self.name(lp.induction_var(m));
                let ti = self.name(lp.iter_time(m));
                let tf = self.name(lp.result_time(m));
                let lb = self.name(lp.lower_bound(m));
                let ub = self.name(lp.upper_bound(m));
                let step = self.name(lp.step(m));
                let t = self.name(lp.time(m));
                let iv_ty = m.value_type(lp.induction_var(m));
                let line = format!(
                    "{tf} = hir.for {iv} : {iv_ty} = {lb} to {ub} step {step} iter_time({ti} = {t} offset {}) {{\n",
                    lp.offset(m)
                );
                self.out.push_str(&line);
                for &o in m.block(lp.body(m)).ops().to_vec().iter() {
                    self.print_tree(o, depth + 1);
                }
                self.indent(depth);
                self.out.push_str("}\n");
            }
            opname::UNROLL_FOR => {
                let lp = ops::UnrollForOp(op);
                let iv = self.name(lp.induction_var(m));
                let ti = self.name(lp.iter_time(m));
                let tf = self.name(lp.result_time(m));
                let t = self.name(lp.time(m));
                let line = format!(
                    "{tf} = hir.unroll_for {iv} = {} to {} step {} iter_time({ti} = {t} offset {}) {{\n",
                    lp.lb(m),
                    lp.ub(m),
                    lp.step(m),
                    lp.offset(m)
                );
                self.out.push_str(&line);
                for &o in m.block(lp.body(m)).ops().to_vec().iter() {
                    self.print_tree(o, depth + 1);
                }
                self.indent(depth);
                self.out.push_str("}\n");
            }
            opname::IF => {
                let i = ops::IfOp(op);
                let c = self.name(i.condition(m));
                let t = self.name(i.time(m));
                let line = format!("hir.if {c} at {t} offset {} {{\n", i.offset(m));
                self.out.push_str(&line);
                for &o in m.block(i.then_block(m)).ops().to_vec().iter() {
                    self.print_tree(o, depth + 1);
                }
                if let Some(e) = i.else_block(m) {
                    self.indent(depth);
                    self.out.push_str("} else {\n");
                    for &o in m.block(e).ops().to_vec().iter() {
                        self.print_tree(o, depth + 1);
                    }
                }
                self.indent(depth);
                self.out.push_str("}\n");
            }
            _ => {
                let line = self.print_op_line(op);
                self.out.push_str(&line);
                self.out.push('\n');
            }
        }
    }

    /// One-line pretty form of a non-region op.
    fn print_op_line(&mut self, op: OpId) -> String {
        let m = self.m;
        if !self.spec_conforms(op) {
            return self.generic_op_line(op);
        }
        let data = m.op(op);
        let name = data.name().as_str().to_string();
        match name.as_str() {
            opname::CONSTANT => {
                let c = ops::ConstantOp(op);
                let res = self.name(c.result(m));
                format!("{res} = hir.constant {}", c.value_attr(m))
            }
            opname::YIELD => {
                let y = ops::YieldOp(op);
                let t = self.name(y.time(m));
                format!("hir.yield at {t} offset {}", y.offset(m))
            }
            opname::RETURN => {
                let vals: Vec<String> = data.operands().iter().map(|&v| self.name(v)).collect();
                if vals.is_empty() {
                    "hir.return".to_string()
                } else {
                    format!("hir.return {}", vals.join(", "))
                }
            }
            opname::DELAY => {
                let d = ops::DelayOp(op);
                let res = self.name(d.result(m));
                let input = self.name(d.input(m));
                let t = self.name(d.time(m));
                format!(
                    "{res} = hir.delay {input} by {} at {t} offset {} : {}",
                    d.by(m),
                    d.offset(m),
                    m.value_type(d.result(m))
                )
            }
            opname::MEM_READ => {
                let r = ops::MemReadOp(op);
                let res = self.name(r.result(m));
                let mem = self.name(r.memref(m));
                let idx: Vec<String> = r.indices(m).iter().map(|&v| self.name(v)).collect();
                let t = self.name(r.time(m));
                format!(
                    "{res} = hir.mem_read {mem}[{}] at {t} offset {} : {}",
                    idx.join(", "),
                    r.offset(m),
                    m.value_type(r.result(m))
                )
            }
            opname::MEM_WRITE => {
                let w = ops::MemWriteOp(op);
                let v = self.name(w.value(m));
                let mem = self.name(w.memref(m));
                let idx: Vec<String> = w.indices(m).iter().map(|&x| self.name(x)).collect();
                let t = self.name(w.time(m));
                format!(
                    "hir.mem_write {v} to {mem}[{}] at {t} offset {}",
                    idx.join(", "),
                    w.offset(m)
                )
            }
            opname::ALLOC => {
                let a = ops::AllocOp(op);
                let ports: Vec<String> = a.ports(m).iter().map(|&p| self.name(p)).collect();
                let types: Vec<String> = a
                    .ports(m)
                    .iter()
                    .map(|&p| type_str(&m.value_type(p)))
                    .collect();
                format!(
                    "{} = hir.alloc() : ({})",
                    ports.join(", "),
                    types.join(", ")
                )
            }
            opname::CALL => {
                let c = ops::CallOp(op);
                let results: Vec<String> = data.results().iter().map(|&v| self.name(v)).collect();
                let args: Vec<String> = c.args(m).iter().map(|&v| self.name(v)).collect();
                let t = self.name(c.time(m));
                let prefix = if results.is_empty() {
                    String::new()
                } else {
                    format!("{} = ", results.join(", "))
                };
                format!(
                    "{prefix}hir.call @{}({}) at {t} offset {}",
                    c.callee(m),
                    args.join(", "),
                    c.offset(m)
                )
            }
            _ => self.generic_op_line(op),
        }
    }

    /// Generic one-line form, safe for any op regardless of shape:
    /// `%r = hir.add (%a, %b) : (i32, i32) -> (i32)`.
    fn generic_op_line(&mut self, op: OpId) -> String {
        let m = self.m;
        let data = m.op(op);
        let name = data.name().as_str().to_string();
        let results: Vec<String> = data.results().iter().map(|&v| self.name(v)).collect();
        let operands: Vec<String> = data.operands().iter().map(|&v| self.name(v)).collect();
        let in_tys: Vec<String> = data
            .operands()
            .iter()
            .map(|&v| type_str(&m.value_type(v)))
            .collect();
        let out_tys: Vec<String> = data
            .results()
            .iter()
            .map(|&v| type_str(&m.value_type(v)))
            .collect();
        let prefix = if results.is_empty() {
            String::new()
        } else {
            format!("{} = ", results.join(", "))
        };
        let mut line = format!("{prefix}{name} ({})", operands.join(", "));
        let _ = write!(
            line,
            " : ({}) -> ({})",
            in_tys.join(", "),
            out_tys.join(", ")
        );
        if let Some(p) = data.attr(attrkey::PREDICATE).and_then(|a| a.as_str()) {
            let _ = write!(line, " {{{p}}}");
        }
        if let (Some(hi), Some(lo)) = (
            data.attr(attrkey::HI).and_then(|a| a.as_int()),
            data.attr(attrkey::LO).and_then(|a| a.as_int()),
        ) {
            let _ = write!(line, " {{{hi}:{lo}}}");
        }
        line
    }
}

fn type_str(ty: &ir::Type) -> String {
    if let Some(info) = MemrefInfo::from_type(ty) {
        info.to_string()
    } else if types::is_time(ty) {
        "!hir.time".to_string()
    } else if types::is_const(ty) {
        "!hir.const".to_string()
    } else {
        ty.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HirBuilder;
    use crate::types::{MemKind, MemrefInfo, Port};
    use ir::Type;

    #[test]
    fn pretty_prints_paper_like_syntax() {
        let mut hb = HirBuilder::new();
        let a = MemrefInfo::packed(&[128], Type::int(32), Port::Read, MemKind::BlockRam);
        let c = a.with_port(Port::Write);
        let f = hb.func("array_add", &[("A", a.to_type()), ("C", c.to_type())], &[]);
        let t = f.time_var(hb.module());
        let args = f.args(hb.module());
        let (c0, c128, c1) = (hb.const_val(0), hb.const_val(128), hb.const_val(1));
        let lp = hb.for_loop(c0, c128, c1, t, 1, Type::int(8));
        hb.in_loop(lp, |hb, i, ti| {
            let v = hb.mem_read(args[0], &[i], ti, 0);
            let s = hb.add(v, v);
            hb.mem_write(s, args[1], &[i], ti, 1);
            hb.yield_at(ti, 1);
        });
        hb.return_(&[]);
        let m = hb.finish();
        let text = pretty_module(&m);
        assert!(text.contains("hir.func @array_add at"), "{text}");
        assert!(text.contains("hir.for"), "{text}");
        assert!(text.contains("hir.mem_read"), "{text}");
        assert!(text.contains("offset 1"), "{text}");
        assert!(text.contains("hir.yield at"), "{text}");
        assert!(
            text.contains("%c128"),
            "constants should print with literal names: {text}"
        );
    }

    #[test]
    fn pretty_op_single_line() {
        let mut hb = HirBuilder::new();
        let f = hb.func("f", &[("x", Type::int(32))], &[]);
        let x = f.args(hb.module())[0];
        let s = hb.add(x, x);
        hb.return_(&[s]);
        let m = hb.finish();
        let add_op = m.defining_op(s).unwrap();
        let line = pretty_op(&m, add_op);
        assert!(line.contains("hir.add"), "{line}");
        assert!(line.contains("(i32, i32) -> (i32)"), "{line}");
    }
}
