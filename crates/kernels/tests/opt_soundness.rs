//! Optimization-soundness differential tests: the standard pass pipeline
//! must preserve interpreted semantics bit for bit on every benchmark, and
//! the simulator's bytecode engine must agree cycle for cycle with the
//! tree-walk oracle on a generated design.

use hir::interp::{ArgValue, Interpreter};
use hir::ops::FuncOp;
use hir::types::MemrefInfo;
use hir_codegen::testbench::{Harness, HarnessArg};
use ir::Module;

/// Deterministic arguments derived from the function signature: readable
/// memrefs get a small-value pattern, write-only memrefs start
/// uninitialized, scalars get distinct small integers.
fn args_for(m: &Module, func: FuncOp) -> Vec<ArgValue> {
    func.args(m)
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            let ty = m.value_type(v);
            match MemrefInfo::from_type(&ty) {
                Some(info) => {
                    let n = info.num_elements() as usize;
                    if info.port.can_read() {
                        // Non-negative: some kernels (histogram) index
                        // memory with data values.
                        ArgValue::Tensor(
                            (0..n)
                                .map(|j| Some((j as i128 * 7 + i as i128 * 13) % 23))
                                .collect(),
                        )
                    } else {
                        ArgValue::uninit_tensor(n)
                    }
                }
                None => ArgValue::Int(i as i128 + 3),
            }
        })
        .collect()
}

#[test]
fn standard_pipeline_preserves_interpreted_semantics() {
    for b in kernels::compiled_benchmarks() {
        let base = (b.build_hir)();
        let mut opt = (b.build_hir)();
        hir_opt::optimize(&mut opt)
            .unwrap_or_else(|e| panic!("{}: standard pipeline failed: {e}", b.name));

        let func = kernels::find_func(&base, b.hir_func);
        let args = args_for(&base, func);

        let r_base = Interpreter::new(&base)
            .run(b.hir_func, &args)
            .unwrap_or_else(|e| panic!("{}: unoptimized interpretation failed: {e}", b.name));
        let r_opt = Interpreter::new(&opt)
            .run(b.hir_func, &args)
            .unwrap_or_else(|e| panic!("{}: optimized interpretation failed: {e}", b.name));

        assert_eq!(r_base.results, r_opt.results, "{}: scalar results", b.name);
        // Bit-for-bit tensor equality, including which words stay
        // uninitialized: optimization must not add or remove writes.
        assert_eq!(
            r_base.tensors, r_opt.tensors,
            "{}: memory contents diverged after optimization",
            b.name
        );
    }
}

#[test]
fn sim_engines_agree_on_generated_gemm() {
    let n = 4u64;
    let nn = (n * n) as usize;
    let mut m = kernels::gemm::hir_gemm(n, 32);
    let (design, _) = kernels::compile_hir(&mut m, true).expect("compile");
    let func = kernels::find_func(&m, kernels::gemm::FUNC);

    let a: Vec<i128> = (0..nn as i128).map(|x| x % 9 - 4).collect();
    let b: Vec<i128> = (0..nn as i128).map(|x| 2 * x % 7 - 3).collect();
    let args = [
        HarnessArg::mem_from(&a),
        HarnessArg::mem_from(&b),
        HarnessArg::zero_mem(nn),
    ];

    let run = |engine: verilog::Engine| {
        let mut h = Harness::new(&design, &m, func, &args).expect("harness");
        h.set_engine(engine);
        h.run(20_000).expect("run")
    };
    let r_bc = run(verilog::Engine::Bytecode);
    let r_tw = run(verilog::Engine::TreeWalk);

    // Identical per-cycle behavior implies identical latency and memories.
    assert_eq!(r_bc.cycles, r_tw.cycles, "latency diverged between engines");
    assert_eq!(r_bc.results, r_tw.results);
    assert_eq!(r_bc.mems, r_tw.mems, "memory contents diverged");
    let expect = kernels::gemm::reference(n, &a, &b);
    assert_eq!(r_bc.mems[&2], expect, "bytecode result is wrong");
}
