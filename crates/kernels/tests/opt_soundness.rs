//! Optimization-soundness differential tests: the standard pass pipeline
//! must preserve interpreted semantics bit for bit on every benchmark, and
//! the simulator's bytecode engine must agree cycle for cycle with the
//! tree-walk oracle on a generated design.

use hir::interp::{ArgValue, Interpreter};
use hir::ops::FuncOp;
use hir::types::MemrefInfo;
use hir_codegen::testbench::{Harness, HarnessArg};
use ir::Module;

/// Deterministic arguments derived from the function signature: readable
/// memrefs get a small-value pattern, write-only memrefs start
/// uninitialized, scalars get distinct small integers.
fn args_for(m: &Module, func: FuncOp) -> Vec<ArgValue> {
    func.args(m)
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            let ty = m.value_type(v);
            match MemrefInfo::from_type(&ty) {
                Some(info) => {
                    let n = info.num_elements() as usize;
                    if info.port.can_read() {
                        // Non-negative: some kernels (histogram) index
                        // memory with data values.
                        ArgValue::Tensor(
                            (0..n)
                                .map(|j| Some((j as i128 * 7 + i as i128 * 13) % 23))
                                .collect(),
                        )
                    } else {
                        ArgValue::uninit_tensor(n)
                    }
                }
                None => ArgValue::Int(i as i128 + 3),
            }
        })
        .collect()
}

#[test]
fn standard_pipeline_preserves_interpreted_semantics() {
    for b in kernels::compiled_benchmarks() {
        let base = (b.build_hir)();
        let mut opt = (b.build_hir)();
        hir_opt::optimize(&mut opt)
            .unwrap_or_else(|e| panic!("{}: standard pipeline failed: {e}", b.name));

        let func = kernels::find_func(&base, b.hir_func);
        let args = args_for(&base, func);

        let r_base = Interpreter::new(&base)
            .run(b.hir_func, &args)
            .unwrap_or_else(|e| panic!("{}: unoptimized interpretation failed: {e}", b.name));
        let r_opt = Interpreter::new(&opt)
            .run(b.hir_func, &args)
            .unwrap_or_else(|e| panic!("{}: optimized interpretation failed: {e}", b.name));

        assert_eq!(r_base.results, r_opt.results, "{}: scalar results", b.name);
        // Bit-for-bit tensor equality, including which words stay
        // uninitialized: optimization must not add or remove writes.
        assert_eq!(
            r_base.tensors, r_opt.tensors,
            "{}: memory contents diverged after optimization",
            b.name
        );
    }
}

#[test]
fn sim_engines_agree_on_generated_gemm() {
    let n = 4u64;
    let nn = (n * n) as usize;
    let mut m = kernels::gemm::hir_gemm(n, 32);
    let (design, _) = kernels::compile_hir(&mut m, true).expect("compile");
    let func = kernels::find_func(&m, kernels::gemm::FUNC);

    let a: Vec<i128> = (0..nn as i128).map(|x| x % 9 - 4).collect();
    let b: Vec<i128> = (0..nn as i128).map(|x| 2 * x % 7 - 3).collect();
    let args = [
        HarnessArg::mem_from(&a),
        HarnessArg::mem_from(&b),
        HarnessArg::zero_mem(nn),
    ];

    let run = |engine: verilog::Engine| {
        let mut h = Harness::new(&design, &m, func, &args).expect("harness");
        h.set_engine(engine);
        h.run(20_000).expect("run")
    };
    let r_bc = run(verilog::Engine::Bytecode);
    for engine in [
        verilog::Engine::TreeWalk,
        verilog::Engine::Event,
        verilog::Engine::Batched,
    ] {
        let r = run(engine);
        // Identical per-cycle behavior implies identical latency and memories.
        assert_eq!(r_bc.cycles, r.cycles, "{engine:?}: latency diverged");
        assert_eq!(r_bc.results, r.results, "{engine:?}: results diverged");
        assert_eq!(r_bc.mems, r.mems, "{engine:?}: memory contents diverged");
    }
    let expect = kernels::gemm::reference(n, &a, &b);
    assert_eq!(r_bc.mems[&2], expect, "bytecode result is wrong");
}

/// N random seeds in ONE batched pass: every lane of a batched GEMM run
/// must reproduce its scalar bytecode run bit for bit — this is the
/// multi-stimulus differential harness the batched engine exists for.
#[test]
fn batched_lanes_agree_with_scalar_runs_on_gemm() {
    let n = 4u64;
    let nn = (n * n) as usize;
    let mut m = kernels::gemm::hir_gemm(n, 32);
    let (design, _) = kernels::compile_hir(&mut m, true).expect("compile");
    let func = kernels::find_func(&m, kernels::gemm::FUNC);

    // Deterministic LCG-seeded stimulus per lane.
    let mut state = 0x2545F4914F6CDD1Du64;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) % 17) as i128 - 8
    };
    const LANES: usize = 6;
    let lane_args: Vec<Vec<HarnessArg>> = (0..LANES)
        .map(|_| {
            let a: Vec<i128> = (0..nn).map(|_| next()).collect();
            let b: Vec<i128> = (0..nn).map(|_| next()).collect();
            vec![
                HarnessArg::mem_from(&a),
                HarnessArg::mem_from(&b),
                HarnessArg::zero_mem(nn),
            ]
        })
        .collect();

    let mut bh = Harness::new_batched(&design, &m, func, &lane_args).expect("batched harness");
    assert_eq!(bh.lanes(), LANES);
    let batched = bh.run_batched(20_000).expect("batched run");

    for (lane, args) in lane_args.iter().enumerate() {
        let mut h = Harness::new(&design, &m, func, args).expect("scalar harness");
        let scalar = h.run(20_000).expect("scalar run");
        assert_eq!(batched[lane].cycles, scalar.cycles, "lane {lane} latency");
        assert_eq!(batched[lane].results, scalar.results, "lane {lane} results");
        assert_eq!(batched[lane].mems, scalar.mems, "lane {lane} memories");
        // And both must match the software reference.
        let (a, b) = match (&args[0], &args[1]) {
            (HarnessArg::Mem(a), HarnessArg::Mem(b)) => (a, b),
            _ => unreachable!(),
        };
        assert_eq!(
            batched[lane].mems[&2],
            kernels::gemm::reference(n, a, b),
            "lane {lane} GEMM result is wrong"
        );
    }
}

// ------------------------------------------------- translation validation

/// Deterministic conflict-only budget: no wall clock, so the verdict is the
/// same on every machine.
fn bmc_opts(k: u32) -> bmc::EquivOptions {
    bmc::EquivOptions {
        k_cycles: k,
        conflict_budget: 5_000_000,
        time_budget_ms: None,
        samples: 4,
        replay_max_cycles: 100_000,
    }
}

/// Prove a function equivalent across an optimization and insist on a full
/// proof — a budget degradation here is a test failure, not a pass.
fn assert_proved(base: &Module, opt: &Module, func: &str, k: u32, what: &str) {
    let report = bmc::check_func_equivalence(base, opt, func, &bmc_opts(k))
        .unwrap_or_else(|e| panic!("{what}: equivalence check failed to run: {e}"));
    match report.status {
        bmc::EquivStatus::Proved => {}
        other => panic!(
            "{what}: expected a K={k} proof, got {:?} ({} conflicts)",
            other, report.conflicts
        ),
    }
}

/// Reduced-size instances of every benchmark, sized so bounded proofs stay
/// fast while still exercising banked memories, accumulators and delays.
fn small_benchmarks() -> Vec<(&'static str, Module, &'static str)> {
    vec![
        (
            "transpose",
            kernels::transpose::hir_transpose(4, 8),
            kernels::transpose::FUNC,
        ),
        (
            "stencil",
            kernels::stencil::hir_stencil(8, 8),
            kernels::stencil::FUNC,
        ),
        (
            "histogram",
            kernels::histogram::hir_histogram(8, 8, 8),
            kernels::histogram::FUNC,
        ),
        ("gemm", kernels::gemm::hir_gemm(2, 8), kernels::gemm::FUNC),
        (
            "conv",
            kernels::conv::hir_conv(4, 4, 8),
            kernels::conv::FUNC,
        ),
    ]
}

/// The tentpole guarantee, at benchmark level: the whole standard pipeline
/// is *proved* (not sampled, not assumed) equivalent on every kernel.
#[test]
fn bmc_proves_standard_pipeline_on_every_benchmark() {
    for (name, base, func) in small_benchmarks() {
        let mut opt = base.clone();
        hir_opt::optimize(&mut opt)
            .unwrap_or_else(|e| panic!("{name}: standard pipeline failed: {e}"));
        assert_proved(&base, &opt, func, 12, name);
    }
}

/// Per-pass bisection coverage: every cumulative prefix of the standard
/// pipeline must also be proved equivalent, so a future miscompile is
/// attributable to the exact pass that introduced it.
#[test]
fn bmc_proves_every_standard_pipeline_prefix() {
    let registry = hir::hir_registry();
    for end in 1..=hir_opt::STANDARD_PASS_NAMES.len() {
        let subset = &hir_opt::STANDARD_PASS_NAMES[..end];
        let base = kernels::gemm::hir_gemm(2, 8);
        let mut opt = base.clone();
        let mut diags = ir::DiagnosticEngine::new();
        hir_opt::pipeline_from_names(subset)
            .unwrap()
            .run(&mut opt, &registry, &mut diags)
            .unwrap_or_else(|e| panic!("prefix {subset:?} failed: {e}"));
        assert_proved(
            &base,
            &opt,
            kernels::gemm::FUNC,
            10,
            &format!("pipeline prefix {subset:?}"),
        );
    }
}

/// The negative control: a deliberately miscompiled kernel must be refuted
/// with a replay-confirmed counterexample, never "proved".
#[test]
fn bmc_refutes_miscompiled_benchmark() {
    let registry = hir::hir_registry();
    let base = kernels::gemm::hir_gemm(2, 8);
    let mut bad = base.clone();
    let mut diags = ir::DiagnosticEngine::new();
    hir_opt::pipeline_from_names(&["test-miscompile"])
        .unwrap()
        .run(&mut bad, &registry, &mut diags)
        .unwrap();
    let report =
        bmc::check_func_equivalence(&base, &bad, kernels::gemm::FUNC, &bmc_opts(24)).unwrap();
    match report.status {
        bmc::EquivStatus::Counterexample(cex) => {
            assert!(!cex.stimulus.is_empty());
            assert!(!cex.detail.is_empty());
        }
        other => panic!("miscompiled gemm must be refuted, got {other:?}"),
    }
    // The proof attempt must export nonzero solver stats as strict JSON.
    let st = &report.solver;
    assert!(st.propagations > 0, "solver ran, propagations must be > 0");
    assert!(st.blast_cache_misses > 0, "blasting allocated gates");
    assert!(st.clauses > 0 && st.vars > 0);
    assert!(!st.frames.is_empty(), "at least one frame was unrolled");
    // Structural hashing lets a frame reuse the previous frame's gates
    // wholesale (clauses_added == 0); at least one frame must build CNF.
    assert!(st.frames.iter().any(|f| f.clauses_added > 0));
    obs::json::parse(&st.to_json()).expect("strict solver-stats JSON");
}
