//! GEMM (paper Table 5/6): a fully unrolled N×N multiplier array.
//!
//! Loads two N×N matrices into banked on-chip buffers, multiplies them with
//! an N×N grid of processing elements (one multiply-accumulate per output
//! element per cycle — `unroll_for` nested two deep, paper §7.3), and
//! writes the result back. With N=16 and 32-bit data this instantiates 256
//! multipliers (the paper's 768 DSP blocks at 3 DSPs per 32×32 multiply).

use hir::types::{Dim, MemKind, MemrefInfo, Port};
use hir::HirBuilder;
use hls::{KExpr, KStmt, Kernel, LoopPragmas};
use ir::{Location, Module, Type, ValueId};

/// HIR function name.
pub const FUNC: &str = "gemm";

fn log2(n: u64) -> u32 {
    assert!(n.is_power_of_two(), "gemm size must be a power of two");
    n.trailing_zeros()
}

/// Build the HIR design for N×N (N a power of two).
pub fn hir_gemm(n: u64, iv_width: u32) -> Module {
    let bits = log2(n);
    let flat_w = (2 * bits + 2).max(iv_width.min(32)).min(32);
    let mut hb = HirBuilder::new();
    hb.set_loc(Location::file_line_col("kernels/gemm.hir", 1, 1));
    let a_t = MemrefInfo::packed(&[n, n], Type::int(32), Port::Read, MemKind::BlockRam);
    let c_t = a_t.with_port(Port::Write);
    let f = hb.func(
        FUNC,
        &[
            ("A", a_t.to_type()),
            ("B", a_t.to_type()),
            ("C", c_t.to_type()),
        ],
        &[],
    );
    let t = f.time_var(hb.module());
    let args = f.args(hb.module());

    // Banked local buffers: A by row, B by column, accumulators by both.
    let a_buf = hb.alloc(
        &[Dim::Distributed(n), Dim::Packed(n)],
        Type::int(32),
        MemKind::LutRam,
        &[Port::Read, Port::Write],
    );
    let b_buf = hb.alloc(
        &[Dim::Packed(n), Dim::Distributed(n)],
        Type::int(32),
        MemKind::LutRam,
        &[Port::Read, Port::Write],
    );
    let acc = hb.alloc(
        &[Dim::Distributed(n), Dim::Distributed(n)],
        Type::int(32),
        MemKind::Reg,
        &[Port::Read, Port::Write],
    );

    let (c0, c1) = (hb.const_val(0), hb.const_val(1));
    let cnn = hb.const_val((n * n) as i64);
    let cn = hb.const_val(n as i64);

    // Phase 1: load A and B (one element of each per cycle, II=1). The
    // banked buffers are written through per-bank predicated writes.
    let load = hb.for_loop(c0, cnn, c1, t, 1, Type::int(flat_w));
    hb.in_loop(load, |hb, flat, ti| {
        let row = hb.slice(flat, 2 * bits - 1, bits);
        let col = hb.slice(flat, bits - 1, 0);
        let va = hb.mem_read(args[0], &[row, col], ti, 0); // valid ti+1
        let vb = hb.mem_read(args[1], &[row, col], ti, 0);
        let row1 = hb.delay(row, 1, ti, 0);
        let col1 = hb.delay(col, 1, ti, 0);
        // A_buf[row][col] <- va: write lands in bank `row`.
        for bank in 0..n {
            let cb = hb.const_val(bank as i64);
            let is_row = hb.cmp(hir::CmpPredicate::Eq, row1, cb);
            let g = hb.if_op(is_row, ti, 1, false);
            hb.in_then(g, |hb| hb.mem_write(va, a_buf[1], &[cb, col1], ti, 1));
            // B_buf[row][col] <- vb: bank `col`.
            let is_col = hb.cmp(hir::CmpPredicate::Eq, col1, cb);
            let g2 = hb.if_op(is_col, ti, 1, false);
            hb.in_then(g2, |hb| hb.mem_write(vb, b_buf[1], &[row1, cb], ti, 1));
        }
        hb.yield_at(ti, 1);
    });
    let t_loaded = load.result_time(hb.module());

    // Phase 2: clear the accumulators — every bank in a single cycle.
    let zero = hb.typed_const(0, Type::int(32));
    let init = hb.unroll_for(0, n as i64, 1, t_loaded, 1);
    hb.in_unroll(init, |hb, i, tu| {
        let inner = hb.unroll_for(0, n as i64, 1, tu, 0);
        hb.in_unroll(inner, |hb, j, tv| {
            hb.mem_write(zero, acc[1], &[i, j], tv, 0);
            hb.yield_at(tv, 0);
        });
        hb.yield_at(tu, 0);
    });
    let t_init = init.result_time(hb.module());

    // Phase 3: the PE grid. Pipelined k-loop (II=1) containing the fully
    // unrolled i/j grid: every cycle all N*N accumulators take
    // acc[i][j] += A_buf[i][k] * B_buf[k][j].
    let kloop = hb.for_loop(c0, cn, c1, t_init, 1, Type::int(iv_width));
    hb.in_loop(kloop, |hb, kv, tk| {
        let grid_i = hb.unroll_for(0, n as i64, 1, tk, 0);
        hb.in_unroll(grid_i, |hb, i, tgi| {
            let grid_j = hb.unroll_for(0, n as i64, 1, tgi, 0);
            hb.in_unroll(grid_j, |hb, j, tgj| {
                let a = hb.mem_read(a_buf[0], &[i, kv], tgj, 0); // valid +1
                let b = hb.mem_read(b_buf[0], &[kv, j], tgj, 0);
                let prod = hb.mult(a, b);
                let cur = hb.mem_read(acc[0], &[i, j], tgj, 1); // regs: +1
                let sum = hb.add(cur, prod);
                hb.mem_write(sum, acc[1], &[i, j], tgj, 1);
                hb.yield_at(tgj, 0);
            });
            hb.yield_at(tgi, 0);
        });
        hb.yield_at(tk, 1);
    });
    let t_done = kloop.result_time(hb.module());

    // Phase 4: write back, one element per cycle, selecting the right
    // accumulator bank through a combinational select tree.
    let wb = hb.for_loop(c0, cnn, c1, t_done, 1, Type::int(flat_w));
    hb.in_loop(wb, |hb, flat, ti| {
        let row = hb.slice(flat, 2 * bits - 1, bits);
        let col = hb.slice(flat, bits - 1, 0);
        let mut selected: Option<ValueId> = None;
        for i in 0..n {
            for j in 0..n {
                let (ci, cj) = (hb.const_val(i as i64), hb.const_val(j as i64));
                let v = hb.mem_read(acc[0], &[ci, cj], ti, 0); // regs: +0
                let is_i = hb.cmp(hir::CmpPredicate::Eq, row, ci);
                let is_j = hb.cmp(hir::CmpPredicate::Eq, col, cj);
                let hit = hb.and(is_i, is_j);
                selected = Some(match selected {
                    None => v,
                    Some(prev) => hb.select(hit, v, prev),
                });
            }
        }
        hb.mem_write(selected.unwrap(), args[2], &[row, col], ti, 0);
        hb.yield_at(ti, 1);
    });
    hb.return_(&[]);
    hb.finish()
}

/// The HLS form: same structure through pragmas (pipeline + full unroll +
/// complete array partitioning).
pub fn hls_gemm(n: u64, manual_opt: bool) -> Kernel {
    let mut k = Kernel::new(FUNC);
    k.in_array("A", 32, &[n, n])
        .in_array("B", 32, &[n, n])
        .out_array("C", 32, &[n, n]);
    if manual_opt {
        k.loop_var_width = hir_opt::signed_width_for(0, (n * n) as i128);
    }
    k.local_array("a_buf", 32, &[n, n], &[0]);
    k.local_array("b_buf", 32, &[n, n], &[1]);
    k.local_array("acc", 32, &[n, n], &[0, 1]);
    let pipe = LoopPragmas {
        pipeline_ii: Some(1),
        unroll: false,
    };
    let unroll = LoopPragmas {
        pipeline_ii: None,
        unroll: true,
    };
    k.body = vec![
        // Load A and B row by row (the unrolled column loop writes each
        // partitioned bank with a constant index).
        KStmt::For {
            var: "r".into(),
            lb: 0,
            ub: n as i64,
            step: 1,
            pragmas: LoopPragmas::default(),
            body: vec![KStmt::For {
                var: "cc".into(),
                lb: 0,
                ub: n as i64,
                step: 1,
                pragmas: pipe,
                body: vec![
                    KStmt::Store {
                        array: "a_buf".into(),
                        indices: vec![KExpr::var("r"), KExpr::var("cc")],
                        value: KExpr::read("A", vec![KExpr::var("r"), KExpr::var("cc")]),
                    },
                    KStmt::Store {
                        array: "b_buf".into(),
                        indices: vec![KExpr::var("r"), KExpr::var("cc")],
                        value: KExpr::read("B", vec![KExpr::var("r"), KExpr::var("cc")]),
                    },
                ],
            }],
        },
        // Zero accumulators.
        KStmt::For {
            var: "zi".into(),
            lb: 0,
            ub: n as i64,
            step: 1,
            pragmas: unroll,
            body: vec![KStmt::For {
                var: "zj".into(),
                lb: 0,
                ub: n as i64,
                step: 1,
                pragmas: unroll,
                body: vec![KStmt::Store {
                    array: "acc".into(),
                    indices: vec![KExpr::var("zi"), KExpr::var("zj")],
                    value: KExpr::c(0, 32),
                }],
            }],
        },
        // The PE grid: pipelined k, fully unrolled i/j.
        KStmt::For {
            var: "k".into(),
            lb: 0,
            ub: n as i64,
            step: 1,
            pragmas: pipe,
            body: vec![KStmt::For {
                var: "i".into(),
                lb: 0,
                ub: n as i64,
                step: 1,
                pragmas: unroll,
                body: vec![KStmt::For {
                    var: "j".into(),
                    lb: 0,
                    ub: n as i64,
                    step: 1,
                    pragmas: unroll,
                    body: vec![KStmt::Store {
                        array: "acc".into(),
                        indices: vec![KExpr::var("i"), KExpr::var("j")],
                        value: KExpr::add(
                            KExpr::read("acc", vec![KExpr::var("i"), KExpr::var("j")]),
                            KExpr::mul(
                                KExpr::read("a_buf", vec![KExpr::var("i"), KExpr::var("k")]),
                                KExpr::read("b_buf", vec![KExpr::var("k"), KExpr::var("j")]),
                            ),
                        ),
                    }],
                }],
            }],
        },
        // Write back row by row.
        KStmt::For {
            var: "wr".into(),
            lb: 0,
            ub: n as i64,
            step: 1,
            pragmas: LoopPragmas::default(),
            body: vec![KStmt::For {
                var: "wc".into(),
                lb: 0,
                ub: n as i64,
                step: 1,
                pragmas: unroll,
                body: vec![KStmt::Store {
                    array: "C".into(),
                    indices: vec![KExpr::var("wr"), KExpr::var("wc")],
                    value: KExpr::read("acc", vec![KExpr::var("wr"), KExpr::var("wc")]),
                }],
            }],
        },
    ];
    k
}

/// Software reference (wrapping i32 arithmetic).
pub fn reference(n: u64, a: &[i128], b: &[i128]) -> Vec<i128> {
    let n = n as usize;
    let mut c = vec![0i128; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut s: i64 = 0;
            for k in 0..n {
                s = s.wrapping_add(
                    (a[i * n + k] as i32 as i64).wrapping_mul(b[k * n + j] as i32 as i64) as i32
                        as i64,
                );
                s = s as i32 as i64;
            }
            c[i * n + j] = s as i128;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use hir::interp::{ArgValue, Interpreter};

    #[test]
    fn hir_matches_reference() {
        let n = 4u64;
        let m = hir_gemm(n, 32);
        let mut diags = ir::DiagnosticEngine::new();
        hir_verify::verify_schedule(&m, &mut diags)
            .unwrap_or_else(|_| panic!("{}", diags.render()));
        let nn = (n * n) as usize;
        let a: Vec<i128> = (0..nn as i128).map(|x| x - 7).collect();
        let b: Vec<i128> = (0..nn as i128).map(|x| 3 * x % 11 - 5).collect();
        let r = Interpreter::new(&m)
            .run(
                FUNC,
                &[
                    ArgValue::tensor_from(&a),
                    ArgValue::tensor_from(&b),
                    ArgValue::uninit_tensor(nn),
                ],
            )
            .expect("simulate");
        let out: Vec<i128> = r.tensors[&2].iter().map(|v| v.unwrap()).collect();
        assert_eq!(out, reference(n, &a, &b));
        // n*n load + n compute + n*n writeback + constants.
        assert!(
            r.cycles <= 2 * n * n + n + 24,
            "PE grid not parallel: {} cycles",
            r.cycles
        );
    }

    #[test]
    fn hls_matches_reference() {
        let n = 4u64;
        let k = hls_gemm(n, false);
        let c = hls::compile(&k, &hls::SchedOptions::default()).expect("compile");
        let nn = (n * n) as usize;
        let a: Vec<i128> = (1..=nn as i128).collect();
        let b: Vec<i128> = (0..nn as i128).map(|x| x % 5 - 2).collect();
        // Local arrays are bank-major; interface arrays here are packed so
        // plain row-major data is fine.
        let r = Interpreter::new(&c.hir_module)
            .run(
                "hls_gemm",
                &[
                    ArgValue::tensor_from(&a),
                    ArgValue::tensor_from(&b),
                    ArgValue::uninit_tensor(nn),
                ],
            )
            .expect("simulate");
        let out: Vec<i128> = r.tensors[&2].iter().map(|v| v.unwrap()).collect();
        assert_eq!(out, reference(n, &a, &b));
    }
}
