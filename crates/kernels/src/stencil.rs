//! One-dimensional 3-tap stencil (paper Listing 2 and §7.2's Listing 3).
//!
//! `B[i] = (A[i-1] + 2*A[i] + A[i+1])` over a sliding window held in a
//! fully-distributed (register) buffer, with the main loop pipelined at
//! II=1. The task-parallel variant chains two stencil stages through an
//! intermediate buffer with overlapped execution (deterministic,
//! synchronization-free task parallelism — paper §5.3).

use hir::types::{Dim, MemKind, MemrefInfo, Port};
use hir::HirBuilder;
use hls::{KExpr, KStmt, Kernel, LoopPragmas};
use ir::{Location, Module, Type, ValueId};

/// HIR function name.
pub const FUNC: &str = "stencil_1d";

/// Weights of the 3-tap kernel (powers of two: strength-reducible).
pub const W: [i128; 3] = [1, 2, 1];

/// Emit the stencil body into an open function. `a` readable, `b` writable,
/// both length `n`. Returns the completion time variable.
fn emit_stencil_body(
    hb: &mut HirBuilder,
    n: u64,
    iv_width: u32,
    a: ValueId,
    b: ValueId,
    t: ValueId,
) -> ValueId {
    // Sliding window of the two previous elements in distributed registers
    // (the paper's `packing=[]` buffer).
    let w_ports = hb.alloc(
        &[Dim::Distributed(2)],
        Type::int(32),
        MemKind::Reg,
        &[Port::Read, Port::Write],
    );
    let (wr, ww) = (w_ports[0], w_ports[1]);
    let (c0, c1, cn, c_one) = (
        hb.const_val(0),
        hb.const_val(1),
        hb.const_val(n as i64 - 1),
        hb.const_val(1),
    );
    let _ = c_one;

    // Prologue: W[0] = A[0], W[1] = A[1] (reads at t and t+1, both written
    // by t+2 so the pipelined loop can start at t+3 — as in Listing 2).
    let val_a = hb.mem_read(a, &[c0], t, 0);
    let val_a1 = hb.delay(val_a, 1, t, 1);
    let val_b = hb.mem_read(a, &[c1], t, 1);
    hb.mem_write(val_a1, ww, &[c0], t, 2);
    hb.mem_write(val_b, ww, &[c1], t, 2);

    // Edge passthrough: B[0] = A[0] (written alongside the window fill).
    hb.mem_write(val_a1, b, &[c0], t, 2);

    // Pipelined main loop: i from 1 to n-1, producing B[i].
    let lp = hb.for_loop(c1, cn, c1, t, 3, Type::int(iv_width));
    hb.in_loop(lp, |hb, i, ti| {
        hb.yield_at(ti, 1); // II = 1 (the yield may appear anywhere)
        let v0 = hb.mem_read(wr, &[c0], ti, 1);
        let v1 = hb.mem_read(wr, &[c1], ti, 1);
        let i_plus_1 = hb.add(i, c1);
        let v = hb.mem_read(a, &[i_plus_1], ti, 0);
        // Shift the window: W[0] <- W[1], W[1] <- A[i+1].
        hb.mem_write(v1, ww, &[c0], ti, 1);
        hb.mem_write(v, ww, &[c1], ti, 1);
        // 3-tap weighted sum: v0 + 2*v1 + v (all valid at ti+1).
        let two = hb.typed_const(W[1] as i64, Type::int(32));
        let mid = hb.mult(v1, two);
        let s1 = hb.add(v0, mid);
        let s2 = hb.add(s1, v);
        let i2 = hb.delay(i, 1, ti, 0);
        hb.mem_write(s2, b, &[i2], ti, 1);
    });

    // Edge passthrough: B[n-1] = A[n-1], after the loop completes.
    let tf = lp.result_time(hb.module());
    let cn1 = hb.const_val(n as i64 - 1);
    let last = hb.mem_read(a, &[cn1], tf, 0);
    hb.mem_write(last, b, &[cn1], tf, 1);
    tf
}

/// Build the single-stage HIR stencil (paper Listing 2 shape).
pub fn hir_stencil(n: u64, iv_width: u32) -> Module {
    let mut hb = HirBuilder::new();
    hb.set_loc(Location::file_line_col("kernels/stencil.hir", 1, 1));
    let a = MemrefInfo::packed(&[n], Type::int(32), Port::Read, MemKind::BlockRam);
    let b = a.with_port(Port::Write);
    let f = hb.func(FUNC, &[("Ai", a.to_type()), ("Bw", b.to_type())], &[]);
    let t = f.time_var(hb.module());
    let args = f.args(hb.module());
    emit_stencil_body(&mut hb, n, iv_width, args[0], args[1], t);
    hb.return_(&[]);
    hb.finish()
}

/// Task-parallel two-stage stencil (paper Listing 3): stage B starts before
/// stage A finishes; they run in lock-step through an intermediate buffer.
pub fn hir_stencil_task_parallel(n: u64, iv_width: u32) -> Module {
    let mut hb = HirBuilder::new();
    hb.set_loc(Location::file_line_col("kernels/stencil_tp.hir", 1, 1));
    let a = MemrefInfo::packed(&[n], Type::int(32), Port::Read, MemKind::BlockRam);
    let b = a.with_port(Port::Write);

    // Stage function, reused for both tasks.
    let stage = hb.func(
        "stencil_stage",
        &[("Ai", a.to_type()), ("Bw", b.to_type())],
        &[],
    );
    let t = stage.time_var(hb.module());
    let sargs = stage.args(hb.module());
    emit_stencil_body(&mut hb, n, iv_width, sargs[0], sargs[1], t);
    hb.return_(&[]);

    // Top: A -> mid -> B with the second call offset by a small fixed lag
    // (stage latency to first output + margin) rather than full completion.
    let top = hb.func(
        "task_parallel",
        &[("Ai", a.to_type()), ("Bw", b.to_type())],
        &[],
    );
    let tt = top.time_var(hb.module());
    let targs = top.args(hb.module());
    let mid = hb.alloc(
        &[Dim::Packed(n)],
        Type::int(32),
        MemKind::BlockRam,
        &[Port::Read, Port::Write],
    );
    hb.call("stencil_stage", &[targs[0], mid[1]], tt, 0);
    // Stage A writes B[i] at its cycle ~ (3 + (i-1) + 1); stage B reads
    // A[i+1] at iteration i. A lag of 8 keeps stage B strictly behind.
    hb.call("stencil_stage", &[mid[0], targs[1]], tt, 8);
    hb.return_(&[]);
    hb.finish()
}

/// The HLS form of the single stage.
pub fn hls_stencil(n: u64, manual_opt: bool) -> Kernel {
    let mut k = Kernel::new(FUNC);
    k.in_array("Ai", 32, &[n]).out_array("Bw", 32, &[n]);
    if manual_opt {
        k.loop_var_width = hir_opt::signed_width_for(0, n as i128);
    }
    // B[i] = A[i-1] + 2*A[i] + A[i+1]; reads resolved through a window
    // buffer in registers (complete partition), like the HIR version.
    k.local_array("w", 32, &[2], &[0]);
    k.body = vec![
        KStmt::Store {
            array: "w".into(),
            indices: vec![KExpr::c(0, 1)],
            value: KExpr::read("Ai", vec![KExpr::c(0, 32)]),
        },
        KStmt::Store {
            array: "w".into(),
            indices: vec![KExpr::c(1, 1)],
            value: KExpr::read("Ai", vec![KExpr::c(1, 32)]),
        },
        KStmt::For {
            var: "i".into(),
            lb: 1,
            ub: n as i64 - 1,
            step: 1,
            pragmas: LoopPragmas {
                pipeline_ii: Some(1),
                unroll: false,
            },
            body: vec![
                KStmt::Assign {
                    var: "v0".into(),
                    expr: KExpr::read("w", vec![KExpr::c(0, 1)]),
                },
                KStmt::Assign {
                    var: "v1".into(),
                    expr: KExpr::read("w", vec![KExpr::c(1, 1)]),
                },
                KStmt::Assign {
                    var: "vnew".into(),
                    expr: KExpr::read("Ai", vec![KExpr::add(KExpr::var("i"), KExpr::c(1, 32))]),
                },
                KStmt::Store {
                    array: "w".into(),
                    indices: vec![KExpr::c(0, 1)],
                    value: KExpr::var("v1"),
                },
                KStmt::Store {
                    array: "w".into(),
                    indices: vec![KExpr::c(1, 1)],
                    value: KExpr::var("vnew"),
                },
                KStmt::Store {
                    array: "Bw".into(),
                    indices: vec![KExpr::var("i")],
                    value: KExpr::add(
                        KExpr::add(
                            KExpr::var("v0"),
                            KExpr::mul(KExpr::var("v1"), KExpr::c(2, 32)),
                        ),
                        KExpr::var("vnew"),
                    ),
                },
            ],
        },
    ];
    k
}

/// Software reference for one stage (edges pass through).
pub fn reference(n: u64, input: &[i128]) -> Vec<i128> {
    let n = n as usize;
    let mut out = vec![0; n];
    out[0] = input[0];
    out[n - 1] = input[n - 1];
    for i in 1..n - 1 {
        out[i] = W[0] * input[i - 1] + W[1] * input[i] + W[2] * input[i + 1];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hir::interp::{ArgValue, Interpreter};

    #[test]
    fn hir_matches_reference() {
        let n = 64;
        let m = hir_stencil(n, 32);
        let mut diags = ir::DiagnosticEngine::new();
        hir_verify::verify_schedule(&m, &mut diags)
            .unwrap_or_else(|_| panic!("{}", diags.render()));
        let input: Vec<i128> = (0..n as i128).map(|x| x * x % 97).collect();
        let r = Interpreter::new(&m)
            .run(
                FUNC,
                &[
                    ArgValue::tensor_from(&input),
                    ArgValue::uninit_tensor(n as usize),
                ],
            )
            .expect("simulate");
        let expect = reference(n, &input);
        for i in 0..n as usize {
            assert_eq!(r.tensors[&1][i], Some(expect[i]), "B[{i}]");
        }
        // Pipelined at II=1: latency ~ n + constant.
        assert!(r.cycles <= n + 8, "not pipelined: {} cycles", r.cycles);
    }

    #[test]
    fn task_parallel_overlaps_and_matches() {
        let n = 64;
        let m = hir_stencil_task_parallel(n, 32);
        let mut diags = ir::DiagnosticEngine::new();
        hir_verify::verify_schedule(&m, &mut diags)
            .unwrap_or_else(|_| panic!("{}", diags.render()));
        let input: Vec<i128> = (0..n as i128).map(|x| (x * 13) % 51).collect();
        let r = Interpreter::new(&m)
            .run(
                "task_parallel",
                &[
                    ArgValue::tensor_from(&input),
                    ArgValue::uninit_tensor(n as usize),
                ],
            )
            .expect("simulate");
        let expect = reference(n, &reference(n, &input));
        for i in 2..(n - 2) as usize {
            assert_eq!(r.tensors[&1][i], Some(expect[i]), "B[{i}]");
        }
        // Overlap: far less than 2x the single-stage latency.
        assert!(
            r.cycles <= n + 24,
            "tasks did not overlap: {} cycles",
            r.cycles
        );
    }

    #[test]
    fn hls_matches_reference() {
        let n = 32;
        let k = hls_stencil(n, false);
        let c = hls::compile(&k, &hls::SchedOptions::default()).expect("compile");
        let input: Vec<i128> = (0..n as i128).map(|x| x + 5).collect();
        let r = Interpreter::new(&c.hir_module)
            .run(
                "hls_stencil_1d",
                &[
                    ArgValue::tensor_from(&input),
                    ArgValue::uninit_tensor(n as usize),
                ],
            )
            .expect("simulate");
        let expect = reference(n, &input);
        for i in 1..(n - 1) as usize {
            assert_eq!(r.tensors[&1][i], Some(expect[i]), "B[{i}]");
        }
    }
}
