//! 2-d 3×3 convolution (paper Table 5): a streaming line-buffered design.
//!
//! Pixels stream in one per cycle; two line buffers and a 3×3 window of
//! registers supply the nine taps. The weights are the constant Gaussian
//! kernel [1 2 1; 2 4 2; 1 2 1] — powers of two, so strength reduction
//! keeps the whole design DSP-free (Table 5 shows zero DSPs for both
//! compilers).

use hir::types::{Dim, MemKind, MemrefInfo, Port};
use hir::HirBuilder;
use hls::{KExpr, KStmt, Kernel, LoopPragmas};
use ir::{Location, Module, Type, ValueId};

/// HIR function name.
pub const FUNC: &str = "conv2d";

/// The constant 3×3 kernel.
pub const KERNEL: [[i128; 3]; 3] = [[1, 2, 1], [2, 4, 2], [1, 2, 1]];

fn log2(n: u64) -> u32 {
    assert!(n.is_power_of_two(), "conv size must be a power of two");
    n.trailing_zeros()
}

/// Build the streaming HIR design for an `h`×`w` image (powers of two).
/// `out[y][x]` holds the window sum ending at pixel `(y, x)`; the first two
/// rows/columns are warm-up values (see [`reference()`]).
pub fn hir_conv(h: u64, w: u64, iv_width: u32) -> Module {
    let (hbits, wbits) = (log2(h), log2(w));
    let flat_w = (hbits + wbits + 2).max(8).min(iv_width.max(8));
    let mut hb = HirBuilder::new();
    hb.set_loc(Location::file_line_col("kernels/conv.hir", 1, 1));
    let img = MemrefInfo::packed(&[h, w], Type::int(32), Port::Read, MemKind::BlockRam);
    let out = img.with_port(Port::Write);
    let f = hb.func(FUNC, &[("img", img.to_type()), ("out", out.to_type())], &[]);
    let t = f.time_var(hb.module());
    let args = f.args(hb.module());

    // Two line buffers (banked pair) and the 3x3 window registers.
    let lb = hb.alloc(
        &[Dim::Distributed(2), Dim::Packed(w)],
        Type::int(32),
        MemKind::LutRam,
        &[Port::Read, Port::Write],
    );
    let win = hb.alloc(
        &[Dim::Distributed(3), Dim::Distributed(3)],
        Type::int(32),
        MemKind::Reg,
        &[Port::Read, Port::Write],
    );
    let (c0, c1) = (hb.const_val(0), hb.const_val(1));
    let zero = hb.typed_const(0, Type::int(32));

    // Initialize the window registers (one cycle) and the line buffers
    // (one pipelined pass over the width).
    for r in 0..3 {
        for c in 0..3 {
            let (cr, cc) = (hb.const_val(r), hb.const_val(c));
            hb.mem_write(zero, win[1], &[cr, cc], t, 1);
        }
    }
    let cw = hb.const_val(w as i64);
    let init = hb.for_loop(c0, cw, c1, t, 2, Type::int(flat_w));
    hb.in_loop(init, |hb, x, ti| {
        hb.mem_write(zero, lb[1], &[c0, x], ti, 0);
        hb.mem_write(zero, lb[1], &[c1, x], ti, 0);
        hb.yield_at(ti, 1);
    });
    let t_init = init.result_time(hb.module());

    // Main streaming loop over all pixels, II = 1.
    let cnn = hb.const_val((h * w) as i64);
    let main = hb.for_loop(c0, cnn, c1, t_init, 1, Type::int(flat_w));
    hb.in_loop(main, |hb, flat, ti| {
        let y = hb.slice(flat, hbits + wbits - 1, wbits);
        let x = hb.slice(flat, wbits - 1, 0);
        let pix = hb.mem_read(args[0], &[y, x], ti, 0); // valid ti+1
        let top = hb.mem_read(lb[0], &[c0, x], ti, 0); // valid ti+1
        let mid = hb.mem_read(lb[0], &[c1, x], ti, 0);
        let x1 = hb.delay(x, 1, ti, 0);
        let y1 = hb.delay(y, 1, ti, 0);

        // Shift the window left and insert the new column at ti+1.
        let mut wvals: Vec<Vec<ValueId>> = Vec::new();
        for r in 0..3 {
            let mut row = Vec::new();
            for c in 0..3 {
                let (cr, cc) = (hb.const_val(r), hb.const_val(c));
                row.push(hb.mem_read(win[0], &[cr, cc], ti, 1));
            }
            wvals.push(row);
        }
        for r in 0..3 {
            for c in 0..2 {
                let (cr, cc) = (hb.const_val(r), hb.const_val(c));
                hb.mem_write(wvals[r as usize][c as usize + 1], win[1], &[cr, cc], ti, 1);
            }
        }
        let (cr0, cr1, cr2, cc2) = (
            hb.const_val(0),
            hb.const_val(1),
            hb.const_val(2),
            hb.const_val(2),
        );
        hb.mem_write(top, win[1], &[cr0, cc2], ti, 1);
        hb.mem_write(mid, win[1], &[cr1, cc2], ti, 1);
        hb.mem_write(pix, win[1], &[cr2, cc2], ti, 1);
        // Line buffers scroll: lb[0][x] <- lb[1][x], lb[1][x] <- pix.
        hb.mem_write(mid, lb[1], &[c0, x1], ti, 1);
        hb.mem_write(pix, lb[1], &[c1, x1], ti, 1);

        // Weighted sum of the *new* window contents (columns shifted, new
        // rightmost column), all valid at ti+1.
        let new_col = [top, mid, pix];
        let mut sum: Option<ValueId> = None;
        for r in 0..3usize {
            for c in 0..3usize {
                let v = if c == 2 { new_col[r] } else { wvals[r][c + 1] };
                let weight = KERNEL[r][c];
                let wconst = hb.typed_const(weight as i64, Type::int(32));
                let term = hb.mult(v, wconst);
                sum = Some(match sum {
                    None => term,
                    Some(prev) => hb.add(prev, term),
                });
            }
        }
        hb.mem_write(sum.unwrap(), args[1], &[y1, x1], ti, 1);
        hb.yield_at(ti, 1);
    });
    hb.return_(&[]);
    hb.finish()
}

/// The HLS form: identical streaming structure via local arrays.
pub fn hls_conv(h: u64, w: u64, manual_opt: bool) -> Kernel {
    let mut k = Kernel::new(FUNC);
    k.in_array("img", 32, &[h, w]).out_array("out", 32, &[h, w]);
    k.local_array("lb", 32, &[2, w], &[0]);
    k.local_array("win", 32, &[3, 3], &[0, 1]);
    if manual_opt {
        k.loop_var_width = hir_opt::signed_width_for(0, (h * w) as i128);
    }
    let pipe = LoopPragmas {
        pipeline_ii: Some(1),
        unroll: false,
    };
    let unroll = LoopPragmas {
        pipeline_ii: None,
        unroll: true,
    };
    let mut main_body: Vec<KStmt> = vec![
        KStmt::Assign {
            var: "pix".into(),
            expr: KExpr::read("img", vec![KExpr::var("y"), KExpr::var("x")]),
        },
        KStmt::Assign {
            var: "top".into(),
            expr: KExpr::read("lb", vec![KExpr::c(0, 1), KExpr::var("x")]),
        },
        KStmt::Assign {
            var: "mid".into(),
            expr: KExpr::read("lb", vec![KExpr::c(1, 1), KExpr::var("x")]),
        },
    ];
    // Read the window.
    for r in 0..3 {
        for c in 0..3 {
            main_body.push(KStmt::Assign {
                var: format!("w{r}{c}"),
                expr: KExpr::read("win", vec![KExpr::c(r, 2), KExpr::c(c, 2)]),
            });
        }
    }
    // Shift + insert.
    for r in 0..3 {
        for c in 0..2 {
            main_body.push(KStmt::Store {
                array: "win".into(),
                indices: vec![KExpr::c(r, 2), KExpr::c(c, 2)],
                value: KExpr::var(format!("w{r}{}", c + 1)),
            });
        }
    }
    for (r, v) in [(0, "top"), (1, "mid"), (2, "pix")] {
        main_body.push(KStmt::Store {
            array: "win".into(),
            indices: vec![KExpr::c(r, 2), KExpr::c(2, 2)],
            value: KExpr::var(v),
        });
    }
    main_body.push(KStmt::Store {
        array: "lb".into(),
        indices: vec![KExpr::c(0, 1), KExpr::var("x")],
        value: KExpr::var("mid"),
    });
    main_body.push(KStmt::Store {
        array: "lb".into(),
        indices: vec![KExpr::c(1, 1), KExpr::var("x")],
        value: KExpr::var("pix"),
    });
    // Weighted sum of the shifted window.
    let mut sum: Option<KExpr> = None;
    for r in 0..3usize {
        for (c, &k) in KERNEL[r].iter().enumerate() {
            let v = if c == 2 {
                KExpr::var(["top", "mid", "pix"][r])
            } else {
                KExpr::var(format!("w{r}{}", c + 1))
            };
            let term = KExpr::mul(v, KExpr::c(k as i64, 32));
            sum = Some(match sum {
                None => term,
                Some(prev) => KExpr::add(prev, term),
            });
        }
    }
    main_body.push(KStmt::Store {
        array: "out".into(),
        indices: vec![KExpr::var("y"), KExpr::var("x")],
        value: sum.unwrap(),
    });

    k.body = vec![
        // Clear the window registers.
        KStmt::For {
            var: "zr".into(),
            lb: 0,
            ub: 3,
            step: 1,
            pragmas: unroll,
            body: vec![KStmt::For {
                var: "zc".into(),
                lb: 0,
                ub: 3,
                step: 1,
                pragmas: unroll,
                body: vec![KStmt::Store {
                    array: "win".into(),
                    indices: vec![KExpr::var("zr"), KExpr::var("zc")],
                    value: KExpr::c(0, 32),
                }],
            }],
        },
        // Clear the line buffers.
        KStmt::For {
            var: "zx".into(),
            lb: 0,
            ub: w as i64,
            step: 1,
            pragmas: pipe,
            body: vec![
                KStmt::Store {
                    array: "lb".into(),
                    indices: vec![KExpr::c(0, 1), KExpr::var("zx")],
                    value: KExpr::c(0, 32),
                },
                KStmt::Store {
                    array: "lb".into(),
                    indices: vec![KExpr::c(1, 1), KExpr::var("zx")],
                    value: KExpr::c(0, 32),
                },
            ],
        },
        // Main streaming loop.
        KStmt::For {
            var: "y".into(),
            lb: 0,
            ub: h as i64,
            step: 1,
            pragmas: LoopPragmas::default(),
            body: vec![KStmt::For {
                var: "x".into(),
                lb: 0,
                ub: w as i64,
                step: 1,
                pragmas: pipe,
                body: main_body,
            }],
        },
    ];
    k
}

/// Software reference, mirroring the streaming semantics exactly: the
/// window/line buffers start zeroed; `out[y][x]` is the weighted sum of the
/// 3×3 neighbourhood ending at `(y, x)` (so interior pixels at `(y, x)` for
/// `y, x >= 2` hold the true convolution of the window with its upper-left
/// corner at `(y-2, x-2)`).
pub fn reference(h: u64, w: u64, img: &[i128]) -> Vec<i128> {
    let (h, w) = (h as usize, w as usize);
    let mut out = vec![0i128; h * w];
    let mut lb = vec![[0i128; 2]; w];
    let mut win = [[0i128; 3]; 3];
    for y in 0..h {
        for x in 0..w {
            let pix = img[y * w + x];
            let top = lb[x][0];
            let mid = lb[x][1];
            // Shift left, insert the new column.
            for row in &mut win {
                row.copy_within(1.., 0);
            }
            win[0][2] = top;
            win[1][2] = mid;
            win[2][2] = pix;
            lb[x][0] = mid;
            lb[x][1] = pix;
            let mut sum = 0i128;
            for r in 0..3 {
                for c in 0..3 {
                    sum += win[r][c] * KERNEL[r][c];
                }
            }
            out[y * w + x] = sum as i32 as i128;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hir::interp::{ArgValue, Interpreter};

    #[test]
    fn reference_interior_is_true_convolution() {
        let (h, w) = (8u64, 8u64);
        let img: Vec<i128> = (0..(h * w) as i128).collect();
        let out = reference(h, w, &img);
        // Check one interior pixel against the direct formula.
        let (y, x) = (5usize, 6usize);
        let mut expect = 0i128;
        for r in 0..3 {
            for c in 0..3 {
                expect += img[(y - 2 + r) * w as usize + (x - 2 + c)] * KERNEL[r][c];
            }
        }
        assert_eq!(out[y * w as usize + x], expect);
    }

    #[test]
    fn hir_matches_reference() {
        let (h, w) = (8u64, 8u64);
        let m = hir_conv(h, w, 32);
        let mut diags = ir::DiagnosticEngine::new();
        hir_verify::verify_schedule(&m, &mut diags)
            .unwrap_or_else(|_| panic!("{}", diags.render()));
        let img: Vec<i128> = (0..(h * w) as i128).map(|v| (v * 3) % 256).collect();
        let r = Interpreter::new(&m)
            .run(
                FUNC,
                &[
                    ArgValue::tensor_from(&img),
                    ArgValue::uninit_tensor((h * w) as usize),
                ],
            )
            .expect("simulate");
        let out: Vec<i128> = r.tensors[&1].iter().map(|v| v.unwrap()).collect();
        assert_eq!(out, reference(h, w, &img));
        // Streaming: ~w init + h*w main cycles.
        assert!(
            r.cycles <= w + h * w + 16,
            "not streaming: {} cycles",
            r.cycles
        );
    }

    #[test]
    fn hls_matches_reference() {
        let (h, w) = (4u64, 8u64);
        let k = hls_conv(h, w, false);
        let c = hls::compile(&k, &hls::SchedOptions::default()).expect("compile");
        let img: Vec<i128> = (0..(h * w) as i128).map(|v| v % 17).collect();
        let r = Interpreter::new(&c.hir_module)
            .run(
                "hls_conv2d",
                &[
                    ArgValue::tensor_from(&img),
                    ArgValue::uninit_tensor((h * w) as usize),
                ],
            )
            .expect("simulate");
        let out: Vec<i128> = r.tensors[&1].iter().map(|v| v.unwrap()).collect();
        assert_eq!(out, reference(h, w, &img));
    }
}
