//! # `kernels` — the paper's benchmark suite
//!
//! Every benchmark of the paper's evaluation (§8), built twice:
//!
//! * **HIR**: hand-scheduled designs following the paper's listings
//!   (explicit schedules, pipelined loops, banked buffers, `unroll_for`
//!   grids);
//! * **HLS**: C-like kernels with pragmas for the baseline compiler.
//!
//! Plus software references, random workload generators, and the
//! hand-written Verilog FIFO baseline.

pub mod conv;
pub mod errors;
pub mod fifo;
pub mod fir;
pub mod gemm;
pub mod histogram;
pub mod stencil;
pub mod transpose;
pub mod workload;

use hir::ops::FuncOp;
use ir::Module;

/// A benchmark in both compiler forms, as used by the table harnesses.
pub struct Benchmark {
    /// Display name (matches the paper's tables).
    pub name: &'static str,
    /// Build the hand-scheduled HIR module (unoptimized frontend widths).
    pub build_hir: fn() -> Module,
    /// HIR top-level function name.
    pub hir_func: &'static str,
    /// Build the HLS kernel (Vivado-default widths).
    pub build_hls: fn() -> hls::Kernel,
}

/// Default problem sizes (the paper's where stated: 16×16 GEMM, 64-element
/// stencil, etc.).
pub mod sizes {
    pub const TRANSPOSE_N: u64 = 16;
    pub const STENCIL_N: u64 = 64;
    pub const HISTOGRAM_PIXELS: u64 = 256;
    pub const HISTOGRAM_BINS: u64 = 256;
    pub const GEMM_N: u64 = 16;
    pub const CONV_H: u64 = 16;
    pub const CONV_W: u64 = 16;
    pub const FIFO_DEPTH: u64 = 512;
    pub const FIFO_CMDS: u64 = 64;
}

/// The five compiled benchmarks of Tables 5/6 (FIFO is handled separately:
/// its baseline is hand-written Verilog, not an HLS kernel).
pub fn compiled_benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "Matrix transpose",
            build_hir: || transpose::hir_transpose(sizes::TRANSPOSE_N, 32),
            hir_func: transpose::FUNC,
            build_hls: || transpose::hls_transpose(sizes::TRANSPOSE_N, true),
        },
        Benchmark {
            name: "Stencil-1d",
            build_hir: || stencil::hir_stencil(sizes::STENCIL_N, 32),
            hir_func: stencil::FUNC,
            build_hls: || stencil::hls_stencil(sizes::STENCIL_N, true),
        },
        Benchmark {
            name: "Histogram",
            build_hir: || {
                histogram::hir_histogram(sizes::HISTOGRAM_PIXELS, sizes::HISTOGRAM_BINS, 32)
            },
            hir_func: histogram::FUNC,
            build_hls: || {
                histogram::hls_histogram(sizes::HISTOGRAM_PIXELS, sizes::HISTOGRAM_BINS, true)
            },
        },
        Benchmark {
            name: "GEMM",
            build_hir: || gemm::hir_gemm(sizes::GEMM_N, 32),
            hir_func: gemm::FUNC,
            build_hls: || gemm::hls_gemm(sizes::GEMM_N, true),
        },
        Benchmark {
            name: "Convolution",
            build_hir: || conv::hir_conv(sizes::CONV_H, sizes::CONV_W, 32),
            hir_func: conv::FUNC,
            build_hls: || conv::hls_conv(sizes::CONV_H, sizes::CONV_W, true),
        },
    ]
}

/// Run the full HIR pipeline (verify → optimize → verify → codegen) and
/// return the generated design plus compile time.
///
/// # Errors
/// Returns a rendered diagnostic/compile error message.
pub fn compile_hir(
    module: &mut Module,
    optimize: bool,
) -> Result<(verilog::Design, std::time::Duration), String> {
    let start = std::time::Instant::now();
    let mut diags = ir::DiagnosticEngine::new();
    ir::verify_module(module, &hir::hir_registry(), &mut diags).map_err(|_| diags.render())?;
    hir_verify::verify_schedule(module, &mut diags).map_err(|_| diags.render())?;
    if optimize {
        hir_opt::optimize(module).map_err(|p| format!("pass '{p}' failed"))?;
        let mut diags = ir::DiagnosticEngine::new();
        hir_verify::verify_schedule(module, &mut diags).map_err(|_| diags.render())?;
    }
    let design = hir_codegen::generate_design(module, &hir_codegen::CodegenOptions::default())
        .map_err(|e| e.to_string())?;
    Ok((design, start.elapsed()))
}

/// Top Verilog module name for an HIR benchmark function.
pub fn hir_top(func: &str) -> String {
    hir_codegen::module_name(func)
}

/// Resolve the `FuncOp` of a benchmark function.
///
/// # Panics
/// Panics when the function is missing (programming error in a harness).
pub fn find_func(module: &Module, name: &str) -> FuncOp {
    let table = ir::SymbolTable::build(module);
    FuncOp::wrap(
        module,
        table.lookup(name).expect("benchmark function exists"),
    )
    .expect("symbol is a hir.func")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_compile_through_both_pipelines() {
        for b in compiled_benchmarks() {
            let mut m = (b.build_hir)();
            let (design, _) = compile_hir(&mut m, false)
                .unwrap_or_else(|e| panic!("{} HIR compile failed:\n{e}", b.name));
            assert!(design.find(&hir_top(b.hir_func)).is_some(), "{}", b.name);

            let k = (b.build_hls)();
            let c = hls::compile(&k, &hls::SchedOptions::default())
                .unwrap_or_else(|e| panic!("{} HLS compile failed: {e}", b.name));
            assert!(c.design.find(&c.top).is_some(), "{}", b.name);
        }
    }

    #[test]
    fn optimization_reduces_transpose_resources() {
        // The Table 4 claim: precision optimization cuts FF count sharply.
        let model = synth::CostModel::default();
        let mut no_opt = transpose::hir_transpose(sizes::TRANSPOSE_N, 32);
        let (d1, _) = compile_hir(&mut no_opt, false).unwrap();
        let r_no_opt = synth::estimate_design(&d1, &hir_top(transpose::FUNC), &model);

        let mut auto_opt = transpose::hir_transpose(sizes::TRANSPOSE_N, 32);
        let (d2, _) = compile_hir(&mut auto_opt, true).unwrap();
        let r_auto = synth::estimate_design(&d2, &hir_top(transpose::FUNC), &model);

        assert!(
            r_auto.ff < r_no_opt.ff,
            "precision opt must cut FFs: {} -> {}",
            r_no_opt.ff,
            r_auto.ff
        );
        assert!(
            r_auto.lut <= r_no_opt.lut,
            "{} -> {}",
            r_no_opt.lut,
            r_auto.lut
        );
    }
}
