//! FIFO (paper Table 5's "FIFO (Verilog)" row): a synchronous FIFO written
//! directly in Verilog as the hand-coded baseline, and an HIR design with
//! the same functionality — a command processor that executes a sequence of
//! push/pop operations against an internal circular buffer.

use hir::types::{MemKind, MemrefInfo, Port};
use hir::HirBuilder;
use ir::{Location, Module, Type};
use verilog::{BinOp, Dir, Expr, LValue, Stmt, VModule};

/// HIR function name.
pub const FUNC: &str = "fifo";

/// Command encoding in the input stream.
pub const CMD_NOP: i128 = 0;
pub const CMD_PUSH: i128 = 1;
pub const CMD_POP: i128 = 2;

/// Build the hand-written Verilog FIFO (depth × width), the baseline row.
pub fn verilog_fifo(depth: u64, width: u32) -> VModule {
    let addr_w = hir::types::bits_for(depth - 1);
    let mut m = VModule::new("fifo_verilog");
    m.comments
        .push("hand-written synchronous FIFO baseline".into());
    m.port("clk", Dir::Input, 1);
    m.port("push", Dir::Input, 1);
    m.port("pop", Dir::Input, 1);
    m.port("din", Dir::Input, width);
    m.port("dout", Dir::Output, width);
    m.port("full", Dir::Output, 1);
    m.port("empty", Dir::Output, 1);
    m.memory("mem", width, depth, Some("bram"));
    m.reg("head", addr_w);
    m.reg("tail", addr_w);
    m.reg("count", addr_w + 1);
    m.reg("dout_r", width);
    m.assign("dout", Expr::r("dout_r"));
    m.assign(
        "full",
        Expr::eq(Expr::r("count"), Expr::c(depth, addr_w + 1)),
    );
    m.assign("empty", Expr::eq(Expr::r("count"), Expr::c(0, addr_w + 1)));
    let do_push = Expr::and(Expr::r("push"), Expr::not(Expr::r("full")));
    let do_pop = Expr::and(Expr::r("pop"), Expr::not(Expr::r("empty")));
    let always = m.main_always();
    always.stmts.push(Stmt::If {
        cond: do_push.clone(),
        then: vec![
            Stmt::NonBlocking {
                lhs: LValue::MemElem {
                    mem: "mem".into(),
                    addr: Expr::r("tail"),
                },
                rhs: Expr::r("din"),
            },
            Stmt::NonBlocking {
                lhs: LValue::Net("tail".into()),
                rhs: Expr::add(Expr::r("tail"), Expr::c(1, addr_w)),
            },
        ],
        els: vec![],
    });
    always.stmts.push(Stmt::If {
        cond: do_pop.clone(),
        then: vec![
            Stmt::NonBlocking {
                lhs: LValue::Net("dout_r".into()),
                rhs: Expr::MemRead {
                    mem: "mem".into(),
                    addr: Box::new(Expr::r("head")),
                },
            },
            Stmt::NonBlocking {
                lhs: LValue::Net("head".into()),
                rhs: Expr::add(Expr::r("head"), Expr::c(1, addr_w)),
            },
        ],
        els: vec![],
    });
    // Count bookkeeping: +1 on push-only, -1 on pop-only.
    always.stmts.push(Stmt::If {
        cond: Expr::and(do_push.clone(), Expr::not(do_pop.clone())),
        then: vec![Stmt::NonBlocking {
            lhs: LValue::Net("count".into()),
            rhs: Expr::add(Expr::r("count"), Expr::c(1, addr_w + 1)),
        }],
        els: vec![Stmt::If {
            cond: Expr::and(do_pop, Expr::not(do_push)),
            then: vec![Stmt::NonBlocking {
                lhs: LValue::Net("count".into()),
                rhs: Expr::bin(BinOp::Sub, Expr::r("count"), Expr::c(1, addr_w + 1)),
            }],
            els: vec![],
        }],
    });
    m
}

/// Build the HIR FIFO: processes `n_cmds` commands (push/pop/nop) against a
/// `depth`-deep internal buffer at one command per two cycles.
pub fn hir_fifo(depth: u64, n_cmds: u64, iv_width: u32) -> Module {
    let mut hb = HirBuilder::new();
    hb.set_loc(Location::file_line_col("kernels/fifo.hir", 1, 1));
    let cmds = MemrefInfo::packed(&[n_cmds], Type::int(2), Port::Read, MemKind::BlockRam);
    let din = MemrefInfo::packed(&[n_cmds], Type::int(32), Port::Read, MemKind::BlockRam);
    let dout = MemrefInfo::packed(&[n_cmds], Type::int(32), Port::Write, MemKind::BlockRam);
    let f = hb.func(
        FUNC,
        &[
            ("cmds", cmds.to_type()),
            ("din", din.to_type()),
            ("dout", dout.to_type()),
        ],
        &[],
    );
    let t = f.time_var(hb.module());
    let args = f.args(hb.module());

    let addr_w = hir::types::bits_for(depth - 1);
    let (buf_r, buf_w) = hb.alloc_rw(&[depth], Type::int(32), MemKind::BlockRam);
    let (head_r, head_w) = hb.alloc_rw(&[1], Type::int(addr_w), MemKind::Reg);
    let (tail_r, tail_w) = hb.alloc_rw(&[1], Type::int(addr_w), MemKind::Reg);
    let (c0, c1, cn) = (
        hb.const_val(0),
        hb.const_val(1),
        hb.const_val(n_cmds as i64),
    );

    // Reset the pointers.
    let zero_ptr = hb.typed_const(0, Type::int(addr_w));
    hb.mem_write(zero_ptr, head_w, &[c0], t, 0);
    hb.mem_write(zero_ptr, tail_w, &[c0], t, 0);

    // One command per two cycles (the pop's buffer read needs a cycle).
    let lp = hb.for_loop(c0, cn, c1, t, 1, Type::int(iv_width));
    hb.in_loop(lp, |hb, i, ti| {
        let cmd = hb.mem_read(args[0], &[i], ti, 0); // valid ti+1
        let data = hb.mem_read(args[1], &[i], ti, 0);
        let is_push = hb.slice(cmd, 0, 0);
        let is_pop = hb.slice(cmd, 1, 1);
        let head = hb.mem_read(head_r, &[c0], ti, 1); // regs: valid ti+1
        let tail = hb.mem_read(tail_r, &[c0], ti, 1);
        let one_ptr = hb.typed_const(1, Type::int(addr_w));

        let push_if = hb.if_op(is_push, ti, 1, false);
        hb.in_then(push_if, |hb| {
            hb.mem_write(data, buf_w, &[tail], ti, 1);
            let t2 = hb.add(tail, one_ptr);
            hb.mem_write(t2, tail_w, &[c0], ti, 1);
        });
        let pop_if = hb.if_op(is_pop, ti, 1, false);
        hb.in_then(pop_if, |hb| {
            let v = hb.mem_read(buf_r, &[head], ti, 1); // valid ti+2
            let i2 = hb.delay(i, 2, ti, 0);
            hb.mem_write(v, args[2], &[i2], ti, 2);
            let h2 = hb.add(head, one_ptr);
            hb.mem_write(h2, head_w, &[c0], ti, 1);
        });
        hb.yield_at(ti, 2);
    });
    hb.return_(&[]);
    hb.finish()
}

/// Software reference: returns the dout array (one slot per command; only
/// pop commands write their slot).
pub fn reference(n_cmds: u64, cmds: &[i128], din: &[i128]) -> Vec<Option<i128>> {
    let mut q = std::collections::VecDeque::new();
    let mut out = vec![None; n_cmds as usize];
    for i in 0..n_cmds as usize {
        if cmds[i] & CMD_PUSH != 0 {
            q.push_back(din[i]);
        }
        if cmds[i] & CMD_POP != 0 {
            out[i] = q.pop_front();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hir::interp::{ArgValue, Interpreter};
    use verilog::{Design, Simulator};

    #[test]
    fn verilog_fifo_behaves() {
        let mut d = Design::new();
        d.add(verilog_fifo(16, 32));
        let mut sim = Simulator::new(&d, "fifo_verilog").expect("build");
        assert_eq!(sim.get("empty"), 1);
        // Push 3 values.
        for v in [10u64, 20, 30] {
            sim.set("push", 1);
            sim.set("din", v);
            sim.step().unwrap();
        }
        sim.set("push", 0);
        assert_eq!(sim.get("empty"), 0);
        // Pop them back in order.
        for v in [10u64, 20, 30] {
            sim.set("pop", 1);
            sim.step().unwrap();
            assert_eq!(sim.get("dout"), v);
        }
        sim.set("pop", 0);
        assert_eq!(sim.get("empty"), 1);
    }

    #[test]
    fn verilog_fifo_full_blocks_push() {
        let mut d = Design::new();
        d.add(verilog_fifo(4, 8));
        let mut sim = Simulator::new(&d, "fifo_verilog").expect("build");
        sim.set("push", 1);
        for v in 0..6u64 {
            sim.set("din", 100 + v);
            sim.step().unwrap();
        }
        sim.set("push", 0);
        assert_eq!(sim.get("full"), 1);
        // Only the first 4 made it.
        sim.set("pop", 1);
        for v in 0..4u64 {
            sim.step().unwrap();
            assert_eq!(sim.get("dout"), 100 + v);
        }
        sim.set("pop", 0);
        assert_eq!(sim.get("empty"), 1);
    }

    #[test]
    fn hir_fifo_matches_reference() {
        let (depth, n) = (16u64, 24u64);
        let m = hir_fifo(depth, n, 32);
        let mut diags = ir::DiagnosticEngine::new();
        hir_verify::verify_schedule(&m, &mut diags)
            .unwrap_or_else(|_| panic!("{}", diags.render()));
        // Interleaved pushes and pops, never underflowing.
        let cmds: Vec<i128> = (0..n as i128)
            .map(|i| if i % 3 == 2 { CMD_POP } else { CMD_PUSH })
            .collect();
        let din: Vec<i128> = (0..n as i128).map(|i| 1000 + i).collect();
        let r = Interpreter::new(&m)
            .run(
                FUNC,
                &[
                    ArgValue::tensor_from(&cmds),
                    ArgValue::tensor_from(&din),
                    ArgValue::uninit_tensor(n as usize),
                ],
            )
            .expect("simulate");
        let expect = reference(n, &cmds, &din);
        for i in 0..n as usize {
            if let Some(v) = expect[i] {
                assert_eq!(r.tensors[&2][i], Some(v), "dout[{i}]");
            }
        }
    }
}
