//! Matrix transpose (paper Listing 1, Tables 4/5/6).
//!
//! Reads an N×N matrix through one memory interface and writes its
//! transpose through another. The inner loop is pipelined at II=1; the
//! outer loop is sequential.

use hir::types::{MemKind, MemrefInfo, Port};
use hir::HirBuilder;
use hls::{KExpr, KStmt, Kernel, LoopPragmas};
use ir::{Location, Module, Type};

/// HIR function name.
pub const FUNC: &str = "transpose";

/// Build the HIR design. `iv_width` models the source-level counter width
/// (32 = unoptimized frontend output, narrowed by the precision pass).
pub fn hir_transpose(n: u64, iv_width: u32) -> Module {
    let mut hb = HirBuilder::new();
    hb.set_loc(Location::file_line_col("kernels/transpose.hir", 1, 1));
    let a = MemrefInfo::packed(&[n, n], Type::int(32), Port::Read, MemKind::BlockRam);
    let c = a.with_port(Port::Write);
    let f = hb.func(FUNC, &[("Ai", a.to_type()), ("Co", c.to_type())], &[]);
    let t = f.time_var(hb.module());
    let args = f.args(hb.module());
    let (c0, cn, c1) = (hb.const_val(0), hb.const_val(n as i64), hb.const_val(1));
    let i_loop = hb.for_loop(c0, cn, c1, t, 1, Type::int(iv_width));
    hb.in_loop(i_loop, |hb, i, ti| {
        let j_loop = hb.for_loop(c0, cn, c1, ti, 1, Type::int(iv_width));
        hb.in_loop(j_loop, |hb, j, tj| {
            let v = hb.mem_read(args[0], &[i, j], tj, 0);
            let j1 = hb.delay(j, 1, tj, 0);
            hb.mem_write(v, args[1], &[j1, i], tj, 1);
            hb.yield_at(tj, 1);
        });
        let tf = j_loop.result_time(hb.module());
        hb.yield_at(tf, 1);
    });
    hb.return_(&[]);
    hb.finish()
}

/// The HLS form. `manual_opt` narrows the loop counters the way the paper's
/// manually-optimized Vivado HLS source does (Table 4's second row).
pub fn hls_transpose(n: u64, manual_opt: bool) -> Kernel {
    let mut k = Kernel::new(FUNC);
    k.in_array("Ai", 32, &[n, n]).out_array("Co", 32, &[n, n]);
    if manual_opt {
        k.loop_var_width = hir_opt::signed_width_for(0, n as i128);
    }
    k.body = vec![KStmt::For {
        var: "i".into(),
        lb: 0,
        ub: n as i64,
        step: 1,
        pragmas: LoopPragmas::default(),
        body: vec![KStmt::For {
            var: "j".into(),
            lb: 0,
            ub: n as i64,
            step: 1,
            pragmas: LoopPragmas {
                pipeline_ii: Some(1),
                unroll: false,
            },
            body: vec![KStmt::Store {
                array: "Co".into(),
                indices: vec![KExpr::var("j"), KExpr::var("i")],
                value: KExpr::read("Ai", vec![KExpr::var("i"), KExpr::var("j")]),
            }],
        }],
    }];
    k
}

/// Software reference.
pub fn reference(n: u64, input: &[i128]) -> Vec<i128> {
    let n = n as usize;
    let mut out = vec![0; n * n];
    for i in 0..n {
        for j in 0..n {
            out[j * n + i] = input[i * n + j];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hir::interp::{ArgValue, Interpreter};

    #[test]
    fn hir_matches_reference() {
        let n = 16;
        let m = hir_transpose(n, 32);
        let mut diags = ir::DiagnosticEngine::new();
        hir_verify::verify_schedule(&m, &mut diags).expect("schedule");
        let input: Vec<i128> = (0..(n * n) as i128).map(|x| x * 7 - 300).collect();
        let r = Interpreter::new(&m)
            .run(
                FUNC,
                &[
                    ArgValue::tensor_from(&input),
                    ArgValue::uninit_tensor((n * n) as usize),
                ],
            )
            .expect("simulate");
        let out: Vec<i128> = r.tensors[&1].iter().map(|v| v.unwrap()).collect();
        assert_eq!(out, reference(n, &input));
    }

    #[test]
    fn hls_matches_reference() {
        let n = 8;
        let k = hls_transpose(n, false);
        let c = hls::compile(&k, &hls::SchedOptions::default()).expect("compile");
        let input: Vec<i128> = (0..(n * n) as i128).collect();
        let r = Interpreter::new(&c.hir_module)
            .run(
                "hls_transpose",
                &[
                    ArgValue::tensor_from(&input),
                    ArgValue::uninit_tensor((n * n) as usize),
                ],
            )
            .expect("simulate");
        let out: Vec<i128> = r.tensors[&1].iter().map(|v| v.unwrap()).collect();
        assert_eq!(out, reference(n, &input));
    }
}
