//! Deterministic random workload generation for the benchmarks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A reproducible RNG for benchmark inputs.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// `len` random 32-bit values (as i128).
pub fn random_i32s(seed: u64, len: usize) -> Vec<i128> {
    let mut r = rng(seed);
    (0..len)
        .map(|_| r.gen_range(-1_000_000i64..1_000_000) as i128)
        .collect()
}

/// `len` random values in `0..bound` (histogram pixels, FIFO commands...).
pub fn random_bounded(seed: u64, len: usize, bound: i128) -> Vec<i128> {
    let mut r = rng(seed);
    (0..len)
        .map(|_| r.gen_range(0..bound as i64) as i128)
        .collect()
}

/// A random FIFO command stream that never underflows or overflows.
pub fn random_fifo_commands(seed: u64, len: usize, depth: usize) -> Vec<i128> {
    let mut r = rng(seed);
    let mut occupancy = 0usize;
    (0..len)
        .map(|_| {
            let want_push = r.gen_bool(0.6);
            if want_push && occupancy < depth {
                occupancy += 1;
                crate::fifo::CMD_PUSH
            } else if occupancy > 0 {
                occupancy -= 1;
                crate::fifo::CMD_POP
            } else {
                crate::fifo::CMD_NOP
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(random_i32s(7, 16), random_i32s(7, 16));
        assert_ne!(random_i32s(7, 16), random_i32s(8, 16));
    }

    #[test]
    fn fifo_commands_never_underflow() {
        let cmds = random_fifo_commands(3, 200, 8);
        let mut occ = 0i64;
        for c in cmds {
            if c == crate::fifo::CMD_PUSH {
                occ += 1;
            }
            if c == crate::fifo::CMD_POP {
                occ -= 1;
            }
            assert!(occ >= 0);
            assert!(occ <= 8);
        }
    }
}
