//! A parameterized FIR filter generator — the paper's DSL story in
//! miniature.
//!
//! The paper positions HIR as a *target for DSL compilers* (§1, §5.2):
//! a frontend with domain knowledge emits hand-quality scheduled hardware.
//! `hir_fir` is such a frontend: given any tap vector it generates a
//! fully-pipelined (II=1) transposed-form FIR filter — tap registers,
//! multiply (or shift-add, chosen per coefficient by the optimizer),
//! adder chain — with the schedule derived from the taps at generation
//! time. The paper calls out FIR filters as the signal-processing instance
//! of the stencil class (§8).

use hir::types::{Dim, MemKind, MemrefInfo, Port};
use hir::HirBuilder;
use ir::{Location, Module, Type, ValueId};

/// HIR function name.
pub const FUNC: &str = "fir";

/// Generate an `n`-sample FIR filter with the given taps.
///
/// `y[i] = sum_k taps[k] * x[i-k]`, with `x[j] = 0` for `j < 0`.
/// The main loop is pipelined at II=1: one output per cycle.
///
/// # Panics
/// Panics if `taps` is empty.
pub fn hir_fir(n: u64, taps: &[i64], iv_width: u32) -> Module {
    assert!(!taps.is_empty(), "FIR needs at least one tap");
    let k = taps.len() as u64;
    let mut hb = HirBuilder::new();
    hb.set_loc(Location::file_line_col("kernels/fir.hir", 1, 1));
    let x_t = MemrefInfo::packed(&[n], Type::int(32), Port::Read, MemKind::BlockRam);
    let y_t = x_t.with_port(Port::Write);
    let f = hb.func(FUNC, &[("x", x_t.to_type()), ("y", y_t.to_type())], &[]);
    let t = f.time_var(hb.module());
    let args = f.args(hb.module());

    // Sample history in distributed registers (newest at index 0).
    let hist = hb.alloc(
        &[Dim::Distributed(k)],
        Type::int(32),
        MemKind::Reg,
        &[Port::Read, Port::Write],
    );
    let (c0, c1, cn) = (hb.const_val(0), hb.const_val(1), hb.const_val(n as i64));
    let zero = hb.typed_const(0, Type::int(32));

    // Clear the history (one cycle: every bank is its own register).
    for j in 0..k {
        let cj = hb.const_val(j as i64);
        hb.mem_write(zero, hist[1], &[cj], t, 1);
    }

    // Main loop at II=1 from t+2.
    let lp = hb.for_loop(c0, cn, c1, t, 2, Type::int(iv_width));
    hb.in_loop(lp, |hb, i, ti| {
        let sample = hb.mem_read(args[0], &[i], ti, 0); // valid ti+1
                                                        // Shift the history and read the (pre-shift) window at ti+1.
        let mut window: Vec<ValueId> = Vec::new();
        for j in 0..k {
            let cj = hb.const_val(j as i64);
            window.push(hb.mem_read(hist[0], &[cj], ti, 1));
        }
        for j in (1..k).rev() {
            let cj = hb.const_val(j as i64);
            hb.mem_write(window[(j - 1) as usize], hist[1], &[cj], ti, 1);
        }
        hb.mem_write(sample, hist[1], &[c0], ti, 1);

        // y[i] = taps[0]*sample + sum_{j>=1} taps[j]*window[j-1],
        // all combinational at ti+1 (operator chaining, §7.4).
        let mut acc: Option<ValueId> = None;
        for (j, &coeff) in taps.iter().enumerate() {
            let v = if j == 0 { sample } else { window[j - 1] };
            let c = hb.typed_const(coeff, Type::int(32));
            let term = hb.mult(v, c);
            acc = Some(match acc {
                None => term,
                Some(prev) => hb.add(prev, term),
            });
        }
        let i1 = hb.delay(i, 1, ti, 0);
        hb.mem_write(acc.expect("nonempty taps"), args[1], &[i1], ti, 1);
        hb.yield_at(ti, 1);
    });
    hb.return_(&[]);
    hb.finish()
}

/// Software reference.
pub fn reference(taps: &[i64], x: &[i128]) -> Vec<i128> {
    let n = x.len();
    let mut y = vec![0i128; n];
    for i in 0..n {
        let mut acc: i64 = 0;
        for (j, &c) in taps.iter().enumerate() {
            if i >= j {
                acc = acc.wrapping_add((c as i32).wrapping_mul(x[i - j] as i32) as i64);
                acc = acc as i32 as i64;
            }
        }
        y[i] = acc as i128;
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use hir::interp::{ArgValue, Interpreter};

    fn check(taps: &[i64], n: u64) {
        let m = hir_fir(n, taps, 32);
        let mut diags = ir::DiagnosticEngine::new();
        hir_verify::verify_schedule(&m, &mut diags)
            .unwrap_or_else(|_| panic!("taps {taps:?}:\n{}", diags.render()));
        let x: Vec<i128> = (0..n as i128).map(|v| (v * 37 + 11) % 201 - 100).collect();
        let r = Interpreter::new(&m)
            .run(
                FUNC,
                &[
                    ArgValue::tensor_from(&x),
                    ArgValue::uninit_tensor(n as usize),
                ],
            )
            .expect("simulate");
        let y: Vec<i128> = r.tensors[&1].iter().map(|v| v.unwrap()).collect();
        assert_eq!(y, reference(taps, &x), "taps {taps:?}");
        assert!(r.cycles <= n + 8, "FIR not pipelined: {} cycles", r.cycles);
    }

    #[test]
    fn fir_various_tap_counts() {
        check(&[1], 16);
        check(&[1, 2, 1], 32);
        check(&[3, -1, 4, -1, 5], 32);
        check(&[2, 4, 8, 16], 24); // all powers of two: strength-reducible
    }

    #[test]
    fn power_of_two_taps_strength_reduce_to_cheaper_logic() {
        // Powers of two strength-reduce to shifts (pure wiring); general
        // coefficients keep shift-add networks. Constant multiplies never
        // claim DSP blocks in either case (as on real fabrics).
        let estimate = |taps: &[i64]| {
            let mut m = hir_fir(32, taps, 32);
            let (d, _) = crate::compile_hir(&mut m, true).expect("compile");
            synth::estimate_design(&d, &crate::hir_top(FUNC), &synth::CostModel::default())
        };
        let pow2 = estimate(&[1, 2, 4, 2, 1]);
        let general = estimate(&[7, 11, 13, 11, 7]);
        assert_eq!(pow2.dsp, 0);
        assert_eq!(general.dsp, 0);
        assert!(
            pow2.lut < general.lut,
            "shift-only taps must be cheaper: {} vs {}",
            pow2.lut,
            general.lut
        );
    }

    #[test]
    fn fir_rtl_matches_interpreter() {
        use hir_codegen::testbench::{Harness, HarnessArg};
        let taps = [1i64, -2, 3];
        let n = 16u64;
        let mut m = hir_fir(n, &taps, 32);
        let (design, _) = crate::compile_hir(&mut m, true).expect("compile");
        let func = crate::find_func(&m, FUNC);
        let x: Vec<i128> = (0..n as i128).map(|v| v - 8).collect();
        let mut h = Harness::new(
            &design,
            &m,
            func,
            &[HarnessArg::mem_from(&x), HarnessArg::zero_mem(n as usize)],
        )
        .expect("harness");
        let rtl = h.run(10_000).expect("RTL");
        assert_eq!(rtl.mems[&1], reference(&taps, &x));
    }
}
