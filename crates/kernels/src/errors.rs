//! The paper's Figures 1 and 2: designs containing deliberate schedule
//! errors, used to demonstrate (and regenerate) the verifier diagnostics.

use hir::types::{MemKind, MemrefInfo, Port};
use hir::HirBuilder;
use ir::{Location, Module, Type};

/// Figure 1a: array add whose `mem_write` consumes `%i` one cycle after the
/// II=1 loop has already incremented it. With `fixed`, the address is
/// delayed to match (the correct design).
pub fn figure1_array_add(fixed: bool) -> Module {
    let mut hb = HirBuilder::new();
    hb.set_loc(Location::file_line_col("test/HIR/err_add.mlir", 3, 1));
    let a = MemrefInfo::packed(&[128], Type::int(32), Port::Read, MemKind::BlockRam);
    let b = a.clone();
    let c = a.with_port(Port::Write);
    let f = hb.func(
        "Array_Add",
        &[("A", a.to_type()), ("B", b.to_type()), ("C", c.to_type())],
        &[],
    );
    let t = f.time_var(hb.module());
    let args = f.args(hb.module());
    let (c0, c128, c1) = (hb.const_val(0), hb.const_val(128), hb.const_val(1));
    hb.set_loc(Location::file_line_col("test/HIR/err_add.mlir", 8, 3));
    let lp = hb.for_loop(c0, c128, c1, t, 1, Type::int(8));
    hb.in_loop(lp, |hb, i, ti| {
        hb.set_loc(Location::file_line_col("test/HIR/err_add.mlir", 10, 5));
        let va = hb.mem_read(args[0], &[i], ti, 0);
        let vb = hb.mem_read(args[1], &[i], ti, 0);
        let sum = hb.add(va, vb);
        let addr = if fixed { hb.delay(i, 1, ti, 0) } else { i };
        hb.set_loc(Location::file_line_col("test/HIR/err_add.mlir", 13, 5));
        hb.mem_write(sum, args[2], &[addr], ti, 1);
        hb.yield_at(ti, 1);
    });
    hb.return_(&[]);
    hb.finish()
}

/// Figure 2a: a multiply-accumulate built around an external pipelined
/// multiplier. With `mult_stages == 3` the adder inputs are desynchronized
/// (the paper's pipeline-imbalance error); with 2 the design is balanced.
pub fn figure2_mac(mult_stages: i64) -> Module {
    let mut hb = HirBuilder::new();
    hb.set_loc(Location::file_line_col("test/HIR/mac.mlir", 1, 1));
    hb.extern_func(
        "mult",
        &[Type::int(32), Type::int(32)],
        &[Type::int(32)],
        &[mult_stages],
    );
    let f = hb.func(
        "mac",
        &[
            ("a", Type::int(32)),
            ("b", Type::int(32)),
            ("c", Type::int(32)),
        ],
        &[mult_stages.max(2)],
    );
    let t = f.time_var(hb.module());
    let args = f.args(hb.module());
    hb.set_loc(Location::file_line_col("test/HIR/mac.mlir", 7, 8));
    let m_val = hb.call("mult", &[args[0], args[1]], t, 0)[0];
    hb.set_loc(Location::file_line_col("test/HIR/mac.mlir", 8, 8));
    let c2 = hb.delay(args[2], 2, t, 0);
    hb.set_loc(Location::file_line_col("test/HIR/mac.mlir", 9, 10));
    let res = hb.add(m_val, c2);
    hb.return_(&[res]);
    hb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figures_reproduce_their_diagnostics() {
        let mut diags = ir::DiagnosticEngine::new();
        assert!(hir_verify::verify_schedule(&figure1_array_add(false), &mut diags).is_err());
        assert!(diags
            .render()
            .contains("mismatched delay (0 vs 1) in address 0"));
        let mut diags = ir::DiagnosticEngine::new();
        assert!(hir_verify::verify_schedule(&figure2_mac(3), &mut diags).is_err());
        assert!(diags
            .render()
            .contains("mismatched delay (2 vs 3) in right operand"));
        let mut diags = ir::DiagnosticEngine::new();
        assert!(hir_verify::verify_schedule(&figure1_array_add(true), &mut diags).is_ok());
        let mut diags = ir::DiagnosticEngine::new();
        assert!(hir_verify::verify_schedule(&figure2_mac(2), &mut diags).is_ok());
    }
}
