//! Histogram (paper Table 5/6): counts value occurrences of an image into
//! a local buffer, then writes the final histogram out. Demonstrates
//! data-dependent memory accesses; the read-modify-write through a 1-cycle
//! block RAM pins the accumulation loop at II=2 in both compilers.

use hir::types::{MemKind, MemrefInfo, Port};
use hir::HirBuilder;
use hls::{KExpr, KStmt, Kernel, LoopPragmas};
use ir::{Location, Module, Type};

/// HIR function name.
pub const FUNC: &str = "histogram";

/// Build the HIR design: `pixels` image elements in `0..bins`.
pub fn hir_histogram(pixels: u64, bins: u64, iv_width: u32) -> Module {
    let mut hb = HirBuilder::new();
    hb.set_loc(Location::file_line_col("kernels/histogram.hir", 1, 1));
    let img = MemrefInfo::packed(&[pixels], Type::int(32), Port::Read, MemKind::BlockRam);
    let out = MemrefInfo::packed(&[bins], Type::int(32), Port::Write, MemKind::BlockRam);
    let f = hb.func(
        FUNC,
        &[("img", img.to_type()), ("hist", out.to_type())],
        &[],
    );
    let t = f.time_var(hb.module());
    let args = f.args(hb.module());
    let (acc_r, acc_w) = hb.alloc_rw(&[bins], Type::int(32), MemKind::BlockRam);
    let (c0, c1) = (hb.const_val(0), hb.const_val(1));
    let cbins = hb.const_val(bins as i64);
    let cpix = hb.const_val(pixels as i64);

    // Phase 1: clear the local accumulator (II=1).
    let zero = hb.typed_const(0, Type::int(32));
    let clear = hb.for_loop(c0, cbins, c1, t, 1, Type::int(iv_width));
    hb.in_loop(clear, |hb, b, ti| {
        hb.mem_write(zero, acc_w, &[b], ti, 0);
        hb.yield_at(ti, 1);
    });
    let t1 = clear.result_time(hb.module());

    // Phase 2: accumulate. Read img[p] (1 cycle), read acc[v] (1 cycle),
    // increment, write back. The RMW through block RAM forces II=2.
    let accum = hb.for_loop(c0, cpix, c1, t1, 1, Type::int(iv_width));
    hb.in_loop(accum, |hb, p, ti| {
        let v = hb.mem_read(args[0], &[p], ti, 0); // valid ti+1
        let cur = hb.mem_read(acc_r, &[v], ti, 1); // valid ti+2
        let one = hb.typed_const(1, Type::int(32));
        let inc = hb.add(cur, one);
        let v2 = hb.delay(v, 1, ti, 1); // address aligned to ti+2
        hb.mem_write(inc, acc_w, &[v2], ti, 2);
        hb.yield_at(ti, 2);
    });
    let t2 = accum.result_time(hb.module());

    // Phase 3: copy the accumulator to the output interface (II=1).
    let copy = hb.for_loop(c0, cbins, c1, t2, 1, Type::int(iv_width));
    hb.in_loop(copy, |hb, b, ti| {
        let v = hb.mem_read(acc_r, &[b], ti, 0);
        let b1 = hb.delay(b, 1, ti, 0);
        hb.mem_write(v, args[1], &[b1], ti, 1);
        hb.yield_at(ti, 1);
    });
    hb.return_(&[]);
    hb.finish()
}

/// The HLS form.
pub fn hls_histogram(pixels: u64, bins: u64, manual_opt: bool) -> Kernel {
    let mut k = Kernel::new(FUNC);
    k.in_array("img", 32, &[pixels])
        .out_array("hist", 32, &[bins]);
    k.local_array("acc", 32, &[bins], &[]);
    if manual_opt {
        k.loop_var_width = hir_opt::signed_width_for(0, pixels.max(bins) as i128);
    }
    let pipeline = LoopPragmas {
        pipeline_ii: Some(1),
        unroll: false,
    };
    k.body = vec![
        KStmt::For {
            var: "z".into(),
            lb: 0,
            ub: bins as i64,
            step: 1,
            pragmas: pipeline,
            body: vec![KStmt::Store {
                array: "acc".into(),
                indices: vec![KExpr::var("z")],
                value: KExpr::c(0, 32),
            }],
        },
        KStmt::For {
            var: "p".into(),
            lb: 0,
            ub: pixels as i64,
            step: 1,
            pragmas: pipeline,
            body: vec![
                KStmt::Assign {
                    var: "v".into(),
                    expr: KExpr::read("img", vec![KExpr::var("p")]),
                },
                KStmt::Store {
                    array: "acc".into(),
                    indices: vec![KExpr::var("v")],
                    value: KExpr::add(KExpr::read("acc", vec![KExpr::var("v")]), KExpr::c(1, 32)),
                },
            ],
        },
        KStmt::For {
            var: "o".into(),
            lb: 0,
            ub: bins as i64,
            step: 1,
            pragmas: pipeline,
            body: vec![KStmt::Store {
                array: "hist".into(),
                indices: vec![KExpr::var("o")],
                value: KExpr::read("acc", vec![KExpr::var("o")]),
            }],
        },
    ];
    k
}

/// Software reference.
pub fn reference(bins: u64, img: &[i128]) -> Vec<i128> {
    let mut out = vec![0i128; bins as usize];
    for &v in img {
        out[v as usize] += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hir::interp::{ArgValue, Interpreter};

    #[test]
    fn hir_matches_reference() {
        let (pixels, bins) = (128, 16);
        let m = hir_histogram(pixels, bins, 32);
        let mut diags = ir::DiagnosticEngine::new();
        hir_verify::verify_schedule(&m, &mut diags)
            .unwrap_or_else(|_| panic!("{}", diags.render()));
        let img: Vec<i128> = (0..pixels as i128)
            .map(|x| (x * x + 3) % bins as i128)
            .collect();
        let r = Interpreter::new(&m)
            .run(
                FUNC,
                &[
                    ArgValue::tensor_from(&img),
                    ArgValue::uninit_tensor(bins as usize),
                ],
            )
            .expect("simulate");
        let out: Vec<i128> = r.tensors[&1].iter().map(|v| v.unwrap()).collect();
        assert_eq!(out, reference(bins, &img));
        // ~bins + 2*pixels + bins cycles.
        assert!(
            r.cycles <= bins + 2 * pixels + bins + 16,
            "latency {}",
            r.cycles
        );
    }

    #[test]
    fn hls_matches_reference() {
        let (pixels, bins) = (64, 8);
        let k = hls_histogram(pixels, bins, false);
        let c = hls::compile(&k, &hls::SchedOptions::default()).expect("compile");
        assert!(
            c.stats.achieved_iis.iter().any(|&ii| ii >= 2),
            "{:?}",
            c.stats.achieved_iis
        );
        let img: Vec<i128> = (0..pixels as i128).map(|x| x % bins as i128).collect();
        let r = Interpreter::new(&c.hir_module)
            .run(
                "hls_histogram",
                &[
                    ArgValue::tensor_from(&img),
                    ArgValue::uninit_tensor(bins as usize),
                ],
            )
            .expect("simulate");
        let out: Vec<i128> = r.tensors[&1].iter().map(|v| v.unwrap()).collect();
        assert_eq!(out, reference(bins, &img));
    }
}
