//! Structured optimization remarks (LLVM `-Rpass` style).
//!
//! Passes record what they *did* ([`RemarkKind::Applied`]) and what they
//! *could not do and why* ([`RemarkKind::Missed`]) as [`Remark`] records:
//! pass name, op location, human-readable message, and typed key/value
//! arguments. Drivers stream them as JSONL (`hirc --remarks=FILE`) or echo
//! a filtered subset as `remark:` diagnostics (`hirc --rpass=REGEX`).
//!
//! ## Recording model
//!
//! Remarks are buffered in a **thread-local** vector, independent of the
//! global span/counter sink: a parallel pass pipeline drains each worker's
//! buffer right after it finishes one function ([`take_thread`]) and merges
//! the per-function batches in module order, so remark output is
//! byte-identical at every thread count (the same scheme the function
//! pipeline uses for diagnostics). Recording is off by default; emission is
//! one relaxed atomic load when disabled.
//!
//! The greedy rewrite driver revisits ops until fixpoint, so a pattern that
//! keeps not matching would emit the same missed remark once per sweep;
//! [`take_thread`] deduplicates identical records while preserving first-seen
//! order.

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

static REMARKS_ENABLED: AtomicBool = AtomicBool::new(false);

thread_local! {
    static BUFFER: RefCell<Vec<Remark>> = const { RefCell::new(Vec::new()) };
}

/// Did the optimization apply, or was it missed?
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RemarkKind {
    /// The pass performed the rewrite it is reporting.
    Applied,
    /// The pass considered a rewrite and explains why it did not happen.
    Missed,
}

impl RemarkKind {
    pub fn as_str(self) -> &'static str {
        match self {
            RemarkKind::Applied => "applied",
            RemarkKind::Missed => "missed",
        }
    }
}

/// A typed remark argument value.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum RemarkValue {
    Int(i128),
    Str(String),
}

impl fmt::Display for RemarkValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RemarkValue::Int(v) => write!(f, "{v}"),
            RemarkValue::Str(s) => write!(f, "{s}"),
        }
    }
}

/// One structured optimization remark.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Remark {
    /// Emitting pass (e.g. `hir-strength-reduce`).
    pub pass: String,
    /// Applied or missed.
    pub kind: RemarkKind,
    /// Rendered source location of the op (`file:line:col`, or
    /// `loc(unknown)` for synthesized IR).
    pub loc: String,
    /// Human-readable one-line explanation.
    pub message: String,
    /// Typed key/value arguments, in emission order.
    pub args: Vec<(String, RemarkValue)>,
}

impl Remark {
    pub fn applied(
        pass: impl Into<String>,
        loc: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Remark {
            pass: pass.into(),
            kind: RemarkKind::Applied,
            loc: loc.into(),
            message: message.into(),
            args: Vec::new(),
        }
    }

    pub fn missed(
        pass: impl Into<String>,
        loc: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Remark {
            kind: RemarkKind::Missed,
            ..Remark::applied(pass, loc, message)
        }
    }

    /// Attach an integer argument.
    pub fn arg_int(mut self, key: impl Into<String>, value: i128) -> Self {
        self.args.push((key.into(), RemarkValue::Int(value)));
        self
    }

    /// Attach a string argument.
    pub fn arg_str(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.args.push((key.into(), RemarkValue::Str(value.into())));
        self
    }

    /// One JSON object (a single JSONL line, without the trailing newline),
    /// parseable by the strict [`crate::json`] parser.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"pass\":\"");
        out.push_str(&crate::json::escape(&self.pass));
        out.push_str("\",\"status\":\"");
        out.push_str(self.kind.as_str());
        out.push_str("\",\"loc\":\"");
        out.push_str(&crate::json::escape(&self.loc));
        out.push_str("\",\"message\":\"");
        out.push_str(&crate::json::escape(&self.message));
        out.push_str("\",\"args\":{");
        for (i, (k, v)) in self.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&crate::json::escape(k));
            out.push_str("\":");
            match v {
                RemarkValue::Int(n) => out.push_str(&n.to_string()),
                RemarkValue::Str(s) => {
                    out.push('"');
                    out.push_str(&crate::json::escape(s));
                    out.push('"');
                }
            }
        }
        out.push_str("}}");
        out
    }
}

impl fmt::Display for Remark {
    /// `<loc>: remark: [<pass>] <message> (k=v, ...)` — the `--rpass` echo
    /// format.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: remark: [{}] {}", self.loc, self.pass, self.message)?;
        if !self.args.is_empty() {
            write!(f, " (")?;
            for (i, (k, v)) in self.args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{k}={v}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// Turn remark recording on or off (off by default; independent of the
/// span/counter sink). Returns the previous state.
pub fn set_remarks_enabled(on: bool) -> bool {
    REMARKS_ENABLED.swap(on, Ordering::SeqCst)
}

/// Whether remark recording is currently on. Passes should guard remark
/// construction with this so disabled runs pay no formatting cost.
pub fn remarks_enabled() -> bool {
    REMARKS_ENABLED.load(Ordering::Relaxed)
}

/// Record a remark into the current thread's buffer (no-op when disabled).
pub fn emit_remark(r: Remark) {
    if !remarks_enabled() {
        return;
    }
    BUFFER.with(|b| b.borrow_mut().push(r));
}

/// Drain the current thread's remark buffer, deduplicating identical
/// records while preserving first-seen order (the greedy rewrite driver
/// revisits ops, so missed remarks repeat verbatim across sweeps).
pub fn take_thread() -> Vec<Remark> {
    let raw = BUFFER.with(|b| std::mem::take(&mut *b.borrow_mut()));
    if raw.is_empty() {
        return raw;
    }
    let mut seen = std::collections::HashSet::with_capacity(raw.len());
    let mut out = Vec::with_capacity(raw.len());
    for r in raw {
        if seen.insert(r.clone()) {
            out.push(r);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_emission_is_dropped() {
        set_remarks_enabled(false);
        emit_remark(Remark::applied("p", "l", "m"));
        assert!(take_thread().is_empty());
    }

    #[test]
    fn take_dedups_preserving_order() {
        set_remarks_enabled(true);
        let a = Remark::applied("p", "f:1:1", "did it").arg_int("n", 2);
        let b = Remark::missed("p", "f:2:1", "could not");
        emit_remark(a.clone());
        emit_remark(b.clone());
        emit_remark(a.clone()); // fixpoint revisit
        let got = take_thread();
        set_remarks_enabled(false);
        assert_eq!(got, vec![a, b]);
        assert!(take_thread().is_empty(), "buffer drained");
    }

    #[test]
    fn json_roundtrips_through_strict_parser() {
        let r = Remark::missed("hir-strength-reduce", "k.mlir:3:7", "stride unknown")
            .arg_int("set_bits", 5)
            .arg_str("why", "needs \"const\" operand");
        let line = r.to_json();
        let v = crate::json::parse(&line).expect("strict parse");
        let obj = v.as_object().unwrap();
        assert_eq!(
            obj.get("pass").unwrap().as_str(),
            Some("hir-strength-reduce")
        );
        assert_eq!(obj.get("status").unwrap().as_str(), Some("missed"));
        let args = obj.get("args").unwrap().as_object().unwrap();
        assert_eq!(args.get("set_bits").unwrap().as_f64(), Some(5.0));
    }

    #[test]
    fn display_is_the_rpass_echo_format() {
        let r = Remark::applied("hir-cse", "a.mlir:4:3", "merged duplicate").arg_int("uses", 2);
        assert_eq!(
            r.to_string(),
            "a.mlir:4:3: remark: [hir-cse] merged duplicate (uses=2)"
        );
    }
}
