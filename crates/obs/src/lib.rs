//! # `obs` — toolchain-wide observability
//!
//! A zero-external-dependency structured tracing/metrics facade shared by
//! every crate in the HIR toolchain:
//!
//! * **spans** — RAII-timed scopes ([`span`] / [`span_in`]) recorded with
//!   nanosecond start/duration against a process-global epoch, organized
//!   into named *tracks* (one per pipeline stage); nested spans inherit the
//!   enclosing span's track, so a pass timed inside the `opt` stage lands on
//!   the `opt` track without threading context through the pass manager;
//! * **counters** — monotonic, `(scope, name)`-keyed integers
//!   ([`counter_add`]) for quantities like folds applied, simulated cycles,
//!   or memory-port events;
//! * **stats** — per-scope key/value annotations ([`set_stat`]) for
//!   non-monotonic facts (final op counts, configuration echoes);
//! * a **thread-safe global sink** behind a mutex, with snapshot accessors,
//!   an aligned [`stats_table`] renderer, and a [`chrome_trace`] exporter
//!   producing trace-event JSON loadable in `chrome://tracing` / Perfetto.
//!
//! Recording is **off by default** (so library consumers pay one relaxed
//! atomic load per call site); drivers that want measurements call
//! [`set_enabled`]`(true)` and usually [`reset`] first. The paper's Table 6
//! experiment (code-generation time vs. the HLS baseline) and every
//! subsequent performance PR report against the numbers this crate emits.

pub mod hist;
pub mod json;
pub mod remark;
pub mod rex;
pub mod trace;

pub use hist::Histogram;

pub use remark::{
    emit_remark, remarks_enabled, set_remarks_enabled, take_thread as take_thread_remarks, Remark,
    RemarkKind, RemarkValue,
};

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{LazyLock, Mutex};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: LazyLock<Instant> = LazyLock::new(Instant::now);
static SINK: LazyLock<Mutex<Sink>> = LazyLock::new(|| Mutex::new(Sink::default()));

thread_local! {
    /// Stack of (track, depth) for the spans currently open on this thread.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// One completed span, as stored in the sink.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Track (pipeline stage) this span belongs to.
    pub track: String,
    /// Span name (e.g. `pass canonicalize`).
    pub name: String,
    /// Start time in nanoseconds since the process epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Nesting depth at record time (0 = top level on its thread).
    pub depth: u32,
    /// Free-form key/value annotations (shown in the trace viewer).
    pub args: Vec<(String, String)>,
    /// Explicit Chrome-trace `(pid, tid)` for this span's track, set by
    /// worker threads so each worker renders as its own named track. `None`
    /// keeps the default one-track-per-stage numbering.
    pub pid_tid: Option<(u32, u32)>,
}

/// One counter, as returned by [`counters`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterRecord {
    pub scope: String,
    pub name: String,
    pub value: u64,
}

#[derive(Default)]
struct Sink {
    spans: Vec<SpanRecord>,
    counters: BTreeMap<(String, String), u64>,
    stats: BTreeMap<(String, String), String>,
}

/// Turn recording on or off (off by default). Returns the previous state.
pub fn set_enabled(on: bool) -> bool {
    ENABLED.swap(on, Ordering::SeqCst)
}

/// Whether the sink is currently recording.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clear all recorded spans, counters, and stats (the enabled flag and the
/// time epoch are untouched).
pub fn reset() {
    let mut sink = SINK.lock().unwrap();
    sink.spans.clear();
    sink.counters.clear();
    sink.stats.clear();
}

/// Nanoseconds since the process-global observability epoch.
pub fn now_ns() -> u64 {
    EPOCH.elapsed().as_nanos() as u64
}

/// RAII guard: records a span from construction to drop.
///
/// A disabled sink yields inert guards, so `span(..)` is safe to leave in
/// hot paths.
#[must_use = "a span measures the scope it is bound to; binding it to _ drops it immediately"]
pub struct SpanGuard {
    track: String,
    name: String,
    start_ns: u64,
    depth: u32,
    args: Vec<(String, String)>,
    pid_tid: Option<(u32, u32)>,
    live: bool,
}

impl SpanGuard {
    fn inert() -> Self {
        SpanGuard {
            track: String::new(),
            name: String::new(),
            start_ns: 0,
            depth: 0,
            args: Vec::new(),
            pid_tid: None,
            live: false,
        }
    }

    /// Attach a key/value annotation shown in the trace viewer.
    pub fn arg(&mut self, key: impl Into<String>, value: impl ToString) -> &mut Self {
        if self.live {
            self.args.push((key.into(), value.to_string()));
        }
        self
    }

    /// Pin this span's track to an explicit Chrome-trace `(pid, tid)`.
    /// [`trace::chrome_trace`] gives the whole track that id (taking it from
    /// the first pinned span it sees), so a worker pool can render one named
    /// track per worker instead of the default per-stage numbering.
    pub fn pid_tid(&mut self, pid: u32, tid: u32) -> &mut Self {
        if self.live {
            self.pid_tid = Some((pid, tid));
        }
        self
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        let end = now_ns();
        SPAN_STACK.with(|s| {
            s.borrow_mut().pop();
        });
        let record = SpanRecord {
            track: std::mem::take(&mut self.track),
            name: std::mem::take(&mut self.name),
            start_ns: self.start_ns,
            dur_ns: end.saturating_sub(self.start_ns),
            depth: self.depth,
            args: std::mem::take(&mut self.args),
            pid_tid: self.pid_tid,
        };
        if let Ok(mut sink) = SINK.lock() {
            sink.spans.push(record);
        }
    }
}

/// Open a span on the current track (the innermost enclosing span's track,
/// or `"main"` at top level).
pub fn span(name: impl Into<String>) -> SpanGuard {
    let track = SPAN_STACK.with(|s| s.borrow().last().cloned().unwrap_or_else(|| "main".into()));
    span_in(track, name)
}

/// Open a span on an explicit track (use one track per pipeline stage).
pub fn span_in(track: impl Into<String>, name: impl Into<String>) -> SpanGuard {
    if !enabled() {
        return SpanGuard::inert();
    }
    let track = track.into();
    let depth = SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        stack.push(track.clone());
        (stack.len() - 1) as u32
    });
    SpanGuard {
        track,
        name: name.into(),
        start_ns: now_ns(),
        depth,
        args: Vec::new(),
        pid_tid: None,
        live: true,
    }
}

/// Add `delta` to the monotonic counter `scope.name`.
pub fn counter_add(scope: &str, name: &str, delta: u64) {
    if !enabled() || delta == 0 {
        return;
    }
    let mut sink = SINK.lock().unwrap();
    *sink
        .counters
        .entry((scope.to_string(), name.to_string()))
        .or_insert(0) += delta;
}

/// Current value of counter `scope.name` (0 when never touched).
pub fn counter_value(scope: &str, name: &str) -> u64 {
    let sink = SINK.lock().unwrap();
    sink.counters
        .get(&(scope.to_string(), name.to_string()))
        .copied()
        .unwrap_or(0)
}

/// Record (or overwrite) the per-scope key/value stat `scope.key`.
pub fn set_stat(scope: &str, key: &str, value: impl ToString) {
    if !enabled() {
        return;
    }
    let mut sink = SINK.lock().unwrap();
    sink.stats
        .insert((scope.to_string(), key.to_string()), value.to_string());
}

/// Snapshot of all counters, sorted by (scope, name).
pub fn counters() -> Vec<CounterRecord> {
    let sink = SINK.lock().unwrap();
    sink.counters
        .iter()
        .map(|((scope, name), &value)| CounterRecord {
            scope: scope.clone(),
            name: name.clone(),
            value,
        })
        .collect()
}

/// Snapshot of all per-scope stats, sorted by (scope, key).
pub fn stats() -> Vec<(String, String, String)> {
    let sink = SINK.lock().unwrap();
    sink.stats
        .iter()
        .map(|((s, k), v)| (s.clone(), k.clone(), v.clone()))
        .collect()
}

/// Snapshot of all completed spans, in completion order.
pub fn spans() -> Vec<SpanRecord> {
    SINK.lock().unwrap().spans.clone()
}

/// Human-readable duration (`950ns`, `12.3µs`, `4.56ms`, `1.23s`).
pub fn format_duration_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

/// Render every counter (and per-scope stat) as an aligned summary table.
pub fn stats_table() -> String {
    let counters = counters();
    let stats = stats();
    let mut out = String::new();
    if counters.is_empty() && stats.is_empty() {
        out.push_str("(no observability data recorded)\n");
        return out;
    }
    if !counters.is_empty() {
        let sw = counters
            .iter()
            .map(|c| c.scope.len())
            .max()
            .unwrap_or(5)
            .max("scope".len());
        let nw = counters
            .iter()
            .map(|c| c.name.len())
            .max()
            .unwrap_or(7)
            .max("counter".len());
        let vw = counters
            .iter()
            .map(|c| c.value.to_string().len())
            .max()
            .unwrap_or(5)
            .max("value".len());
        out.push_str(&format!(
            "{:<sw$}  {:<nw$}  {:>vw$}\n",
            "scope", "counter", "value"
        ));
        out.push_str(&format!("{}\n", "-".repeat(sw + nw + vw + 4)));
        for c in &counters {
            out.push_str(&format!(
                "{:<sw$}  {:<nw$}  {:>vw$}\n",
                c.scope, c.name, c.value
            ));
        }
    }
    if !stats.is_empty() {
        if !counters.is_empty() {
            out.push('\n');
        }
        let sw = stats
            .iter()
            .map(|(s, _, _)| s.len())
            .max()
            .unwrap_or(5)
            .max("scope".len());
        let kw = stats
            .iter()
            .map(|(_, k, _)| k.len())
            .max()
            .unwrap_or(4)
            .max("stat".len());
        out.push_str(&format!("{:<sw$}  {:<kw$}  value\n", "scope", "stat"));
        out.push_str(&format!("{}\n", "-".repeat(sw + kw + 9)));
        for (s, k, v) in &stats {
            out.push_str(&format!("{s:<sw$}  {k:<kw$}  {v}\n"));
        }
    }
    out
}

/// Serialize all recorded spans as Chrome trace-event JSON (see [`trace`]).
pub fn chrome_trace() -> String {
    trace::chrome_trace(&spans())
}

/// Machine-readable counterpart of [`stats_table`]: every counter and stat
/// as one JSON object, keys sorted, parseable by the strict [`json`] parser.
///
/// ```json
/// {"counters":{"codegen.modules":3},"stats":{"ir.ops":"42"}}
/// ```
pub fn stats_json() -> String {
    let mut out = String::from("{\"counters\":{");
    for (i, c) in counters().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&json::escape(&format!("{}.{}", c.scope, c.name)));
        out.push_str("\":");
        out.push_str(&c.value.to_string());
    }
    out.push_str("},\"stats\":{");
    for (i, (s, k, v)) in stats().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&json::escape(&format!("{s}.{k}")));
        out.push_str("\":\"");
        out.push_str(&json::escape(v));
        out.push('"');
    }
    out.push_str("}}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sink and enabled flag are global: serialize tests on one lock and
    /// use unique scope names so asserts only see their own keys.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn with_recording<R>(f: impl FnOnce() -> R) -> R {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        f()
    }

    #[test]
    fn counters_accumulate_and_snapshot() {
        with_recording(|| {
            counter_add("t_counters", "alpha", 2);
            counter_add("t_counters", "alpha", 3);
            counter_add("t_counters", "beta", 1);
            assert_eq!(counter_value("t_counters", "alpha"), 5);
            assert_eq!(counter_value("t_counters", "beta"), 1);
            assert_eq!(counter_value("t_counters", "never"), 0);
            let mine: Vec<_> = counters()
                .into_iter()
                .filter(|c| c.scope == "t_counters")
                .collect();
            assert_eq!(mine.len(), 2);
            assert_eq!(mine[0].name, "alpha"); // sorted
        });
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(false);
        counter_add("t_disabled", "x", 7);
        {
            let _s = span_in("t_disabled", "ignored");
        }
        set_enabled(true);
        assert_eq!(counter_value("t_disabled", "x"), 0);
        assert!(spans().iter().all(|s| s.track != "t_disabled"));
    }

    #[test]
    fn spans_nest_and_inherit_track() {
        with_recording(|| {
            {
                let _outer = span_in("t_nest", "outer");
                let _inner = span("inner"); // inherits "t_nest"
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            let mine: Vec<_> = spans()
                .into_iter()
                .filter(|s| s.track == "t_nest")
                .collect();
            assert_eq!(mine.len(), 2, "{mine:?}");
            // Inner completes first.
            let inner = &mine[0];
            let outer = &mine[1];
            assert_eq!(inner.name, "inner");
            assert_eq!(inner.track, "t_nest");
            assert_eq!(inner.depth, outer.depth + 1);
            assert!(outer.dur_ns >= inner.dur_ns);
            assert!(inner.start_ns >= outer.start_ns);
            assert!(
                inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns,
                "inner span must be contained in outer"
            );
        });
    }

    #[test]
    fn span_args_are_recorded() {
        with_recording(|| {
            {
                let mut s = span_in("t_args", "with-args");
                s.arg("ops", 42).arg("result", "changed");
            }
            let mine: Vec<_> = spans()
                .into_iter()
                .filter(|s| s.track == "t_args")
                .collect();
            assert_eq!(mine[0].args.len(), 2);
            assert_eq!(mine[0].args[0], ("ops".into(), "42".into()));
        });
    }

    #[test]
    fn stats_table_is_aligned() {
        with_recording(|| {
            counter_add("t_table_scope_long", "counter_name", 12345);
            counter_add("t", "c", 1);
            set_stat("t_table_scope_long", "note", "hello");
            let table = stats_table();
            assert!(table.contains("t_table_scope_long"));
            // Every counter row has the value right-aligned in one column:
            // find the two rows and check the value column end-aligns.
            let rows: Vec<&str> = table
                .lines()
                .filter(|l| {
                    l.starts_with("t_table_scope_long  counter_name")
                        || (l.starts_with("t ") && l.contains("  c  "))
                })
                .collect();
            assert_eq!(rows.len(), 2, "{table}");
            assert_eq!(rows[0].len(), rows[1].len(), "rows end-aligned:\n{table}");
            assert!(table.contains("hello"));
        });
    }

    #[test]
    fn format_duration_scales() {
        assert_eq!(format_duration_ns(950), "950ns");
        assert_eq!(format_duration_ns(12_300), "12.3µs");
        assert_eq!(format_duration_ns(4_560_000), "4.56ms");
        assert_eq!(format_duration_ns(1_230_000_000), "1.23s");
    }
}
