//! # Deterministic log2-bucketed histograms
//!
//! A fixed-shape histogram for latency-/size-like `u64` samples, designed
//! for the toolchain's self-profiling planes (scheduler telemetry, SAT
//! solver stats). Three properties drive the design:
//!
//! * **Deterministic** — bucket boundaries are powers of two, fixed at
//!   compile time; recording the same multiset of samples always yields the
//!   same state, so serialized output is byte-identical across runs.
//! * **Mergeable** — [`Histogram::merge`] is commutative and associative
//!   (sums, mins, maxes), so per-worker histograms merged in module/worker
//!   order produce byte-identical output at any `--threads` value.
//! * **Strict JSON** — [`Histogram::to_json`] emits a single-line object
//!   that round-trips through [`crate::json::parse`]; only non-empty
//!   buckets are serialized.
//!
//! Bucketing: index 0 holds the value `0` exactly; index `i >= 1` covers
//! the inclusive range `[2^(i-1), 2^i - 1]`. Every `u64` maps to exactly
//! one of the 65 buckets.

/// Number of buckets: one for zero plus one per bit position.
pub const NUM_BUCKETS: usize = 65;

/// A mergeable log2-bucketed histogram of `u64` samples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; NUM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; NUM_BUCKETS],
        }
    }

    /// Bucket index for a value: 0 for 0, else `64 - leading_zeros`.
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Inclusive `[lo, hi]` range covered by bucket `i`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        if i == 0 {
            (0, 0)
        } else if i >= 64 {
            (1u64 << 63, u64::MAX)
        } else {
            (1u64 << (i - 1), (1u64 << i) - 1)
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` identical samples (one bucket update).
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.count += n;
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        self.buckets[Self::bucket_index(v)] += n;
    }

    /// Fold another histogram into this one. Commutative and associative,
    /// so any merge order over the same per-worker parts yields identical
    /// state — merge in module/worker order for byte-identical output.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += *o;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean rounded to the nearest integer (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum
            .saturating_add(self.count / 2)
            .checked_div(self.count)
            .unwrap_or(0)
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Count in bucket `i`.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Strict single-line JSON: `{"count":..,"sum":..,"min":..,"max":..,
    /// "mean":..,"buckets":[{"lo":..,"hi":..,"count":..},..]}` with only
    /// non-empty buckets listed (ascending).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push_str(&format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"buckets\":[",
            self.count,
            self.sum,
            self.min(),
            self.max,
            self.mean()
        ));
        let mut first = true;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if !first {
                s.push(',');
            }
            first = false;
            let (lo, hi) = Self::bucket_bounds(i);
            s.push_str(&format!("{{\"lo\":{lo},\"hi\":{hi},\"count\":{c}}}"));
        }
        s.push_str("]}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_lands_in_its_own_bucket() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_bounds(0), (0, 0));
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.bucket_count(0), 1);
        assert_eq!((h.count(), h.sum(), h.min(), h.max()), (1, 0, 0, 0));
    }

    #[test]
    fn power_of_two_edges() {
        // 2^k starts bucket k+1; 2^k - 1 closes bucket k.
        for k in 1..64usize {
            let v = 1u64 << k;
            assert_eq!(Histogram::bucket_index(v), k + 1, "2^{k}");
            assert_eq!(Histogram::bucket_index(v - 1), k, "2^{k}-1");
            let (lo, hi) = Histogram::bucket_bounds(k + 1);
            assert!(lo <= v && v <= hi);
        }
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_bounds(1), (1, 1));
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_bounds(64), (1u64 << 63, u64::MAX));
    }

    #[test]
    fn every_value_maps_inside_its_bucket_bounds() {
        for v in [
            0u64,
            1,
            2,
            3,
            4,
            5,
            7,
            8,
            9,
            1023,
            1024,
            1025,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let i = Histogram::bucket_index(v);
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert!(
                lo <= v && v <= hi,
                "value {v} outside bucket {i} [{lo},{hi}]"
            );
        }
    }

    #[test]
    fn merge_is_order_independent() {
        // Three worker-local parts merged in two different orders must be
        // byte-identical once serialized.
        let mk = |vals: &[u64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let parts = [
            mk(&[0, 1, 5, 1 << 20]),
            mk(&[3, 3, 3, u64::MAX]),
            mk(&[]),
            mk(&[7, 8, 1 << 33]),
        ];
        let mut fwd = Histogram::new();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = Histogram::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd.to_json(), rev.to_json());
        // Merge equals recording everything into one histogram.
        let mut flat = Histogram::new();
        for &v in &[0u64, 1, 5, 1 << 20, 3, 3, 3, u64::MAX, 7, 8, 1 << 33] {
            flat.record(v);
        }
        assert_eq!(fwd, flat);
    }

    #[test]
    fn empty_histogram_serializes_cleanly() {
        let h = Histogram::new();
        assert_eq!(
            h.to_json(),
            "{\"count\":0,\"sum\":0,\"min\":0,\"max\":0,\"mean\":0,\"buckets\":[]}"
        );
        crate::json::parse(&h.to_json()).expect("strict JSON");
    }

    #[test]
    fn json_round_trips_and_lists_only_nonempty_buckets() {
        let mut h = Histogram::new();
        h.record_n(0, 2);
        h.record(1);
        h.record(6); // bucket [4,7]
        h.record(7);
        let v = crate::json::parse(&h.to_json()).expect("strict JSON");
        let obj = match v {
            crate::json::Value::Object(o) => o,
            _ => panic!("expected object"),
        };
        let get = |k: &str| {
            obj.iter()
                .find(|(n, _)| n.as_str() == k)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| panic!("{k}"))
        };
        assert_eq!(get("count"), crate::json::Value::Number(5.0));
        assert_eq!(get("sum"), crate::json::Value::Number(14.0));
        match get("buckets") {
            crate::json::Value::Array(b) => assert_eq!(b.len(), 3),
            _ => panic!("buckets not an array"),
        }
    }

    #[test]
    fn saturating_sum_does_not_wrap() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
    }
}
