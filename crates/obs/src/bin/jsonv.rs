//! `jsonv` — strict JSON artifact validator for CI.
//!
//! Validates that each file argument parses with the same strict
//! [`obs::json`] parser the toolchain's own tests use, so the JSON the
//! compiler publishes (`--remarks`, `--schedule-report`,
//! `--resource-report`, `--stats`, `--profile`) is held to the grammar it
//! claims. `--jsonl` switches to line-delimited mode (one object per line)
//! for the files that follow; `--json` switches back.
//!
//! Exit codes: 0 all files valid, 1 any file invalid or unreadable,
//! 2 usage error (no files given).

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut jsonl = false;
    let mut failed = false;
    let mut checked = 0usize;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--jsonl" => {
                jsonl = true;
                continue;
            }
            "--json" => {
                jsonl = false;
                continue;
            }
            _ => {}
        }
        checked += 1;
        let text = match std::fs::read_to_string(&arg) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("jsonv: {arg}: {e}");
                failed = true;
                continue;
            }
        };
        if jsonl {
            let mut bad = 0usize;
            for (i, line) in text.lines().enumerate() {
                if let Err(e) = obs::json::parse(line) {
                    eprintln!("jsonv: {arg}:{}: {e}", i + 1);
                    bad += 1;
                }
            }
            if bad > 0 {
                failed = true;
            } else {
                println!("jsonv: {arg}: ok ({} JSONL records)", text.lines().count());
            }
        } else {
            match obs::json::parse(&text) {
                Ok(_) => println!("jsonv: {arg}: ok"),
                Err(e) => {
                    eprintln!("jsonv: {arg}: {e}");
                    failed = true;
                }
            }
        }
    }
    if checked == 0 {
        eprintln!("usage: jsonv [--json|--jsonl] FILE...");
        return ExitCode::from(2);
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
