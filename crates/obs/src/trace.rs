//! Chrome trace-event serialization.
//!
//! Emits the JSON Object Format of the Trace Event spec: a `traceEvents`
//! array of complete (`"ph":"X"`) events plus `thread_name` metadata, one
//! *thread* (track) per pipeline stage, so `chrome://tracing` and Perfetto
//! render each stage as its own row with passes nested inside it by time.

use crate::json::escape;
use crate::SpanRecord;

/// Serialize spans as a Chrome trace-event JSON document.
///
/// By default tracks are assigned `pid` 1 and thread ids in order of first
/// appearance. A track whose spans carry an explicit
/// [`SpanRecord::pid_tid`] (see [`crate::SpanGuard::pid_tid`]) uses that id
/// instead — the first pinned span seen wins for the whole track — which is
/// how pass-pipeline worker threads each get their own named row. Every
/// track gets a `thread_name` metadata record so viewers show stage/worker
/// names instead of numeric tids. Timestamps are microseconds with
/// nanosecond precision kept in the fraction.
pub fn chrome_trace(spans: &[SpanRecord]) -> String {
    let mut tracks: Vec<&str> = Vec::new();
    for s in spans {
        if !tracks.iter().any(|t| *t == s.track) {
            tracks.push(&s.track);
        }
    }
    let ids: Vec<(u32, u32)> = tracks
        .iter()
        .enumerate()
        .map(|(i, t)| {
            spans
                .iter()
                .find_map(|s| (s.track == **t).then_some(s.pid_tid).flatten())
                .unwrap_or((1, i as u32 + 1))
        })
        .collect();
    let id_of = |track: &str| ids[tracks.iter().position(|t| *t == track).unwrap()];

    let mut events: Vec<String> = Vec::new();
    for (t, (pid, tid)) in tracks.iter().zip(&ids) {
        events.push(format!(
            r#"{{"name":"thread_name","ph":"M","pid":{pid},"tid":{tid},"args":{{"name":"{}"}}}}"#,
            escape(t)
        ));
    }

    // Sort by start time so viewers that expect ordered input are happy.
    let mut ordered: Vec<&SpanRecord> = spans.iter().collect();
    ordered.sort_by_key(|s| (s.start_ns, std::cmp::Reverse(s.dur_ns)));
    for s in ordered {
        let mut args = String::new();
        for (k, v) in &s.args {
            if !args.is_empty() {
                args.push(',');
            }
            args.push_str(&format!(r#""{}":"{}""#, escape(k), escape(v)));
        }
        let (pid, tid) = id_of(&s.track);
        events.push(format!(
            r#"{{"name":"{}","cat":"{}","ph":"X","ts":{:.3},"dur":{:.3},"pid":{pid},"tid":{tid},"args":{{{}}}}}"#,
            escape(&s.name),
            escape(&s.track),
            s.start_ns as f64 / 1e3,
            s.dur_ns as f64 / 1e3,
            args
        ));
    }

    format!(
        "{{\"traceEvents\":[\n{}\n],\"displayTimeUnit\":\"ms\"}}\n",
        events.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn record(track: &str, name: &str, start_ns: u64, dur_ns: u64) -> SpanRecord {
        SpanRecord {
            track: track.into(),
            name: name.into(),
            start_ns,
            dur_ns,
            depth: 0,
            args: vec![("k".into(), "v\"1".into())],
            pid_tid: None,
        }
    }

    #[test]
    fn trace_parses_and_has_one_track_per_stage() {
        let spans = vec![
            record("parse", "parse file", 0, 1_000),
            record("opt", "pass cse", 2_000, 500),
            record("opt", "pass fold", 2_600, 400),
        ];
        let text = chrome_trace(&spans);
        let doc = json::parse(&text).expect("valid JSON");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        // 2 thread_name metadata + 3 spans.
        assert_eq!(events.len(), 5);
        let metas: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
            .collect();
        assert_eq!(metas.len(), 2);
        let span_events: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .collect();
        assert_eq!(span_events.len(), 3);
        // Both opt spans share a tid, distinct from parse's.
        let tid_of = |name: &str| {
            span_events
                .iter()
                .find(|e| e.get("name").unwrap().as_str() == Some(name))
                .unwrap()
                .get("tid")
                .unwrap()
                .as_f64()
                .unwrap()
        };
        assert_eq!(tid_of("pass cse"), tid_of("pass fold"));
        assert_ne!(tid_of("parse file"), tid_of("pass cse"));
        // Microsecond timestamps preserve sub-µs precision.
        let cse = span_events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("pass cse"))
            .unwrap();
        assert_eq!(cse.get("ts").unwrap().as_f64(), Some(2.0));
        assert_eq!(cse.get("dur").unwrap().as_f64(), Some(0.5));
    }

    #[test]
    fn empty_trace_is_valid_json() {
        let doc = json::parse(&chrome_trace(&[])).unwrap();
        assert_eq!(doc.get("traceEvents").unwrap().as_array().unwrap().len(), 0);
    }

    #[test]
    fn default_tracks_keep_sequential_tids() {
        // Regression: with no explicit ids the old one-track-per-stage
        // numbering (pid 1, tids 1..) must be preserved exactly.
        let spans = vec![
            record("parse", "parse file", 0, 1_000),
            record("opt", "pass cse", 2_000, 500),
        ];
        let text = chrome_trace(&spans);
        let doc = json::parse(&text).expect("valid JSON");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        for e in events {
            assert_eq!(e.get("pid").unwrap().as_f64(), Some(1.0));
        }
        let tid_of = |name: &str| {
            events
                .iter()
                .find(|e| {
                    e.get("ph").and_then(|p| p.as_str()) == Some("X")
                        && e.get("name").unwrap().as_str() == Some(name)
                })
                .unwrap()
                .get("tid")
                .unwrap()
                .as_f64()
                .unwrap()
        };
        assert_eq!(tid_of("parse file"), 1.0);
        assert_eq!(tid_of("pass cse"), 2.0);
    }

    #[test]
    fn explicit_pid_tid_pins_the_whole_track() {
        let mut w0 = record("worker 0", "@gemm pipeline", 0, 900);
        w0.pid_tid = Some((1, 1001));
        // A nested pass span on the same track without an explicit id still
        // inherits the worker's pinned tid.
        let inner = record("worker 0", "pass hir-cse", 100, 200);
        let auto = record("opt", "pass fold", 2_000, 100);
        let text = chrome_trace(&[w0, inner, auto]);
        let doc = json::parse(&text).expect("valid JSON");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let span_events: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .collect();
        let tid_of = |name: &str| {
            span_events
                .iter()
                .find(|e| e.get("name").unwrap().as_str() == Some(name))
                .unwrap()
                .get("tid")
                .unwrap()
                .as_f64()
                .unwrap()
        };
        assert_eq!(tid_of("@gemm pipeline"), 1001.0);
        assert_eq!(tid_of("pass hir-cse"), 1001.0);
        assert_eq!(tid_of("pass fold"), 2.0, "auto track keeps its position");
        // The worker track's thread_name metadata carries the pinned tid.
        let meta = events
            .iter()
            .find(|e| {
                e.get("ph").and_then(|p| p.as_str()) == Some("M")
                    && e.get("args").and_then(|a| a.get("name")).unwrap().as_str()
                        == Some("worker 0")
            })
            .unwrap();
        assert_eq!(meta.get("tid").unwrap().as_f64(), Some(1001.0));
    }
}
