//! Chrome trace-event serialization.
//!
//! Emits the JSON Object Format of the Trace Event spec: a `traceEvents`
//! array of complete (`"ph":"X"`) events plus `thread_name` metadata, one
//! *thread* (track) per pipeline stage, so `chrome://tracing` and Perfetto
//! render each stage as its own row with passes nested inside it by time.
//! Counter tracks (`"ph":"C"`) can ride along via
//! [`chrome_trace_with_counters`], rendering as stacked area charts.

use crate::json::escape;
use crate::SpanRecord;

/// One sample on a Chrome counter track (`"ph":"C"`): the values of one or
/// more named series at a point in time. Consecutive points on the same
/// track draw as a step chart in the viewer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterPoint {
    /// Counter track name (the `name` of the `"C"` event).
    pub track: String,
    /// Sample time in nanoseconds since the process epoch.
    pub ts_ns: u64,
    /// `(series, value)` pairs plotted together on this track.
    pub series: Vec<(String, u64)>,
    /// Explicit `(pid, tid)`; `None` places the counter on pid 1, tid 0
    /// (counters are process-scoped in the viewer, the tid is cosmetic).
    pub pid_tid: Option<(u32, u32)>,
}

/// Serialize spans as a Chrome trace-event JSON document.
///
/// By default tracks are assigned `pid` 1 and thread ids in order of first
/// appearance. A track whose spans carry an explicit
/// [`SpanRecord::pid_tid`] (see [`crate::SpanGuard::pid_tid`]) uses that id
/// instead — the first pinned span seen wins for the whole track — which is
/// how pass-pipeline worker threads each get their own named row. Each
/// distinct `(pid, tid)` gets exactly one `thread_name` metadata record (the
/// first track claiming the id names it), so viewers show stage/worker
/// names instead of numeric tids without duplicate metadata when several
/// tracks share an id. Timestamps are microseconds with nanosecond
/// precision kept in the fraction.
pub fn chrome_trace(spans: &[SpanRecord]) -> String {
    chrome_trace_with_counters(spans, &[])
}

/// [`chrome_trace`] plus counter (`"ph":"C"`) events appended after the
/// span events, sorted by timestamp then input order. Series values are
/// emitted in the order given on each [`CounterPoint`].
pub fn chrome_trace_with_counters(spans: &[SpanRecord], counters: &[CounterPoint]) -> String {
    let mut tracks: Vec<&str> = Vec::new();
    for s in spans {
        if !tracks.iter().any(|t| *t == s.track) {
            tracks.push(&s.track);
        }
    }
    let ids: Vec<(u32, u32)> = tracks
        .iter()
        .enumerate()
        .map(|(i, t)| {
            spans
                .iter()
                .find_map(|s| (s.track == **t).then_some(s.pid_tid).flatten())
                .unwrap_or((1, i as u32 + 1))
        })
        .collect();
    let id_of = |track: &str| ids[tracks.iter().position(|t| *t == track).unwrap()];

    let mut events: Vec<String> = Vec::new();
    // One thread_name record per (pid, tid): the first track claiming an id
    // names it; later tracks resolving to the same id emit no duplicate.
    let mut named: Vec<(u32, u32)> = Vec::new();
    for (t, &(pid, tid)) in tracks.iter().zip(&ids) {
        if named.contains(&(pid, tid)) {
            continue;
        }
        named.push((pid, tid));
        events.push(format!(
            r#"{{"name":"thread_name","ph":"M","pid":{pid},"tid":{tid},"args":{{"name":"{}"}}}}"#,
            escape(t)
        ));
    }

    // Sort by start time so viewers that expect ordered input are happy.
    let mut ordered: Vec<&SpanRecord> = spans.iter().collect();
    ordered.sort_by_key(|s| (s.start_ns, std::cmp::Reverse(s.dur_ns)));
    for s in ordered {
        let mut args = String::new();
        for (k, v) in &s.args {
            if !args.is_empty() {
                args.push(',');
            }
            args.push_str(&format!(r#""{}":"{}""#, escape(k), escape(v)));
        }
        let (pid, tid) = id_of(&s.track);
        events.push(format!(
            r#"{{"name":"{}","cat":"{}","ph":"X","ts":{:.3},"dur":{:.3},"pid":{pid},"tid":{tid},"args":{{{}}}}}"#,
            escape(&s.name),
            escape(&s.track),
            s.start_ns as f64 / 1e3,
            s.dur_ns as f64 / 1e3,
            args
        ));
    }

    let mut ordered_counters: Vec<&CounterPoint> = counters.iter().collect();
    ordered_counters.sort_by_key(|c| c.ts_ns);
    for c in ordered_counters {
        let (pid, tid) = c.pid_tid.unwrap_or((1, 0));
        let mut args = String::new();
        for (k, v) in &c.series {
            if !args.is_empty() {
                args.push(',');
            }
            args.push_str(&format!(r#""{}":{v}"#, escape(k)));
        }
        events.push(format!(
            r#"{{"name":"{}","ph":"C","ts":{:.3},"pid":{pid},"tid":{tid},"args":{{{}}}}}"#,
            escape(&c.track),
            c.ts_ns as f64 / 1e3,
            args
        ));
    }

    format!(
        "{{\"traceEvents\":[\n{}\n],\"displayTimeUnit\":\"ms\"}}\n",
        events.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn record(track: &str, name: &str, start_ns: u64, dur_ns: u64) -> SpanRecord {
        SpanRecord {
            track: track.into(),
            name: name.into(),
            start_ns,
            dur_ns,
            depth: 0,
            args: vec![("k".into(), "v\"1".into())],
            pid_tid: None,
        }
    }

    #[test]
    fn trace_parses_and_has_one_track_per_stage() {
        let spans = vec![
            record("parse", "parse file", 0, 1_000),
            record("opt", "pass cse", 2_000, 500),
            record("opt", "pass fold", 2_600, 400),
        ];
        let text = chrome_trace(&spans);
        let doc = json::parse(&text).expect("valid JSON");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        // 2 thread_name metadata + 3 spans.
        assert_eq!(events.len(), 5);
        let metas: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
            .collect();
        assert_eq!(metas.len(), 2);
        let span_events: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .collect();
        assert_eq!(span_events.len(), 3);
        // Both opt spans share a tid, distinct from parse's.
        let tid_of = |name: &str| {
            span_events
                .iter()
                .find(|e| e.get("name").unwrap().as_str() == Some(name))
                .unwrap()
                .get("tid")
                .unwrap()
                .as_f64()
                .unwrap()
        };
        assert_eq!(tid_of("pass cse"), tid_of("pass fold"));
        assert_ne!(tid_of("parse file"), tid_of("pass cse"));
        // Microsecond timestamps preserve sub-µs precision.
        let cse = span_events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("pass cse"))
            .unwrap();
        assert_eq!(cse.get("ts").unwrap().as_f64(), Some(2.0));
        assert_eq!(cse.get("dur").unwrap().as_f64(), Some(0.5));
    }

    #[test]
    fn empty_trace_is_valid_json() {
        let doc = json::parse(&chrome_trace(&[])).unwrap();
        assert_eq!(doc.get("traceEvents").unwrap().as_array().unwrap().len(), 0);
    }

    #[test]
    fn default_tracks_keep_sequential_tids() {
        // Regression: with no explicit ids the old one-track-per-stage
        // numbering (pid 1, tids 1..) must be preserved exactly.
        let spans = vec![
            record("parse", "parse file", 0, 1_000),
            record("opt", "pass cse", 2_000, 500),
        ];
        let text = chrome_trace(&spans);
        let doc = json::parse(&text).expect("valid JSON");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        for e in events {
            assert_eq!(e.get("pid").unwrap().as_f64(), Some(1.0));
        }
        let tid_of = |name: &str| {
            events
                .iter()
                .find(|e| {
                    e.get("ph").and_then(|p| p.as_str()) == Some("X")
                        && e.get("name").unwrap().as_str() == Some(name)
                })
                .unwrap()
                .get("tid")
                .unwrap()
                .as_f64()
                .unwrap()
        };
        assert_eq!(tid_of("parse file"), 1.0);
        assert_eq!(tid_of("pass cse"), 2.0);
    }

    #[test]
    fn explicit_pid_tid_pins_the_whole_track() {
        let mut w0 = record("worker 0", "@gemm pipeline", 0, 900);
        w0.pid_tid = Some((1, 1001));
        // A nested pass span on the same track without an explicit id still
        // inherits the worker's pinned tid.
        let inner = record("worker 0", "pass hir-cse", 100, 200);
        let auto = record("opt", "pass fold", 2_000, 100);
        let text = chrome_trace(&[w0, inner, auto]);
        let doc = json::parse(&text).expect("valid JSON");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let span_events: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .collect();
        let tid_of = |name: &str| {
            span_events
                .iter()
                .find(|e| e.get("name").unwrap().as_str() == Some(name))
                .unwrap()
                .get("tid")
                .unwrap()
                .as_f64()
                .unwrap()
        };
        assert_eq!(tid_of("@gemm pipeline"), 1001.0);
        assert_eq!(tid_of("pass hir-cse"), 1001.0);
        assert_eq!(tid_of("pass fold"), 2.0, "auto track keeps its position");
        // The worker track's thread_name metadata carries the pinned tid.
        let meta = events
            .iter()
            .find(|e| {
                e.get("ph").and_then(|p| p.as_str()) == Some("M")
                    && e.get("args").and_then(|a| a.get("name")).unwrap().as_str()
                        == Some("worker 0")
            })
            .unwrap();
        assert_eq!(meta.get("tid").unwrap().as_f64(), Some(1001.0));
    }

    #[test]
    fn shared_pid_tid_emits_metadata_once() {
        // Two distinct tracks pinned to the same (pid, tid): only the first
        // names the thread; no duplicate thread_name records.
        let mut a = record("worker 0", "@a pipeline", 0, 100);
        a.pid_tid = Some((1, 7));
        let mut b = record("worker 0 (retry)", "@b pipeline", 200, 100);
        b.pid_tid = Some((1, 7));
        let text = chrome_trace(&[a, b]);
        let doc = json::parse(&text).expect("valid JSON");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let metas: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
            .collect();
        assert_eq!(metas.len(), 1, "one metadata record per (pid,tid)");
        assert_eq!(
            metas[0].get("args").unwrap().get("name").unwrap().as_str(),
            Some("worker 0")
        );
    }

    #[test]
    fn counter_events_parse_and_sort_by_time() {
        let spans = vec![record("sim", "run", 0, 10_000)];
        let counters = vec![
            CounterPoint {
                track: "sched/dirty".into(),
                ts_ns: 4_000,
                series: vec![("cones".into(), 3)],
                pid_tid: None,
            },
            CounterPoint {
                track: "sched/dirty".into(),
                ts_ns: 1_000,
                series: vec![("cones".into(), 5)],
                pid_tid: None,
            },
        ];
        let text = chrome_trace_with_counters(&spans, &counters);
        let doc = json::parse(&text).expect("valid JSON");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let cs: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("C"))
            .collect();
        assert_eq!(cs.len(), 2);
        assert_eq!(cs[0].get("ts").unwrap().as_f64(), Some(1.0));
        assert_eq!(cs[1].get("ts").unwrap().as_f64(), Some(4.0));
        assert_eq!(
            cs[0].get("args").unwrap().get("cones").unwrap().as_f64(),
            Some(5.0)
        );
        assert_eq!(cs[0].get("name").unwrap().as_str(), Some("sched/dirty"));
    }
}
