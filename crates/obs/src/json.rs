//! Minimal JSON support: a value model, a strict recursive-descent parser,
//! and a string escaper — enough to emit and validate Chrome trace-event
//! files without external dependencies.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Member access: `v.get("traceEvents")`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.get(key))
    }
}

/// A parse failure with byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}
impl std::error::Error for JsonError {}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
/// Returns the first syntax error with its byte offset.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Escape a string for embedding in a JSON document (without quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not recombined (the emitter
                            // never produces them).
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v =
            parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x\"y"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\"y"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(nasty));
    }
}
