//! A tiny dependency-free regular-expression engine for `--rpass` filters.
//!
//! Supports the subset CLI filters actually use: literals, `.`, `*`, `+`,
//! `?`, alternation `|`, grouping `(...)`, character classes `[a-z]` /
//! `[^0-9]`, anchors `^` / `$`, and the escapes `\d` `\w` `\s` (plus `\x`
//! for any literal special). Matching is *unanchored search* (like
//! `grep`/LLVM's `-Rpass`): anchor explicitly with `^`/`$`.
//!
//! The matcher simulates the pattern over **sets of positions** (an NFA
//! subset construction evaluated on the fly), so pathological patterns like
//! `(a*)*` cannot blow up: every step is bounded by the text length.

use std::collections::BTreeSet;

/// A compiled pattern.
#[derive(Clone, Debug)]
pub struct Regex {
    root: Node,
}

#[derive(Clone, Debug)]
enum Node {
    /// Ordered alternatives, each a sequence.
    Alt(Vec<Vec<Node>>),
    Lit(char),
    Any,
    Class {
        negated: bool,
        ranges: Vec<(char, char)>,
    },
    Star(Box<Node>),
    Plus(Box<Node>),
    Opt(Box<Node>),
    Start,
    End,
}

impl Regex {
    /// Compile a pattern.
    ///
    /// # Errors
    /// Returns a human-readable message on malformed syntax (unbalanced
    /// parens, unterminated class, dangling quantifier or escape).
    pub fn new(pattern: &str) -> Result<Regex, String> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut p = Parser { chars, pos: 0 };
        let root = p.parse_alt()?;
        if p.pos != p.chars.len() {
            return Err(format!(
                "unexpected '{}' at offset {}",
                p.chars[p.pos], p.pos
            ));
        }
        Ok(Regex { root })
    }

    /// Unanchored search: does any substring of `text` match?
    pub fn is_match(&self, text: &str) -> bool {
        let chars: Vec<char> = text.chars().collect();
        for start in 0..=chars.len() {
            let starts: BTreeSet<usize> = [start].into();
            if !ends_of(&self.root, &chars, &starts).is_empty() {
                return true;
            }
        }
        false
    }
}

/// All positions the single node can end at, starting from any of `starts`.
fn ends_of(node: &Node, text: &[char], starts: &BTreeSet<usize>) -> BTreeSet<usize> {
    let mut out = BTreeSet::new();
    match node {
        Node::Alt(branches) => {
            for seq in branches {
                out.extend(ends_of_seq(seq, text, starts));
            }
        }
        Node::Lit(c) => {
            for &i in starts {
                if text.get(i) == Some(c) {
                    out.insert(i + 1);
                }
            }
        }
        Node::Any => {
            for &i in starts {
                if i < text.len() {
                    out.insert(i + 1);
                }
            }
        }
        Node::Class { negated, ranges } => {
            for &i in starts {
                if let Some(&c) = text.get(i) {
                    let inside = ranges.iter().any(|&(a, b)| a <= c && c <= b);
                    if inside != *negated {
                        out.insert(i + 1);
                    }
                }
            }
        }
        Node::Star(inner) => {
            // Reflexive-transitive closure: keep applying `inner` to the
            // frontier until no new position appears. Bounded by text length.
            out.extend(starts);
            let mut frontier = starts.clone();
            while !frontier.is_empty() {
                let next = ends_of(inner, text, &frontier);
                frontier = next.difference(&out).copied().collect();
                out.extend(frontier.iter().copied());
            }
        }
        Node::Plus(inner) => {
            let once = ends_of(inner, text, starts);
            out.extend(ends_of(&Node::Star(inner.clone()), text, &once));
        }
        Node::Opt(inner) => {
            out.extend(starts);
            out.extend(ends_of(inner, text, starts));
        }
        Node::Start => {
            if starts.contains(&0) {
                out.insert(0);
            }
        }
        Node::End => {
            if starts.contains(&text.len()) {
                out.insert(text.len());
            }
        }
    }
    out
}

fn ends_of_seq(seq: &[Node], text: &[char], starts: &BTreeSet<usize>) -> BTreeSet<usize> {
    let mut current = starts.clone();
    for node in seq {
        if current.is_empty() {
            break;
        }
        current = ends_of(node, text, &current);
    }
    current
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn parse_alt(&mut self) -> Result<Node, String> {
        let mut branches = vec![self.parse_seq()?];
        while self.peek() == Some('|') {
            self.bump();
            branches.push(self.parse_seq()?);
        }
        Ok(Node::Alt(branches))
    }

    fn parse_seq(&mut self) -> Result<Vec<Node>, String> {
        let mut seq = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.parse_atom()?;
            let atom = match self.peek() {
                Some('*') => {
                    self.bump();
                    Node::Star(Box::new(atom))
                }
                Some('+') => {
                    self.bump();
                    Node::Plus(Box::new(atom))
                }
                Some('?') => {
                    self.bump();
                    Node::Opt(Box::new(atom))
                }
                _ => atom,
            };
            seq.push(atom);
        }
        Ok(seq)
    }

    fn parse_atom(&mut self) -> Result<Node, String> {
        let at = self.pos;
        match self.bump() {
            None => Err("pattern ended unexpectedly".into()),
            Some('(') => {
                let inner = self.parse_alt()?;
                if self.bump() != Some(')') {
                    return Err(format!("unclosed '(' at offset {at}"));
                }
                Ok(inner)
            }
            Some('[') => self.parse_class(at),
            Some('.') => Ok(Node::Any),
            Some('^') => Ok(Node::Start),
            Some('$') => Ok(Node::End),
            Some('*') | Some('+') | Some('?') => Err(format!("dangling quantifier at offset {at}")),
            Some('\\') => match self.bump() {
                None => Err("dangling '\\' at end of pattern".into()),
                Some('d') => Ok(Node::Class {
                    negated: false,
                    ranges: vec![('0', '9')],
                }),
                Some('w') => Ok(Node::Class {
                    negated: false,
                    ranges: vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')],
                }),
                Some('s') => Ok(Node::Class {
                    negated: false,
                    ranges: vec![(' ', ' '), ('\t', '\t'), ('\n', '\n'), ('\r', '\r')],
                }),
                Some(c) => Ok(Node::Lit(c)),
            },
            Some(c) => Ok(Node::Lit(c)),
        }
    }

    fn parse_class(&mut self, open_at: usize) -> Result<Node, String> {
        let negated = if self.peek() == Some('^') {
            self.bump();
            true
        } else {
            false
        };
        let mut ranges = Vec::new();
        let mut first = true;
        loop {
            let c = match self.bump() {
                None => return Err(format!("unclosed '[' at offset {open_at}")),
                // A leading `]` is a literal, like POSIX.
                Some(']') if !first => break,
                Some(c) => {
                    if c == '\\' {
                        self.bump()
                            .ok_or("dangling '\\' in character class".to_string())?
                    } else {
                        c
                    }
                }
            };
            first = false;
            if self.peek() == Some('-') && self.chars.get(self.pos + 1).is_some_and(|&n| n != ']') {
                self.bump(); // '-'
                let hi = self.bump().expect("checked above");
                if hi < c {
                    return Err(format!("inverted range '{c}-{hi}' in character class"));
                }
                ranges.push((c, hi));
            } else {
                ranges.push((c, c));
            }
        }
        Ok(Node::Class { negated, ranges })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, text: &str) -> bool {
        Regex::new(pat).unwrap().is_match(text)
    }

    #[test]
    fn literals_are_unanchored() {
        assert!(m("cse", "hir-cse"));
        assert!(m("hir", "hir-fold-constants"));
        assert!(!m("dce", "hir-cse"));
        assert!(m("", "anything"));
    }

    #[test]
    fn anchors() {
        assert!(m("^hir-", "hir-cse"));
        assert!(!m("^cse", "hir-cse"));
        assert!(m("cse$", "hir-cse"));
        assert!(!m("hir$", "hir-cse"));
        assert!(m("^hir-cse$", "hir-cse"));
    }

    #[test]
    fn quantifiers_and_any() {
        assert!(m("a*b", "b"));
        assert!(m("a*b", "aaab"));
        assert!(m("a+b", "aab"));
        assert!(!m("^a+b$", "b"));
        assert!(m("colou?r", "color"));
        assert!(m("colou?r", "colour"));
        assert!(m("f.ld", "fold"));
        assert!(!m("^f.ld$", "fld"));
    }

    #[test]
    fn alternation_and_groups() {
        assert!(m("cse|strength", "hir-strength-reduce"));
        assert!(m("^hir-(cse|dce)$", "hir-dce"));
        assert!(!m("^hir-(cse|dce)$", "hir-fold"));
        assert!(m("(ab)+c", "ababc"));
        assert!(!m("^(ab)+c$", "abac"));
    }

    #[test]
    fn classes_and_escapes() {
        assert!(m("[a-z]+-[a-z]+", "strength-reduce"));
        assert!(m("[^0-9]", "abc"));
        assert!(!m("^[^0-9]+$", "ab3c"));
        assert!(m("\\d\\d", "port42x"));
        assert!(m("\\w+", "fold_constants"));
        assert!(m("a\\.b", "a.b"));
        assert!(!m("^a\\.b$", "axb"));
    }

    #[test]
    fn pathological_nesting_terminates() {
        assert!(m("(a*)*b", "aaaaaaaaaaaaaaaaaaaab"));
        assert!(!m("^(a*)*$", "aaaaaaaaaaaaaaaaaaaab"));
    }

    #[test]
    fn syntax_errors() {
        assert!(Regex::new("(ab").is_err());
        assert!(Regex::new("[ab").is_err());
        assert!(Regex::new("*a").is_err());
        assert!(Regex::new("a\\").is_err());
        assert!(Regex::new("[z-a]").is_err());
        assert!(Regex::new("ab)").is_err());
    }
}
