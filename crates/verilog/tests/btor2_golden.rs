//! Golden BTOR2 export: the word-level transition system emitted for a
//! hand-built counter design must match the checked-in `.btor2` file byte
//! for byte. Set `BLESS_BTOR2=1` to regenerate the golden after an
//! intentional format change.

use verilog::ast::{BinOp, Design, Dir, Expr, LValue, Stmt, VModule};

/// The same 8-bit wrap-around counter the tsys unit tests use: one state,
/// one enable input, a combinational rollover flag.
fn counter_design() -> Design {
    let mut m = VModule::new("counter8");
    m.port("clk", Dir::Input, 1);
    m.port("en", Dir::Input, 1);
    m.port("count", Dir::Output, 8);
    m.port("wrapped", Dir::Output, 1);
    m.reg("cnt", 8);
    m.assign("count", Expr::r("cnt"));
    m.assign(
        "wrapped",
        Expr::bin(BinOp::Eq, Expr::r("cnt"), Expr::c(0xFF, 8)),
    );
    m.main_always().stmts.push(Stmt::If {
        cond: Expr::r("en"),
        then: vec![Stmt::NonBlocking {
            lhs: LValue::Net("cnt".into()),
            rhs: Expr::bin(BinOp::Add, Expr::r("cnt"), Expr::c(1, 8)),
        }],
        els: vec![],
    });
    let mut d = Design::new();
    d.add(m);
    d
}

#[test]
fn counter_btor2_matches_golden() {
    let ts = verilog::tsys::lower(&counter_design(), "counter8").expect("lower");
    let got = verilog::to_btor2(&ts);
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/counter8.btor2");
    if std::env::var_os("BLESS_BTOR2").is_some() {
        std::fs::write(golden_path, &got).expect("bless golden");
        return;
    }
    let want = include_str!("golden/counter8.btor2");
    assert_eq!(
        got, want,
        "BTOR2 export drifted from {golden_path}; \
         rerun with BLESS_BTOR2=1 if the change is intentional"
    );
}
