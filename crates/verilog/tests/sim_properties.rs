//! Property test: the cycle simulator's expression evaluation agrees with a
//! direct Rust evaluation of the same expression tree, for random trees and
//! inputs — validating the simulator against an independent implementation.

use proptest::prelude::*;
use verilog::{BinOp, Design, Dir, Expr, Simulator, UnOp};

#[derive(Clone, Debug)]
enum Tree {
    A,
    B,
    Const(u8),
    Un(u8, Box<Tree>),
    Bin(u8, Box<Tree>, Box<Tree>),
}

fn arb_tree() -> impl Strategy<Value = Tree> {
    let leaf = prop_oneof![
        Just(Tree::A),
        Just(Tree::B),
        any::<u8>().prop_map(Tree::Const)
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (any::<u8>(), inner.clone()).prop_map(|(k, a)| Tree::Un(k, Box::new(a))),
            (any::<u8>(), inner.clone(), inner).prop_map(|(k, a, b)| Tree::Bin(
                k,
                Box::new(a),
                Box::new(b)
            )),
        ]
    })
}

const W: u32 = 16;

fn to_expr(t: &Tree) -> Expr {
    match t {
        Tree::A => Expr::r("a"),
        Tree::B => Expr::r("b"),
        Tree::Const(c) => Expr::c(*c as u64, W),
        Tree::Un(k, a) => {
            let op = match k % 2 {
                0 => UnOp::Not,
                _ => UnOp::RedOr,
            };
            Expr::Unary {
                op,
                arg: Box::new(to_expr(a)),
            }
        }
        Tree::Bin(k, a, b) => {
            let op = match k % 8 {
                0 => BinOp::Add,
                1 => BinOp::Sub,
                2 => BinOp::And,
                3 => BinOp::Or,
                4 => BinOp::Xor,
                5 => BinOp::Eq,
                6 => BinOp::ULt,
                _ => BinOp::SLt,
            };
            Expr::bin(op, to_expr(a), to_expr(b))
        }
    }
}

/// Direct evaluation returning (value, width) with the simulator's width
/// semantics (comparisons and reductions are 1 bit wide).
fn eval(t: &Tree, a: u64, b: u64) -> (u64, u32) {
    match t {
        Tree::A => (a, W),
        Tree::B => (b, W),
        Tree::Const(c) => (*c as u64, W),
        Tree::Un(k, x) => {
            let (v, w) = eval(x, a, b);
            match k % 2 {
                0 => ((!v) & ((1u64 << w) - 1), w),
                _ => (u64::from(v != 0), 1),
            }
        }
        Tree::Bin(k, x, y) => {
            let (va, wa) = eval(x, a, b);
            let (vb, wb) = eval(y, a, b);
            let w = wa.max(wb);
            let m = (1u64 << w) - 1;
            match k % 8 {
                0 => (va.wrapping_add(vb) & m, w),
                1 => (va.wrapping_sub(vb) & m, w),
                2 => (va & vb, w),
                3 => (va | vb, w),
                4 => (va ^ vb, w),
                5 => (u64::from(va == vb), 1),
                6 => (u64::from(va < vb), 1),
                _ => {
                    let s = |v: u64, w: u32| -> i64 {
                        if w >= 64 {
                            v as i64
                        } else if v & (1 << (w - 1)) != 0 {
                            v as i64 - (1i64 << w)
                        } else {
                            v as i64
                        }
                    };
                    (u64::from(s(va, wa) < s(vb, wb)), 1)
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn simulator_matches_direct_evaluation(t in arb_tree(), a in any::<u16>(), b in any::<u16>()) {
        let mut m = verilog::VModule::new("dut");
        m.port("clk", Dir::Input, 1);
        m.port("a", Dir::Input, W);
        m.port("b", Dir::Input, W);
        m.port("y", Dir::Output, W);
        m.assign("y", to_expr(&t));
        let mut d = Design::new();
        d.add(m);
        let mut sim = Simulator::new(&d, "dut").expect("build");
        sim.set("a", a as u64);
        sim.set("b", b as u64);
        let got = sim.get("y");
        let (expect, w) = eval(&t, a as u64, b as u64);
        // The output port is W bits; narrower expression values zero-extend.
        let expect = if w >= W { expect & 0xFFFF } else { expect & ((1u64 << w) - 1) };
        prop_assert_eq!(got, expect, "tree {:?}", t);
    }
}
