//! # `verilog` — synthesizable Verilog AST, printer and cycle simulator
//!
//! The substrate both compilers in this workspace (the HIR code generator
//! and the Vivado-HLS-stand-in baseline) target. Provides:
//!
//! * [`ast`]: an AST for the synthesizable subset (modules, wires/regs,
//!   inferred memories, continuous assigns, `always @(posedge clk)`
//!   processes, instances, immediate assertions);
//! * [`printer`]: Verilog-2001 text output;
//! * [`elaborate`]: hierarchy flattening;
//! * [`sim`]: a two-state cycle-accurate simulator with assertion support —
//!   the stand-in for vendor RTL simulation used to validate generated
//!   hardware end-to-end.
//!
//! ```
//! use verilog::{VModule, Design, Dir, Expr, Simulator};
//!
//! let mut m = VModule::new("passthrough");
//! m.port("clk", Dir::Input, 1);
//! m.port("x", Dir::Input, 8);
//! m.port("y", Dir::Output, 8);
//! m.assign("y", Expr::r("x"));
//! let mut d = Design::new();
//! d.add(m);
//! let mut sim = Simulator::new(&d, "passthrough")?;
//! sim.set("x", 42);
//! assert_eq!(sim.get("y"), 42);
//! # Ok::<(), verilog::BuildError>(())
//! ```

pub mod ast;
pub mod elaborate;
pub mod printer;
pub mod sim;
pub mod tsys;

pub use ast::{
    AlwaysBlock, Assign, BinOp, Design, Dir, Expr, Instance, LValue, MemDecl, NetDecl, NetKind,
    PortDecl, Stmt, UnOp, VModule,
};
pub use elaborate::{flatten, ElabError};
pub use printer::{print_design, print_expr, print_module};
pub use sim::{
    BuildError, ConeTelemetry, Engine, InsnTelemetry, NetTelemetry, SchedConeWakes,
    SchedStatsReport, Simulator, TelemetryReport, UnitActivity, VSimError,
};
pub use tsys::{to_btor2, InputVar, Node, NodeId, StateVar, TOp, TransitionSystem};
