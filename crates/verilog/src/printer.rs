//! Verilog-2001 pretty printer for the [`crate::ast`] subset.

use crate::ast::*;
use std::fmt::Write;

/// Print a whole design.
pub fn print_design(design: &Design) -> String {
    let mut out = String::new();
    for (i, m) in design.modules.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&print_module(m));
    }
    out
}

/// Print one module.
pub fn print_module(m: &VModule) -> String {
    let mut out = String::new();
    for c in &m.comments {
        let _ = writeln!(out, "// {c}");
    }
    let _ = write!(out, "module {}(", m.name);
    for (i, p) in m.ports.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&p.name);
    }
    let _ = writeln!(out, ");");

    for p in &m.ports {
        let dir = match p.dir {
            Dir::Input => "input",
            Dir::Output => "output",
        };
        let reg = if p.is_reg { " reg" } else { "" };
        let _ = writeln!(out, "  {dir}{reg} {}{};", range(p.width), p.name);
    }
    for n in &m.nets {
        let kw = match n.kind {
            NetKind::Wire => "wire",
            NetKind::Reg => "reg",
        };
        match (n.kind, n.init) {
            (NetKind::Reg, Some(v)) => {
                let _ = writeln!(
                    out,
                    "  {kw} {}{} = {}'d{v};",
                    range(n.width),
                    n.name,
                    n.width
                );
            }
            _ => {
                let _ = writeln!(out, "  {kw} {}{};", range(n.width), n.name);
            }
        }
    }
    for mem in &m.memories {
        if let Some(style) = &mem.style {
            let _ = writeln!(out, "  (* ram_style = \"{style}\" *)");
        }
        let _ = writeln!(
            out,
            "  reg {}{} [0:{}];",
            range(mem.width),
            mem.name,
            mem.depth.saturating_sub(1)
        );
    }

    for a in &m.assigns {
        if let Some(c) = &a.comment {
            let _ = writeln!(out, "  // {c}");
        }
        let _ = writeln!(out, "  assign {} = {};", a.lhs, print_expr(&a.rhs));
    }

    for inst in &m.instances {
        let _ = writeln!(out, "  {} {}(", inst.module, inst.name);
        for (i, (port, expr)) in inst.connections.iter().enumerate() {
            let comma = if i + 1 == inst.connections.len() {
                ""
            } else {
                ","
            };
            let _ = writeln!(out, "    .{port}({}){comma}", print_expr(expr));
        }
        let _ = writeln!(out, "  );");
    }

    for blk in &m.always {
        if blk.stmts.is_empty() {
            continue;
        }
        let _ = writeln!(out, "  always @(posedge clk) begin");
        for s in &blk.stmts {
            print_stmt(&mut out, s, 2);
        }
        let _ = writeln!(out, "  end");
    }

    let _ = writeln!(out, "endmodule");
    out
}

fn range(width: u32) -> String {
    if width <= 1 {
        String::new()
    } else {
        format!("[{}:0] ", width - 1)
    }
}

fn print_stmt(out: &mut String, s: &Stmt, depth: usize) {
    let pad = "  ".repeat(depth);
    match s {
        Stmt::NonBlocking { lhs, rhs } => {
            let l = match lhs {
                LValue::Net(n) => n.clone(),
                LValue::MemElem { mem, addr } => format!("{mem}[{}]", print_expr(addr)),
            };
            let _ = writeln!(out, "{pad}{l} <= {};", print_expr(rhs));
        }
        Stmt::If { cond, then, els } => {
            let _ = writeln!(out, "{pad}if ({}) begin", print_expr(cond));
            for t in then {
                print_stmt(out, t, depth + 1);
            }
            if els.is_empty() {
                let _ = writeln!(out, "{pad}end");
            } else {
                let _ = writeln!(out, "{pad}end else begin");
                for e in els {
                    print_stmt(out, e, depth + 1);
                }
                let _ = writeln!(out, "{pad}end");
            }
        }
        Stmt::Assert {
            guard,
            cond,
            message,
        } => {
            let _ = writeln!(out, "{pad}// synthesis translate_off");
            let _ = writeln!(
                out,
                "{pad}if (({}) && !({})) $error(\"{message}\");",
                print_expr(guard),
                print_expr(cond)
            );
            let _ = writeln!(out, "{pad}// synthesis translate_on");
        }
    }
}

/// Print an expression with full parenthesization (safe and simple).
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Const { value, width } => format!("{width}'d{value}"),
        Expr::Ref(n) => n.clone(),
        Expr::MemRead { mem, addr } => format!("{mem}[{}]", print_expr(addr)),
        Expr::Slice { base, hi, lo } => {
            if hi == lo {
                format!("{}[{hi}]", print_expr(base))
            } else {
                format!("{}[{hi}:{lo}]", print_expr(base))
            }
        }
        Expr::Unary { op, arg } => {
            let t = match op {
                UnOp::Not => "~",
                UnOp::LNot => "!",
                UnOp::RedOr => "|",
            };
            format!("{t}({})", print_expr(arg))
        }
        Expr::Binary { op, lhs, rhs } => {
            if op.is_signed() {
                format!(
                    "($signed({}) {} $signed({}))",
                    print_expr(lhs),
                    op.token(),
                    print_expr(rhs)
                )
            } else {
                format!("({} {} {})", print_expr(lhs), op.token(), print_expr(rhs))
            }
        }
        Expr::Ternary { cond, then, els } => {
            format!(
                "({} ? {} : {})",
                print_expr(cond),
                print_expr(then),
                print_expr(els)
            )
        }
        Expr::Concat(parts) => {
            let inner: Vec<String> = parts.iter().map(print_expr).collect();
            format!("{{{}}}", inner.join(", "))
        }
        Expr::SignExtend { arg, from, to } => {
            let a = print_expr(arg);
            if to <= from {
                a
            } else {
                format!("{{{{{}{{{a}[{}]}}}}, {a}}}", to - from, from - 1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prints_a_complete_module() {
        let mut m = VModule::new("counter");
        m.port("clk", Dir::Input, 1);
        m.port("en", Dir::Input, 1);
        m.port("count", Dir::Output, 8);
        m.reg("value", 8);
        m.assign("count", Expr::r("value"));
        m.main_always().stmts.push(Stmt::If {
            cond: Expr::r("en"),
            then: vec![Stmt::NonBlocking {
                lhs: LValue::Net("value".into()),
                rhs: Expr::add(Expr::r("value"), Expr::c(1, 8)),
            }],
            els: vec![],
        });
        let text = print_module(&m);
        assert!(text.contains("module counter(clk, en, count);"), "{text}");
        assert!(text.contains("input clk;"), "{text}");
        assert!(text.contains("output [7:0] count;"), "{text}");
        assert!(text.contains("reg [7:0] value = 8'd0;"), "{text}");
        assert!(text.contains("assign count = value;"), "{text}");
        assert!(text.contains("always @(posedge clk) begin"), "{text}");
        assert!(text.contains("value <= (value + 8'd1);"), "{text}");
        assert!(text.ends_with("endmodule\n"), "{text}");
    }

    #[test]
    fn prints_signed_comparison_and_memory() {
        let mut m = VModule::new("x");
        m.port("clk", Dir::Input, 1);
        m.memory("buf", 32, 16, Some("lutram"));
        m.wire("lt", 1);
        m.assign("lt", Expr::bin(BinOp::SLt, Expr::r("a"), Expr::r("b")));
        let text = print_module(&m);
        assert!(text.contains("(* ram_style = \"lutram\" *)"), "{text}");
        assert!(text.contains("reg [31:0] buf [0:15];"), "{text}");
        assert!(text.contains("($signed(a) < $signed(b))"), "{text}");
    }

    #[test]
    fn sign_extend_prints_replication() {
        let e = Expr::SignExtend {
            arg: Box::new(Expr::r("x")),
            from: 8,
            to: 12,
        };
        assert_eq!(print_expr(&e), "{{4{x[7]}}, x}");
    }

    #[test]
    fn assertion_prints_translate_off_guard() {
        let mut m = VModule::new("a");
        m.port("clk", Dir::Input, 1);
        m.main_always().stmts.push(Stmt::Assert {
            guard: Expr::r("en"),
            cond: Expr::bin(BinOp::ULt, Expr::r("addr"), Expr::c(16, 8)),
            message: "address out of bounds".into(),
        });
        let text = print_module(&m);
        assert!(text.contains("translate_off"), "{text}");
        assert!(text.contains("$error(\"address out of bounds\")"), "{text}");
    }
}
