//! AST for the synthesizable Verilog subset emitted by the HIR and HLS code
//! generators.
//!
//! The subset is deliberately small but real: modules with input/output
//! ports, wires/regs, inferred memories (`reg [W-1:0] mem [0:D-1]`),
//! continuous assigns, a single-clock `always @(posedge clk)` process per
//! module (plus any number of extra ones), module instances, and immediate
//! assertions. Everything the paper's Table 3 maps HIR onto is expressible.

use std::fmt;

/// Port direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    Input,
    Output,
}

/// A module port.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PortDecl {
    pub name: String,
    pub dir: Dir,
    pub width: u32,
    /// Output ports driven from an always block are declared `reg`.
    pub is_reg: bool,
}

/// Kind of an internal net.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetKind {
    Wire,
    Reg,
}

/// An internal net declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetDecl {
    pub name: String,
    pub kind: NetKind,
    pub width: u32,
    /// Initial value (FPGA-style register initialization).
    pub init: Option<u64>,
}

/// An inferred memory: `reg [width-1:0] name [0:depth-1]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemDecl {
    pub name: String,
    pub width: u32,
    pub depth: u64,
    /// Synthesis hint carried into resource estimation ("reg", "lutram",
    /// "bram"); printed as a `(* ram_style *)` attribute.
    pub style: Option<String>,
}

/// Binary operators. Comparisons yield 1 bit; arithmetic is modular.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
    Shl,
    /// Logical shift right.
    LShr,
    /// Arithmetic shift right.
    AShr,
    Eq,
    Ne,
    /// Signed comparisons.
    SLt,
    SLe,
    SGt,
    SGe,
    /// Unsigned comparisons.
    ULt,
    ULe,
}

impl BinOp {
    /// Whether this operator produces a single-bit result.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq
                | BinOp::Ne
                | BinOp::SLt
                | BinOp::SLe
                | BinOp::SGt
                | BinOp::SGe
                | BinOp::ULt
                | BinOp::ULe
        )
    }

    /// The Verilog token.
    pub fn token(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Shl => "<<",
            BinOp::LShr => ">>",
            BinOp::AShr => ">>>",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::SLt | BinOp::ULt => "<",
            BinOp::SLe | BinOp::ULe => "<=",
            BinOp::SGt => ">",
            BinOp::SGe => ">=",
        }
    }

    /// Whether operands must be wrapped in `$signed(...)`.
    pub fn is_signed(self) -> bool {
        matches!(
            self,
            BinOp::SLt | BinOp::SLe | BinOp::SGt | BinOp::SGe | BinOp::AShr
        )
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Bitwise not.
    Not,
    /// Logical not (reduce to 1 bit, invert).
    LNot,
    /// OR-reduction.
    RedOr,
}

/// An expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// Sized constant `width'dvalue`.
    Const {
        value: u64,
        width: u32,
    },
    /// A net or port reference.
    Ref(String),
    /// Asynchronous memory read `mem[addr]` (distributed RAM / regs).
    MemRead {
        mem: String,
        addr: Box<Expr>,
    },
    /// Bit slice `base[hi:lo]`.
    Slice {
        base: Box<Expr>,
        hi: u32,
        lo: u32,
    },
    Unary {
        op: UnOp,
        arg: Box<Expr>,
    },
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// `cond ? a : b`.
    Ternary {
        cond: Box<Expr>,
        then: Box<Expr>,
        els: Box<Expr>,
    },
    /// `{a, b, c}` — `a[0]` is the most significant part.
    Concat(Vec<Expr>),
    /// `$signed`-preserving sign extension of `arg` (of width `from`) to
    /// width `to`. Printed as a concat with replicated sign bit.
    SignExtend {
        arg: Box<Expr>,
        from: u32,
        to: u32,
    },
}

#[allow(clippy::should_implement_trait)] // `add`/`not` are expression constructors
impl Expr {
    pub fn c(value: u64, width: u32) -> Expr {
        Expr::Const { value, width }
    }
    pub fn r(name: impl Into<String>) -> Expr {
        Expr::Ref(name.into())
    }
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }
    pub fn not(arg: Expr) -> Expr {
        Expr::Unary {
            op: UnOp::Not,
            arg: Box::new(arg),
        }
    }
    pub fn mux(cond: Expr, then: Expr, els: Expr) -> Expr {
        Expr::Ternary {
            cond: Box::new(cond),
            then: Box::new(then),
            els: Box::new(els),
        }
    }
    pub fn eq(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Eq, lhs, rhs)
    }
    pub fn and(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::And, lhs, rhs)
    }
    pub fn or(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Or, lhs, rhs)
    }
    pub fn add(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Add, lhs, rhs)
    }
}

/// Assignment target inside an always block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LValue {
    Net(String),
    /// `mem[addr]`.
    MemElem {
        mem: String,
        addr: Expr,
    },
}

/// A statement inside an always block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// Non-blocking assignment `lhs <= rhs;`.
    NonBlocking { lhs: LValue, rhs: Expr },
    /// `if (cond) begin ... end else begin ... end`.
    If {
        cond: Expr,
        then: Vec<Stmt>,
        els: Vec<Stmt>,
    },
    /// Immediate assertion: when `guard` is true, `cond` must hold.
    /// Printed as a guarded `$error` (synthesis ignores it); the simulator
    /// enforces it. These realize the automatic UB checks of paper §4.5.
    Assert {
        guard: Expr,
        cond: Expr,
        message: String,
    },
}

/// A clocked process (`always @(posedge clk)`).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct AlwaysBlock {
    pub stmts: Vec<Stmt>,
}

/// A continuous assignment `assign lhs = rhs;`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Assign {
    pub lhs: String,
    pub rhs: Expr,
    /// Optional source comment (HIR location mapping, paper §5.5).
    pub comment: Option<String>,
}

/// A module instantiation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Instance {
    pub module: String,
    pub name: String,
    /// `(port, expr)` pairs. Output ports must connect to plain net refs.
    pub connections: Vec<(String, Expr)>,
}

/// A Verilog module.
#[derive(Clone, Debug, Default)]
pub struct VModule {
    pub name: String,
    pub ports: Vec<PortDecl>,
    pub nets: Vec<NetDecl>,
    pub memories: Vec<MemDecl>,
    pub assigns: Vec<Assign>,
    pub always: Vec<AlwaysBlock>,
    pub instances: Vec<Instance>,
    /// Header comments (e.g. "generated from foo.mlir:3:1").
    pub comments: Vec<String>,
}

impl VModule {
    pub fn new(name: impl Into<String>) -> Self {
        VModule {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Add a port, returning its name for convenience.
    pub fn port(&mut self, name: impl Into<String>, dir: Dir, width: u32) -> String {
        let name = name.into();
        self.ports.push(PortDecl {
            name: name.clone(),
            dir,
            width,
            is_reg: false,
        });
        name
    }

    /// Add an internal wire.
    pub fn wire(&mut self, name: impl Into<String>, width: u32) -> String {
        let name = name.into();
        self.nets.push(NetDecl {
            name: name.clone(),
            kind: NetKind::Wire,
            width,
            init: None,
        });
        name
    }

    /// Add an internal register with reset value 0.
    pub fn reg(&mut self, name: impl Into<String>, width: u32) -> String {
        let name = name.into();
        self.nets.push(NetDecl {
            name: name.clone(),
            kind: NetKind::Reg,
            width,
            init: Some(0),
        });
        name
    }

    /// Add a memory.
    pub fn memory(
        &mut self,
        name: impl Into<String>,
        width: u32,
        depth: u64,
        style: Option<&str>,
    ) -> String {
        let name = name.into();
        self.memories.push(MemDecl {
            name: name.clone(),
            width,
            depth,
            style: style.map(str::to_owned),
        });
        name
    }

    /// Add a continuous assign.
    pub fn assign(&mut self, lhs: impl Into<String>, rhs: Expr) {
        self.assigns.push(Assign {
            lhs: lhs.into(),
            rhs,
            comment: None,
        });
    }

    /// Add a continuous assign with a source comment.
    pub fn assign_with_comment(
        &mut self,
        lhs: impl Into<String>,
        rhs: Expr,
        comment: impl Into<String>,
    ) {
        self.assigns.push(Assign {
            lhs: lhs.into(),
            rhs,
            comment: Some(comment.into()),
        });
    }

    /// The first (main) always block, created on demand.
    pub fn main_always(&mut self) -> &mut AlwaysBlock {
        if self.always.is_empty() {
            self.always.push(AlwaysBlock::default());
        }
        &mut self.always[0]
    }

    /// Look up a port.
    pub fn find_port(&self, name: &str) -> Option<&PortDecl> {
        self.ports.iter().find(|p| p.name == name)
    }

    /// Width of a named net, port or memory word.
    pub fn width_of(&self, name: &str) -> Option<u32> {
        self.ports
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.width)
            .or_else(|| self.nets.iter().find(|n| n.name == name).map(|n| n.width))
            .or_else(|| {
                self.memories
                    .iter()
                    .find(|m| m.name == name)
                    .map(|m| m.width)
            })
    }
}

/// A design: a set of modules, one of which is usually the top.
#[derive(Clone, Debug, Default)]
pub struct Design {
    pub modules: Vec<VModule>,
}

impl Design {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add(&mut self, module: VModule) -> &mut Self {
        self.modules.push(module);
        self
    }

    pub fn find(&self, name: &str) -> Option<&VModule> {
        self.modules.iter().find(|m| m.name == name)
    }
}

impl fmt::Display for Design {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::printer::print_design(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_builder_helpers() {
        let mut m = VModule::new("adder");
        m.port("clk", Dir::Input, 1);
        m.port("a", Dir::Input, 32);
        m.port("y", Dir::Output, 32);
        m.wire("tmp", 32);
        m.reg("state", 4);
        m.memory("buf", 32, 256, Some("bram"));
        m.assign("tmp", Expr::add(Expr::r("a"), Expr::c(1, 32)));
        assert_eq!(m.width_of("a"), Some(32));
        assert_eq!(m.width_of("state"), Some(4));
        assert_eq!(m.width_of("buf"), Some(32));
        assert_eq!(m.width_of("nope"), None);
        assert!(m.find_port("clk").is_some());
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Eq.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::SLt.is_signed());
        assert!(!BinOp::ULt.is_signed());
        assert_eq!(BinOp::AShr.token(), ">>>");
    }
}
