//! Cycle-accurate two-state simulator for the synthesizable subset.
//!
//! The simulator flattens the design, compiles expressions to an index-based
//! form, topologically orders the continuous assigns (rejecting
//! combinational loops), and then alternates *settle* (combinational
//! evaluation) and *step* (one `posedge clk`, non-blocking semantics).
//! Immediate assertions — the automatic UB guards the HIR code generator
//! inserts (paper §4.5) — abort the simulation with a message.

use crate::ast::*;
use crate::elaborate::{flatten, ElabError};
use obs::json::escape as json_escape;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

/// A runtime simulation failure (a fired assertion or an engine limit).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VSimError {
    pub cycle: u64,
    pub message: String,
}

impl fmt::Display for VSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}: {}", self.cycle, self.message)
    }
}
impl std::error::Error for VSimError {}

/// Construction failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    Elab(ElabError),
    UnknownNet(String),
    CombinationalLoop(Vec<String>),
    /// The design is valid for simulation but outside the fragment the
    /// transition-system lowering ([`crate::tsys`]) supports.
    Unsupported(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Elab(e) => write!(f, "{e}"),
            BuildError::UnknownNet(n) => write!(f, "reference to undeclared net '{n}'"),
            BuildError::CombinationalLoop(nets) => {
                write!(f, "combinational loop through: {}", nets.join(" -> "))
            }
            BuildError::Unsupported(what) => {
                write!(f, "unsupported for transition-system lowering: {what}")
            }
        }
    }
}
impl std::error::Error for BuildError {}

impl From<ElabError> for BuildError {
    fn from(e: ElabError) -> Self {
        BuildError::Elab(e)
    }
}

// Compiled expression: net/memory references resolved to indices, result
// widths precomputed.
#[derive(Clone, Debug)]
enum CExpr {
    Const {
        value: u64,
        width: u32,
    },
    Net {
        index: usize,
        width: u32,
    },
    MemRead {
        mem: usize,
        addr: Box<CExpr>,
        width: u32,
    },
    Slice {
        base: Box<CExpr>,
        hi: u32,
        lo: u32,
    },
    Unary {
        op: UnOp,
        arg: Box<CExpr>,
        width: u32,
    },
    Binary {
        op: BinOp,
        lhs: Box<CExpr>,
        rhs: Box<CExpr>,
        width: u32,
    },
    Ternary {
        cond: Box<CExpr>,
        then: Box<CExpr>,
        els: Box<CExpr>,
        width: u32,
    },
    Concat {
        parts: Vec<CExpr>,
        width: u32,
    },
    SignExtend {
        arg: Box<CExpr>,
        from: u32,
        to: u32,
    },
}

impl CExpr {
    fn width(&self) -> u32 {
        match self {
            CExpr::Const { width, .. }
            | CExpr::Net { width, .. }
            | CExpr::MemRead { width, .. }
            | CExpr::Unary { width, .. }
            | CExpr::Binary { width, .. }
            | CExpr::Ternary { width, .. }
            | CExpr::Concat { width, .. } => *width,
            CExpr::Slice { hi, lo, .. } => hi - lo + 1,
            CExpr::SignExtend { to, .. } => *to,
        }
    }
}

#[derive(Clone, Debug)]
enum CStmt {
    AssignNet {
        net: usize,
        rhs: CExpr,
    },
    AssignMem {
        mem: usize,
        addr: CExpr,
        rhs: CExpr,
    },
    If {
        cond: CExpr,
        then: Vec<CStmt>,
        els: Vec<CStmt>,
    },
    Assert {
        guard: CExpr,
        cond: CExpr,
        message: String,
    },
}

/// Which execution engine drives `settle`/`step`.
///
/// `Bytecode` is the default: the design is lowered once into flat
/// register-machine tapes and each cycle is a linear sweep with no
/// allocation and no recursion. `TreeWalk` is the original recursive
/// evaluator, kept as a differential-testing oracle; building with the
/// `treewalk-sim` feature makes it the default instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    Bytecode,
    TreeWalk,
}

impl Default for Engine {
    fn default() -> Self {
        if cfg!(feature = "treewalk-sim") {
            Engine::TreeWalk
        } else {
            Engine::Bytecode
        }
    }
}

// One bytecode instruction. Operands name registers in a flat `u64` file;
// every compiled expression node writes its own dedicated register before
// any reader, so registers never need clearing between cycles. Constants
// live in registers preloaded at build time.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub(crate) enum Insn {
    /// regs[dst] = values[net]
    LoadNet { dst: u32, net: u32 },
    /// regs[dst] = memories[mem][regs[addr]] (0 when out of range) & m
    MemRead {
        dst: u32,
        mem: u32,
        addr: u32,
        m: u64,
    },
    /// regs[dst] = (regs[src] >> lo) & m
    Slice { dst: u32, src: u32, lo: u32, m: u64 },
    /// regs[dst] = !regs[src] & m
    Not { dst: u32, src: u32, m: u64 },
    /// regs[dst] = (regs[src] == 0) as u64
    LNot { dst: u32, src: u32 },
    /// regs[dst] = (regs[src] != 0) as u64
    RedOr { dst: u32, src: u32 },
    /// regs[dst] = eval_binary(op, regs[a], regs[b], aw, bw) & m
    Binary {
        op: BinOp,
        dst: u32,
        a: u32,
        b: u32,
        aw: u32,
        bw: u32,
        m: u64,
    },
    /// regs[dst] = (if regs[cond] != 0 { regs[then] } else { regs[els] }) & m
    /// Eager select: both arms are pure, so evaluating both is sound.
    Select {
        dst: u32,
        cond: u32,
        then: u32,
        els: u32,
        m: u64,
    },
    /// regs[dst] = regs[src] & m (first concat part)
    ConcatFirst { dst: u32, src: u32, m: u64 },
    /// regs[dst] = (regs[dst] << shift) | (regs[src] & m)
    ConcatPush {
        dst: u32,
        src: u32,
        shift: u32,
        m: u64,
    },
    /// regs[dst] &= m (final concat width clamp)
    MaskReg { dst: u32, m: u64 },
    /// regs[dst] = sign_extend(regs[src] & fm, from) & m
    SignExtend {
        dst: u32,
        src: u32,
        from: u32,
        fm: u64,
        m: u64,
    },
    /// values[net] = regs[src] & m (settle tape: continuous assign)
    StoreNet { net: u32, src: u32, m: u64 },
    /// pend_nets.push((net, regs[src])) (step tape: non-blocking assign)
    EmitNet { net: u32, src: u32 },
    /// pend_mems.push((mem, regs[addr], regs[src]))
    EmitMem { mem: u32, addr: u32, src: u32 },
    /// if regs[guard] != 0 && regs[cond] == 0 { fail with msgs[msg] }
    Assert { guard: u32, cond: u32, msg: u32 },
    /// pc = target
    Jump { target: u32 },
    /// if regs[src] == 0 { pc = target }
    JumpIfZero { src: u32, target: u32 },
}

/// Lowers compiled expression trees into [`Insn`] tapes. One builder is
/// shared by the settle and step tapes so they share the register file and
/// constant pool.
#[derive(Default)]
struct TapeBuilder {
    insns: Vec<Insn>,
    next_reg: u32,
    /// Masked constant value -> preloaded register.
    consts: HashMap<u64, u32>,
    const_init: Vec<(u32, u64)>,
    msgs: Vec<String>,
}

impl TapeBuilder {
    fn reg(&mut self) -> u32 {
        let r = self.next_reg;
        self.next_reg += 1;
        r
    }

    /// Register preloaded with `value` (already masked).
    fn konst(&mut self, value: u64) -> u32 {
        if let Some(&r) = self.consts.get(&value) {
            return r;
        }
        let r = self.reg();
        self.consts.insert(value, r);
        self.const_init.push((r, value));
        r
    }

    /// Lower `e`, returning the register holding its (masked) value.
    fn expr(&mut self, e: &CExpr) -> u32 {
        match e {
            CExpr::Const { value, width } => self.konst(value & mask(*width)),
            CExpr::Net { index, .. } => {
                let dst = self.reg();
                self.insns.push(Insn::LoadNet {
                    dst,
                    net: *index as u32,
                });
                dst
            }
            CExpr::MemRead { mem, addr, width } => {
                let addr = self.expr(addr);
                let dst = self.reg();
                self.insns.push(Insn::MemRead {
                    dst,
                    mem: *mem as u32,
                    addr,
                    m: mask(*width),
                });
                dst
            }
            CExpr::Slice { base, hi, lo } => {
                let src = self.expr(base);
                let dst = self.reg();
                self.insns.push(Insn::Slice {
                    dst,
                    src,
                    lo: *lo,
                    m: mask(hi - lo + 1),
                });
                dst
            }
            CExpr::Unary { op, arg, width } => {
                let src = self.expr(arg);
                let dst = self.reg();
                self.insns.push(match op {
                    UnOp::Not => Insn::Not {
                        dst,
                        src,
                        m: mask(*width),
                    },
                    UnOp::LNot => Insn::LNot { dst, src },
                    UnOp::RedOr => Insn::RedOr { dst, src },
                });
                dst
            }
            CExpr::Binary {
                op,
                lhs,
                rhs,
                width,
            } => {
                let (aw, bw) = (lhs.width(), rhs.width());
                let a = self.expr(lhs);
                let b = self.expr(rhs);
                let dst = self.reg();
                self.insns.push(Insn::Binary {
                    op: *op,
                    dst,
                    a,
                    b,
                    aw,
                    bw,
                    m: mask(*width),
                });
                dst
            }
            CExpr::Ternary {
                cond,
                then,
                els,
                width,
            } => {
                let cond = self.expr(cond);
                let then = self.expr(then);
                let els = self.expr(els);
                let dst = self.reg();
                self.insns.push(Insn::Select {
                    dst,
                    cond,
                    then,
                    els,
                    m: mask(*width),
                });
                dst
            }
            CExpr::Concat { parts, width } => {
                let dst = self.reg();
                if parts.is_empty() {
                    return self.konst(0);
                }
                for (i, p) in parts.iter().enumerate() {
                    let w = p.width().min(63);
                    let src = self.expr(p);
                    if i == 0 {
                        self.insns.push(Insn::ConcatFirst {
                            dst,
                            src,
                            m: mask(w),
                        });
                    } else {
                        self.insns.push(Insn::ConcatPush {
                            dst,
                            src,
                            shift: w,
                            m: mask(w),
                        });
                    }
                }
                self.insns.push(Insn::MaskReg {
                    dst,
                    m: mask(*width),
                });
                dst
            }
            CExpr::SignExtend { arg, from, to } => {
                let src = self.expr(arg);
                let dst = self.reg();
                self.insns.push(Insn::SignExtend {
                    dst,
                    src,
                    from: *from,
                    fm: mask(*from),
                    m: mask(*to),
                });
                dst
            }
        }
    }

    fn stmt(&mut self, s: &CStmt) {
        match s {
            CStmt::AssignNet { net, rhs } => {
                let src = self.expr(rhs);
                self.insns.push(Insn::EmitNet {
                    net: *net as u32,
                    src,
                });
            }
            CStmt::AssignMem { mem, addr, rhs } => {
                let addr = self.expr(addr);
                let src = self.expr(rhs);
                self.insns.push(Insn::EmitMem {
                    mem: *mem as u32,
                    addr,
                    src,
                });
            }
            CStmt::If { cond, then, els } => {
                let cond = self.expr(cond);
                let to_else = self.insns.len();
                self.insns.push(Insn::JumpIfZero {
                    src: cond,
                    target: 0, // patched below
                });
                for t in then {
                    self.stmt(t);
                }
                if els.is_empty() {
                    let end = self.insns.len() as u32;
                    self.patch_jump(to_else, end);
                } else {
                    let to_end = self.insns.len();
                    self.insns.push(Insn::Jump { target: 0 });
                    let else_start = self.insns.len() as u32;
                    self.patch_jump(to_else, else_start);
                    for t in els {
                        self.stmt(t);
                    }
                    let end = self.insns.len() as u32;
                    self.patch_jump(to_end, end);
                }
            }
            CStmt::Assert {
                guard,
                cond,
                message,
            } => {
                let guard = self.expr(guard);
                let cond = self.expr(cond);
                let msg = self.msgs.len() as u32;
                self.msgs.push(message.clone());
                self.insns.push(Insn::Assert { guard, cond, msg });
            }
        }
    }

    fn patch_jump(&mut self, at: usize, to: u32) {
        match &mut self.insns[at] {
            Insn::Jump { target } | Insn::JumpIfZero { target, .. } => *target = to,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    /// Take the instructions lowered so far as one finished tape.
    fn take_tape(&mut self) -> Vec<Insn> {
        std::mem::take(&mut self.insns)
    }
}

/// Compile-time common-subexpression elimination over one tape.
///
/// Generated RTL recomputes the same guard and index expressions once per
/// process (one per processing element in an unrolled design); on the flat
/// tape those become literally identical pure instructions. Every register
/// has a single static writer except concat accumulators, so a pure insn is
/// fully described by its opcode + canonicalized operand registers, and a
/// duplicate's destination can simply be renamed to the first occurrence.
///
/// Soundness:
/// - Only *unconditionally executed* insns (outside every jump-delimited
///   region) publish into the table, so a reuse always reads a register
///   that was recomputed earlier in the same run of the tape.
/// - Effects (`StoreNet`/`EmitNet`/`EmitMem`/`Assert`/jumps) are never
///   removed; their operands are just renamed.
/// - `LoadNet` entries are invalidated when the settle tape stores to that
///   net (blocking-assign order matters there); the step tape reads a
///   stable pre-edge snapshot, so loads and memory reads dedupe globally.
/// - Concat accumulators mutate their destination across several insns, so
///   `ConcatFirst`/`ConcatPush`/`MaskReg` never publish (their consumers
///   may: the accumulator is stable once the chain is done).
/// - Store-to-load forwarding: after an unconditional `StoreNet` whose
///   source register provably fits the net's mask (the store is a plain
///   copy), later loads of that net rename to the source register instead
///   of re-reading the net. Mask confinement holds even for conditionally
///   executed defs: a skipped insn leaves the register at a value a prior
///   run of the same insn produced (or the 0 it was initialised with),
///   which is confined to the same mask.
///
/// `consts` carries the preloaded constant registers so their (exact)
/// values participate in the mask analysis.
fn cse_tape(tape: Vec<Insn>, consts: &[(u32, u64)]) -> Vec<Insn> {
    use Insn::*;
    let mut rep: HashMap<u32, u32> = HashMap::new();
    let resolve = |rep: &HashMap<u32, u32>, r: u32| -> u32 { *rep.get(&r).unwrap_or(&r) };
    let mut table: HashMap<Insn, u32> = HashMap::new();
    // Net index -> table key currently caching a load of that net.
    let mut net_loads: HashMap<u32, Insn> = HashMap::new();
    // Net index -> register known to hold exactly the net's current value.
    let mut net_fwd: HashMap<u32, u32> = HashMap::new();
    // Register -> mask its value is always confined to (reg & !mask == 0).
    let mut known: HashMap<u32, u64> = consts.iter().map(|&(r, v)| (r, v)).collect();
    let mut out: Vec<Insn> = Vec::with_capacity(tape.len());
    // old pc -> new pc, for patching forward jump targets afterward.
    let mut pc_map: Vec<u32> = Vec::with_capacity(tape.len() + 1);
    // Ends (old pcs) of the conditional regions currently open.
    let mut region_ends: Vec<u32> = Vec::new();

    for (pc, insn) in tape.into_iter().enumerate() {
        let pc = pc as u32;
        region_ends.retain(|&e| e > pc);
        pc_map.push(out.len() as u32);
        // Canonicalize operands through the representative map; dst fields
        // stay untouched (they are defs, not uses).
        let mut insn = insn;
        match &mut insn {
            LoadNet { .. } => {}
            MemRead { addr, .. } => *addr = resolve(&rep, *addr),
            Slice { src, .. }
            | Not { src, .. }
            | LNot { src, .. }
            | RedOr { src, .. }
            | SignExtend { src, .. }
            | ConcatFirst { src, .. }
            | ConcatPush { src, .. } => *src = resolve(&rep, *src),
            Binary { a, b, .. } => {
                *a = resolve(&rep, *a);
                *b = resolve(&rep, *b);
            }
            Select {
                cond, then, els, ..
            } => {
                *cond = resolve(&rep, *cond);
                *then = resolve(&rep, *then);
                *els = resolve(&rep, *els);
            }
            MaskReg { .. } => {}
            StoreNet { src, .. } | EmitNet { src, .. } => *src = resolve(&rep, *src),
            EmitMem { addr, src, .. } => {
                *addr = resolve(&rep, *addr);
                *src = resolve(&rep, *src);
            }
            Assert { guard, cond, .. } => {
                *guard = resolve(&rep, *guard);
                *cond = resolve(&rep, *cond);
            }
            Jump { .. } => {}
            JumpIfZero { src, .. } => *src = resolve(&rep, *src),
        }
        // Store-to-load forwarding: the net provably holds `src` verbatim.
        if let LoadNet { dst, net } = insn {
            if let Some(&src) = net_fwd.get(&net) {
                rep.insert(dst, src);
                continue;
            }
        }
        // Pure single-def insns: key = insn with dst zeroed, plus the mask
        // the result is confined to.
        let keyed: Option<(Insn, u32, u64)> = match insn.clone() {
            LoadNet { dst, net } => Some((LoadNet { dst: 0, net }, dst, u64::MAX)),
            MemRead { dst, mem, addr, m } => Some((
                MemRead {
                    dst: 0,
                    mem,
                    addr,
                    m,
                },
                dst,
                m,
            )),
            Slice { dst, src, lo, m } => Some((Slice { dst: 0, src, lo, m }, dst, m)),
            Not { dst, src, m } => Some((Not { dst: 0, src, m }, dst, m)),
            LNot { dst, src } => Some((LNot { dst: 0, src }, dst, 1)),
            RedOr { dst, src } => Some((RedOr { dst: 0, src }, dst, 1)),
            Binary {
                op,
                dst,
                a,
                b,
                aw,
                bw,
                m,
            } => Some((
                Binary {
                    op,
                    dst: 0,
                    a,
                    b,
                    aw,
                    bw,
                    m,
                },
                dst,
                m,
            )),
            Select {
                dst,
                cond,
                then,
                els,
                m,
            } => Some((
                Select {
                    dst: 0,
                    cond,
                    then,
                    els,
                    m,
                },
                dst,
                m,
            )),
            SignExtend {
                dst,
                src,
                from,
                fm,
                m,
            } => Some((
                SignExtend {
                    dst: 0,
                    src,
                    from,
                    fm,
                    m,
                },
                dst,
                m,
            )),
            _ => None,
        };
        match keyed {
            Some((key, dst, result_mask)) => {
                if let Some(&prev) = table.get(&key) {
                    rep.insert(dst, prev);
                    continue; // drop the duplicate
                }
                if region_ends.is_empty() {
                    if let LoadNet { net, .. } = key {
                        net_loads.insert(net, key.clone());
                    }
                    table.insert(key, dst);
                }
                if result_mask != u64::MAX {
                    known.insert(dst, result_mask);
                }
                out.push(insn);
            }
            None => {
                match insn {
                    StoreNet { net, src, m } => {
                        // Blocking assign: later loads of this net see the
                        // new value, so the cached load (if any) is stale.
                        if let Some(key) = net_loads.remove(&net) {
                            table.remove(&key);
                        }
                        if region_ends.is_empty() && known.get(&src).is_some_and(|&km| km & !m == 0)
                        {
                            net_fwd.insert(net, src);
                        } else {
                            net_fwd.remove(&net);
                        }
                    }
                    ConcatFirst { dst, m, .. } => {
                        known.insert(dst, m);
                    }
                    ConcatPush { dst, .. } => {
                        // Accumulator grows past its own push mask.
                        known.remove(&dst);
                    }
                    MaskReg { dst, m } => {
                        known.insert(dst, m);
                    }
                    Jump { target } | JumpIfZero { target, .. } => {
                        region_ends.push(target);
                    }
                    _ => {}
                }
                out.push(insn);
            }
        }
    }
    pc_map.push(out.len() as u32);

    for insn in &mut out {
        if let Jump { target } | JumpIfZero { target, .. } = insn {
            *target = pc_map[*target as usize];
        }
    }
    out
}

/// Read-only view of the compiled tapes and name tables, consumed by the
/// transition-system lowering in [`crate::tsys`]. `values`, `memories` and
/// `regs` carry the *reset-state* contents (initial net values, zeroed
/// memories, preloaded constant registers) — the view must be taken from a
/// freshly built simulator, before any `step`.
pub(crate) struct TapeView<'a> {
    pub net_names: &'a [String],
    pub net_width: &'a [u32],
    pub values: &'a [u64],
    pub mem_names: &'a [String],
    pub mem_width: &'a [u32],
    pub memories: &'a [Vec<u64>],
    pub settle_tape: &'a [Insn],
    pub step_tape: &'a [Insn],
    pub regs: &'a [u64],
    pub msgs: &'a [String],
}

impl Simulator {
    pub(crate) fn tape_view(&self) -> TapeView<'_> {
        TapeView {
            net_names: &self.net_names,
            net_width: &self.net_width,
            values: &self.values,
            mem_names: &self.mem_names,
            mem_width: &self.mem_width,
            memories: &self.memories,
            settle_tape: &self.settle_tape,
            step_tape: &self.step_tape,
            regs: &self.regs,
            msgs: &self.msgs,
        }
    }
}

impl Simulator {
    /// (assigns, settle-tape insns, always stmts, step-tape insns, regs).
    pub fn tape_stats(&self) -> (usize, usize, usize, usize, usize) {
        (
            self.assigns.len(),
            self.settle_tape.len(),
            self.always.len(),
            self.step_tape.len(),
            self.regs.len(),
        )
    }
}

/// VCD (value-change-dump) waveform recording state.
struct Vcd {
    out: Box<dyn std::io::Write>,
    /// (net index, identifier code) pairs being traced.
    traced: Vec<(usize, String)>,
    last: Vec<Option<u64>>,
}

/// The simulator. See module docs.
pub struct Simulator {
    net_names: Vec<String>,
    net_index: HashMap<String, usize>,
    net_width: Vec<u32>,
    values: Vec<u64>,
    mem_names: Vec<String>,
    mem_index: HashMap<String, usize>,
    mem_width: Vec<u32>,
    memories: Vec<Vec<u64>>,
    /// Continuous assigns in topological order: (net, expr).
    assigns: Vec<(usize, CExpr)>,
    always: Vec<CStmt>,
    /// Bytecode lowering of `assigns` (StoreNet per assign, in topo order).
    settle_tape: Vec<Insn>,
    /// Bytecode lowering of `always` (EmitNet/EmitMem/Assert + jumps).
    step_tape: Vec<Insn>,
    /// Register file shared by both tapes; constants preloaded at build.
    regs: Vec<u64>,
    /// Assertion messages referenced by `Insn::Assert`.
    msgs: Vec<String>,
    /// Reusable non-blocking update buffers (allocation-free stepping).
    pending_nets: Vec<(u32, u64)>,
    pending_mems: Vec<(u32, u64, u64)>,
    engine: Engine,
    /// Memory read ports appearing in the assign network: each is sampled
    /// once per settled cycle (reported as `sim.mem_read_events`).
    mem_read_ports: u64,
    cycle: u64,
    /// Watchdog: total cycles the simulation may run before `step` refuses
    /// with a clean error instead of looping forever on a hung design.
    cycle_budget: Option<u64>,
    dirty: bool,
    vcd: Option<Vcd>,
    /// Opt-in telemetry plane (toggle counters, cone quiescence, per-insn
    /// counters). `None` (the default) keeps the hot loop unperturbed: the
    /// only cost is this Option check in `settle`/`step`.
    telemetry: Option<Box<Telemetry>>,
}

impl Simulator {
    /// Flatten `top` within `design` and compile it for simulation.
    ///
    /// # Errors
    /// Fails on elaboration errors, undeclared nets, or combinational loops.
    pub fn new(design: &Design, top: &str) -> Result<Self, BuildError> {
        let flat = flatten(design, top)?;
        Self::from_flat(&flat)
    }

    /// Build from an already-flat module (no instances).
    pub fn from_flat(flat: &VModule) -> Result<Self, BuildError> {
        let mut sim = Simulator {
            net_names: Vec::new(),
            net_index: HashMap::new(),
            net_width: Vec::new(),
            values: Vec::new(),
            mem_names: Vec::new(),
            mem_index: HashMap::new(),
            mem_width: Vec::new(),
            memories: Vec::new(),
            assigns: Vec::new(),
            always: Vec::new(),
            settle_tape: Vec::new(),
            step_tape: Vec::new(),
            regs: Vec::new(),
            msgs: Vec::new(),
            pending_nets: Vec::new(),
            pending_mems: Vec::new(),
            engine: Engine::default(),
            mem_read_ports: 0,
            cycle: 0,
            cycle_budget: None,
            dirty: true,
            vcd: None,
            telemetry: None,
        };
        for p in &flat.ports {
            sim.add_net(&p.name, p.width, 0);
        }
        for n in &flat.nets {
            sim.add_net(&n.name, n.width, n.init.unwrap_or(0));
        }
        for m in &flat.memories {
            sim.mem_index.insert(m.name.clone(), sim.memories.len());
            sim.mem_names.push(m.name.clone());
            sim.mem_width.push(m.width);
            sim.memories.push(vec![0; m.depth as usize]);
        }

        // Compile assigns and order them topologically.
        let mut compiled: Vec<(usize, CExpr, Vec<usize>)> = Vec::new();
        for a in &flat.assigns {
            let net = sim.net(&a.lhs)?;
            let rhs = sim.compile(&a.rhs)?;
            let mut deps = Vec::new();
            collect_deps(&rhs, &mut deps);
            compiled.push((net, rhs, deps));
        }
        sim.assigns = topo_sort(&sim.net_names, compiled)?;
        sim.mem_read_ports = sim.assigns.iter().map(|(_, e)| count_mem_reads(e)).sum();

        for blk in &flat.always {
            for s in &blk.stmts {
                let c = sim.compile_stmt(s)?;
                sim.always.push(c);
            }
        }

        // Lower both phases to bytecode. The tapes share one register file
        // and constant pool.
        let mut tb = TapeBuilder::default();
        for (net, expr) in &sim.assigns {
            let src = tb.expr(expr);
            tb.insns.push(Insn::StoreNet {
                net: *net as u32,
                src,
                m: mask(sim.net_width[*net]),
            });
        }
        let settle = tb.take_tape();
        sim.settle_tape = cse_tape(settle, &tb.const_init);
        for s in &sim.always {
            tb.stmt(s);
        }
        let step = tb.take_tape();
        sim.step_tape = cse_tape(step, &tb.const_init);
        sim.regs = vec![0; tb.next_reg as usize];
        for (r, v) in &tb.const_init {
            sim.regs[*r as usize] = *v;
        }
        sim.msgs = tb.msgs;
        Ok(sim)
    }

    /// Select the execution engine (defaults to [`Engine::Bytecode`], or
    /// [`Engine::TreeWalk`] when built with the `treewalk-sim` feature).
    /// Both produce bit-identical results; the tree-walk evaluator exists
    /// as a differential-testing oracle.
    pub fn set_engine(&mut self, engine: Engine) {
        self.engine = engine;
    }

    /// The currently selected execution engine.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    fn add_net(&mut self, name: &str, width: u32, init: u64) {
        let idx = self.values.len();
        self.net_index.insert(name.to_string(), idx);
        self.net_names.push(name.to_string());
        self.net_width.push(width.max(1));
        self.values.push(init & mask(width.max(1)));
    }

    fn net(&self, name: &str) -> Result<usize, BuildError> {
        self.net_index
            .get(name)
            .copied()
            .ok_or_else(|| BuildError::UnknownNet(name.to_string()))
    }

    fn compile(&self, e: &Expr) -> Result<CExpr, BuildError> {
        Ok(match e {
            Expr::Const { value, width } => CExpr::Const {
                value: *value,
                width: *width,
            },
            Expr::Ref(n) => {
                let index = self.net(n)?;
                CExpr::Net {
                    index,
                    width: self.net_width[index],
                }
            }
            Expr::MemRead { mem, addr } => {
                let m = *self
                    .mem_index
                    .get(mem)
                    .ok_or_else(|| BuildError::UnknownNet(mem.clone()))?;
                CExpr::MemRead {
                    mem: m,
                    addr: Box::new(self.compile(addr)?),
                    width: self.mem_width[m],
                }
            }
            Expr::Slice { base, hi, lo } => CExpr::Slice {
                base: Box::new(self.compile(base)?),
                hi: *hi,
                lo: *lo,
            },
            Expr::Unary { op, arg } => {
                let arg = self.compile(arg)?;
                let width = match op {
                    UnOp::Not => arg.width(),
                    UnOp::LNot | UnOp::RedOr => 1,
                };
                CExpr::Unary {
                    op: *op,
                    arg: Box::new(arg),
                    width,
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let lhs = self.compile(lhs)?;
                let rhs = self.compile(rhs)?;
                let width = if op.is_comparison() {
                    1
                } else if *op == BinOp::Mul {
                    (lhs.width() + rhs.width()).min(64)
                } else {
                    lhs.width().max(rhs.width())
                };
                CExpr::Binary {
                    op: *op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                    width,
                }
            }
            Expr::Ternary { cond, then, els } => {
                let then = self.compile(then)?;
                let els = self.compile(els)?;
                let width = then.width().max(els.width());
                CExpr::Ternary {
                    cond: Box::new(self.compile(cond)?),
                    then: Box::new(then),
                    els: Box::new(els),
                    width,
                }
            }
            Expr::Concat(parts) => {
                let parts: Vec<CExpr> = parts
                    .iter()
                    .map(|p| self.compile(p))
                    .collect::<Result<_, _>>()?;
                let width = parts.iter().map(CExpr::width).sum::<u32>().min(64);
                CExpr::Concat { parts, width }
            }
            Expr::SignExtend { arg, from, to } => CExpr::SignExtend {
                arg: Box::new(self.compile(arg)?),
                from: *from,
                to: *to,
            },
        })
    }

    fn compile_stmt(&self, s: &Stmt) -> Result<CStmt, BuildError> {
        Ok(match s {
            Stmt::NonBlocking { lhs, rhs } => match lhs {
                LValue::Net(n) => CStmt::AssignNet {
                    net: self.net(n)?,
                    rhs: self.compile(rhs)?,
                },
                LValue::MemElem { mem, addr } => CStmt::AssignMem {
                    mem: *self
                        .mem_index
                        .get(mem)
                        .ok_or_else(|| BuildError::UnknownNet(mem.clone()))?,
                    addr: self.compile(addr)?,
                    rhs: self.compile(rhs)?,
                },
            },
            Stmt::If { cond, then, els } => CStmt::If {
                cond: self.compile(cond)?,
                then: then
                    .iter()
                    .map(|t| self.compile_stmt(t))
                    .collect::<Result<_, _>>()?,
                els: els
                    .iter()
                    .map(|t| self.compile_stmt(t))
                    .collect::<Result<_, _>>()?,
            },
            Stmt::Assert {
                guard,
                cond,
                message,
            } => CStmt::Assert {
                guard: self.compile(guard)?,
                cond: self.compile(cond)?,
                message: message.clone(),
            },
        })
    }

    // ------------------------------------------------------------------ API

    /// Drive an input port. Takes effect at the next settle.
    ///
    /// # Panics
    /// Panics on an unknown net name.
    pub fn set(&mut self, name: &str, value: u64) {
        let idx = self.net_index[name];
        self.values[idx] = value & mask(self.net_width[idx]);
        self.dirty = true;
    }

    /// Read a net's current value (settling combinational logic first).
    ///
    /// # Panics
    /// Panics on an unknown net name.
    pub fn get(&mut self, name: &str) -> u64 {
        if self.dirty {
            self.settle();
        }
        self.values[self.net_index[name]]
    }

    /// Read a net as a sign-extended integer.
    pub fn get_signed(&mut self, name: &str) -> i64 {
        let idx = self.net_index[name];
        let w = self.net_width[idx];
        let v = self.get(name);
        sign_extend(v, w) as i64
    }

    /// Preload a memory word (testbench initialization).
    ///
    /// # Panics
    /// Panics on unknown memory or out-of-range address.
    pub fn write_mem(&mut self, name: &str, addr: u64, value: u64) {
        let m = self.mem_index[name];
        let w = self.mem_width[m];
        self.memories[m][addr as usize] = value & mask(w);
    }

    /// Read a memory word.
    ///
    /// # Panics
    /// Panics on unknown memory or out-of-range address.
    pub fn read_mem(&self, name: &str, addr: u64) -> u64 {
        self.memories[self.mem_index[name]][addr as usize]
    }

    /// Whether a memory with this (flattened) name exists.
    pub fn has_mem(&self, name: &str) -> bool {
        self.mem_index.contains_key(name)
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Cap the total number of cycles this simulator may execute. Once the
    /// budget is reached, [`step`](Self::step) fails with a clean watchdog
    /// error rather than letting a hung design spin forever. `None` (the
    /// default) removes the cap.
    pub fn set_cycle_budget(&mut self, budget: Option<u64>) {
        self.cycle_budget = budget;
    }

    /// Start dumping a VCD waveform of every net to `out` (e.g. a file).
    /// One VCD timestep per clock cycle; values are sampled after each
    /// settle.
    ///
    /// # Errors
    /// Propagates write errors from emitting the header.
    pub fn start_vcd(&mut self, mut out: Box<dyn std::io::Write>) -> std::io::Result<()> {
        use std::io::Write;
        writeln!(out, "$timescale 1ns $end")?;
        writeln!(out, "$scope module top $end")?;
        let mut traced = Vec::new();
        for (i, name) in self.net_names.iter().enumerate() {
            let code = vcd_code(i);
            writeln!(
                out,
                "$var wire {} {} {} $end",
                self.net_width[i], code, name
            )?;
            traced.push((i, code));
        }
        writeln!(out, "$upscope $end")?;
        writeln!(out, "$enddefinitions $end")?;
        let last = vec![None; self.values.len()];
        self.vcd = Some(Vcd { out, traced, last });
        self.emit_vcd();
        Ok(())
    }

    fn emit_vcd(&mut self) {
        if self.dirty {
            self.settle();
        }
        let Some(vcd) = &mut self.vcd else { return };
        use std::io::Write;
        let _ = writeln!(vcd.out, "#{}", self.cycle);
        for (i, code) in &vcd.traced {
            let v = self.values[*i];
            if vcd.last[*i] != Some(v) {
                vcd.last[*i] = Some(v);
                if self.net_width[*i] == 1 {
                    let _ = writeln!(vcd.out, "{v}{code}");
                } else {
                    let _ = writeln!(vcd.out, "b{:b} {code}", v);
                }
            }
        }
    }

    /// Evaluate all continuous assigns (in topological order).
    pub fn settle(&mut self) {
        // Two iterations would be needed only for stale memory reads; assigns
        // are topologically ordered so one pass suffices.
        match self.engine {
            Engine::Bytecode => {
                let mut failure = None;
                if let Some(t) = self.telemetry.as_deref_mut() {
                    // The counting interpreter IS the executor here: it runs
                    // the instrumented clone of the tape against the live
                    // state, so results stay bit-identical.
                    run_tape_counting(
                        &t.settle_tape,
                        &mut self.regs,
                        &mut self.values,
                        &self.memories,
                        &self.msgs,
                        &mut self.pending_nets,
                        &mut self.pending_mems,
                        &mut failure,
                        &mut t.settle_exec,
                        &mut t.settle_changed,
                        &t.net_masks,
                        &t.mem_masks,
                    );
                } else {
                    run_tape(
                        &self.settle_tape,
                        &mut self.regs,
                        &mut self.values,
                        &self.memories,
                        &self.msgs,
                        &mut self.pending_nets,
                        &mut self.pending_mems,
                        &mut failure,
                    );
                }
                debug_assert!(failure.is_none(), "settle tape has no assertions");
            }
            Engine::TreeWalk => {
                if let Some(t) = self.telemetry.as_deref_mut() {
                    // Counts come from a scratch run of the same tape the
                    // bytecode engine would execute, so both engines report
                    // identical telemetry; the tree-walk below still drives
                    // the real state.
                    t.scratch_values.copy_from_slice(&self.values);
                    t.scratch_pend_nets.clear();
                    t.scratch_pend_mems.clear();
                    let mut failure = None;
                    run_tape_counting(
                        &t.settle_tape,
                        &mut t.scratch_regs,
                        &mut t.scratch_values,
                        &self.memories,
                        &self.msgs,
                        &mut t.scratch_pend_nets,
                        &mut t.scratch_pend_mems,
                        &mut failure,
                        &mut t.settle_exec,
                        &mut t.settle_changed,
                        &t.net_masks,
                        &t.mem_masks,
                    );
                }
                for i in 0..self.assigns.len() {
                    let (net, expr) = (self.assigns[i].0, &self.assigns[i].1);
                    let v = eval(expr, &self.values, &self.memories);
                    self.values[net] = v & mask(self.net_width[net]);
                }
            }
        }
        self.dirty = false;
    }

    /// Advance one clock edge with non-blocking semantics.
    ///
    /// # Errors
    /// Returns an error when an assertion fires or the cycle budget set via
    /// [`set_cycle_budget`](Self::set_cycle_budget) is exhausted.
    pub fn step(&mut self) -> Result<(), VSimError> {
        if let Some(budget) = self.cycle_budget {
            if self.cycle >= budget {
                return Err(VSimError {
                    cycle: self.cycle,
                    message: format!(
                        "cycle budget of {budget} cycles exhausted (watchdog; \
                         raise with set_cycle_budget or --sim-max-cycles)"
                    ),
                });
            }
        }
        if self.dirty {
            self.settle();
        }
        // Reuse the pending-update buffers across steps: stepping allocates
        // nothing in either engine.
        let mut net_updates = std::mem::take(&mut self.pending_nets);
        let mut mem_updates = std::mem::take(&mut self.pending_mems);
        net_updates.clear();
        mem_updates.clear();
        let mut failure: Option<String> = None;
        match self.engine {
            Engine::Bytecode => {
                if let Some(t) = self.telemetry.as_deref_mut() {
                    run_tape_counting(
                        &t.step_tape,
                        &mut self.regs,
                        &mut self.values,
                        &self.memories,
                        &self.msgs,
                        &mut net_updates,
                        &mut mem_updates,
                        &mut failure,
                        &mut t.step_exec,
                        &mut t.step_changed,
                        &t.net_masks,
                        &t.mem_masks,
                    );
                } else {
                    run_tape(
                        &self.step_tape,
                        &mut self.regs,
                        &mut self.values,
                        &self.memories,
                        &self.msgs,
                        &mut net_updates,
                        &mut mem_updates,
                        &mut failure,
                    );
                }
            }
            Engine::TreeWalk => {
                if let Some(t) = self.telemetry.as_deref_mut() {
                    t.scratch_values.copy_from_slice(&self.values);
                    t.scratch_pend_nets.clear();
                    t.scratch_pend_mems.clear();
                    let mut scratch_failure = None;
                    run_tape_counting(
                        &t.step_tape,
                        &mut t.scratch_regs,
                        &mut t.scratch_values,
                        &self.memories,
                        &self.msgs,
                        &mut t.scratch_pend_nets,
                        &mut t.scratch_pend_mems,
                        &mut scratch_failure,
                        &mut t.step_exec,
                        &mut t.step_changed,
                        &t.net_masks,
                        &t.mem_masks,
                    );
                }
                for i in 0..self.always.len() {
                    self.exec(
                        &self.always[i],
                        &mut net_updates,
                        &mut mem_updates,
                        &mut failure,
                    );
                }
            }
        }
        if let Some(message) = failure {
            self.pending_nets = net_updates;
            self.pending_mems = mem_updates;
            return Err(VSimError {
                cycle: self.cycle,
                message,
            });
        }
        obs::counter_add("sim", "cycles", 1);
        obs::counter_add("sim", "net_updates", net_updates.len() as u64);
        obs::counter_add("sim", "mem_write_events", mem_updates.len() as u64);
        obs::counter_add("sim", "mem_read_events", self.mem_read_ports);
        for &(net, v) in &net_updates {
            let net = net as usize;
            self.values[net] = v & mask(self.net_width[net]);
        }
        for &(mem, addr, v) in &mem_updates {
            let mem = mem as usize;
            let depth = self.memories[mem].len() as u64;
            if addr < depth {
                self.memories[mem][addr as usize] = v & mask(self.mem_width[mem]);
                if let Some(t) = self.telemetry.as_deref_mut() {
                    t.mems_written[mem] = true;
                }
            }
            // Out-of-range writes are dropped; assertions catch them first.
        }
        self.pending_nets = net_updates;
        self.pending_mems = mem_updates;
        self.cycle += 1;
        self.settle();
        if self.telemetry.is_some() {
            self.telemetry_account();
        }
        if self.vcd.is_some() {
            self.emit_vcd();
        }
        Ok(())
    }

    /// One telemetry accounting point: called at the end of each `step`,
    /// after the post-edge settle, comparing the newly settled values
    /// against the previous accounting point's snapshot.
    fn telemetry_account(&mut self) {
        let Some(t) = self.telemetry.as_deref_mut() else {
            return;
        };
        t.cycles += 1;
        let cyc = t.cycles - 1; // 0-based index of the cycle just completed
        for i in 0..self.values.len() {
            let new = self.values[i];
            let old = t.prev[i];
            if new != old {
                t.toggle_cycles[i] += 1;
                t.bit_toggles[i] += u64::from((new ^ old).count_ones());
            }
            if new != 0 {
                t.high_cycles[i] += 1;
            }
        }
        for cone in t.settle_cones.iter_mut().chain(t.step_cones.iter_mut()) {
            let mut quiet = cone
                .inputs
                .iter()
                .all(|&n| self.values[n as usize] == t.prev[n as usize]);
            if quiet {
                quiet = cone.mem_inputs.iter().all(|&m| !t.mems_written[m as usize]);
            }
            if quiet {
                cone.quiescent_cycles += 1;
                if t.record_trace {
                    if let Some(start) = cone.busy_since.take() {
                        cone.busy_intervals.push((start, cyc));
                    }
                }
            } else if t.record_trace && cone.busy_since.is_none() {
                cone.busy_since = Some(cyc);
            }
        }
        t.prev.copy_from_slice(&self.values);
        for w in &mut t.mems_written {
            *w = false;
        }
    }

    /// Run `n` clock cycles.
    ///
    /// # Errors
    /// Propagates the first assertion failure.
    pub fn run(&mut self, n: u64) -> Result<(), VSimError> {
        for _ in 0..n {
            self.step()?;
        }
        Ok(())
    }

    /// Step until `net` becomes non-zero, up to `max_cycles`.
    ///
    /// # Errors
    /// Fails on assertion or timeout.
    pub fn step_until(&mut self, net: &str, max_cycles: u64) -> Result<u64, VSimError> {
        let start = self.cycle;
        loop {
            if self.get(net) != 0 {
                return Ok(self.cycle - start);
            }
            if self.cycle - start >= max_cycles {
                return Err(VSimError {
                    cycle: self.cycle,
                    message: format!("'{net}' did not assert within {max_cycles} cycles"),
                });
            }
            self.step()?;
        }
    }

    fn exec(
        &self,
        stmt: &CStmt,
        net_updates: &mut Vec<(u32, u64)>,
        mem_updates: &mut Vec<(u32, u64, u64)>,
        failure: &mut Option<String>,
    ) {
        match stmt {
            CStmt::AssignNet { net, rhs } => {
                net_updates.push((*net as u32, eval(rhs, &self.values, &self.memories)));
            }
            CStmt::AssignMem { mem, addr, rhs } => {
                let a = eval(addr, &self.values, &self.memories);
                let v = eval(rhs, &self.values, &self.memories);
                mem_updates.push((*mem as u32, a, v));
            }
            CStmt::If { cond, then, els } => {
                let branch = if eval(cond, &self.values, &self.memories) != 0 {
                    then
                } else {
                    els
                };
                for s in branch {
                    self.exec(s, net_updates, mem_updates, failure);
                }
            }
            CStmt::Assert {
                guard,
                cond,
                message,
            } => {
                if failure.is_none()
                    && eval(guard, &self.values, &self.memories) != 0
                    && eval(cond, &self.values, &self.memories) == 0
                {
                    *failure = Some(message.clone());
                }
            }
        }
    }
}

/// Short printable VCD identifier for signal `i`.
fn vcd_code(mut i: usize) -> String {
    let mut s = String::new();
    loop {
        s.push((b'!' + (i % 94) as u8) as char);
        i /= 94;
        if i == 0 {
            break;
        }
    }
    s
}

pub(crate) fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

fn sign_extend(v: u64, width: u32) -> i128 {
    if width >= 64 {
        return v as i64 as i128;
    }
    let sign = 1u64 << (width - 1);
    if v & sign != 0 {
        v as i128 - (1i128 << width)
    } else {
        v as i128
    }
}

fn eval(e: &CExpr, values: &[u64], memories: &[Vec<u64>]) -> u64 {
    match e {
        CExpr::Const { value, width } => value & mask(*width),
        CExpr::Net { index, .. } => values[*index],
        CExpr::MemRead { mem, addr, width } => {
            let a = eval(addr, values, memories) as usize;
            memories[*mem].get(a).copied().unwrap_or(0) & mask(*width)
        }
        CExpr::Slice { base, hi, lo } => {
            let v = eval(base, values, memories);
            (v >> lo) & mask(hi - lo + 1)
        }
        CExpr::Unary { op, arg, width } => {
            let a = eval(arg, values, memories);
            let r = match op {
                UnOp::Not => !a,
                UnOp::LNot => u64::from(a == 0),
                UnOp::RedOr => u64::from(a != 0),
            };
            r & mask(*width)
        }
        CExpr::Binary {
            op,
            lhs,
            rhs,
            width,
        } => {
            let a = eval(lhs, values, memories);
            let b = eval(rhs, values, memories);
            eval_binary(*op, a, b, lhs.width(), rhs.width()) & mask(*width)
        }
        CExpr::Ternary {
            cond,
            then,
            els,
            width,
        } => {
            let r = if eval(cond, values, memories) != 0 {
                eval(then, values, memories)
            } else {
                eval(els, values, memories)
            };
            r & mask(*width)
        }
        CExpr::Concat { parts, width } => {
            let mut acc: u64 = 0;
            for p in parts {
                let w = p.width().min(63);
                acc = (acc << w) | (eval(p, values, memories) & mask(w));
            }
            acc & mask(*width)
        }
        CExpr::SignExtend { arg, from, to } => {
            let v = eval(arg, values, memories);
            (sign_extend(v & mask(*from), *from) as u64) & mask(*to)
        }
    }
}

/// Unmasked binary-op semantics, shared by the tree-walk evaluator and the
/// bytecode executor so the two engines agree bit for bit by construction.
#[inline]
fn eval_binary(op: BinOp, a: u64, b: u64, aw: u32, bw: u32) -> u64 {
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => {
            if b >= 64 {
                0
            } else {
                a.wrapping_shl(b as u32)
            }
        }
        BinOp::LShr => {
            if b >= 64 {
                0
            } else {
                a.wrapping_shr(b as u32)
            }
        }
        BinOp::AShr => {
            let sa = sign_extend(a, aw);
            (sa >> b.min(127) as i32) as u64
        }
        BinOp::Eq => u64::from(a == b),
        BinOp::Ne => u64::from(a != b),
        BinOp::SLt => u64::from(sign_extend(a, aw) < sign_extend(b, bw)),
        BinOp::SLe => u64::from(sign_extend(a, aw) <= sign_extend(b, bw)),
        BinOp::SGt => u64::from(sign_extend(a, aw) > sign_extend(b, bw)),
        BinOp::SGe => u64::from(sign_extend(a, aw) >= sign_extend(b, bw)),
        BinOp::ULt => u64::from(a < b),
        BinOp::ULe => u64::from(a <= b),
    }
}

/// Execute one bytecode tape: a linear sweep over preallocated buffers with
/// no recursion and no allocation (assertion failure aside).
#[allow(clippy::too_many_arguments)]
fn run_tape(
    tape: &[Insn],
    regs: &mut [u64],
    values: &mut [u64],
    memories: &[Vec<u64>],
    msgs: &[String],
    pend_nets: &mut Vec<(u32, u64)>,
    pend_mems: &mut Vec<(u32, u64, u64)>,
    failure: &mut Option<String>,
) {
    let mut pc = 0usize;
    while pc < tape.len() {
        match tape[pc] {
            Insn::LoadNet { dst, net } => regs[dst as usize] = values[net as usize],
            Insn::MemRead { dst, mem, addr, m } => {
                let a = regs[addr as usize] as usize;
                regs[dst as usize] = memories[mem as usize].get(a).copied().unwrap_or(0) & m;
            }
            Insn::Slice { dst, src, lo, m } => {
                regs[dst as usize] = (regs[src as usize] >> lo) & m;
            }
            Insn::Not { dst, src, m } => regs[dst as usize] = !regs[src as usize] & m,
            Insn::LNot { dst, src } => regs[dst as usize] = u64::from(regs[src as usize] == 0),
            Insn::RedOr { dst, src } => regs[dst as usize] = u64::from(regs[src as usize] != 0),
            Insn::Binary {
                op,
                dst,
                a,
                b,
                aw,
                bw,
                m,
            } => {
                regs[dst as usize] =
                    eval_binary(op, regs[a as usize], regs[b as usize], aw, bw) & m;
            }
            Insn::Select {
                dst,
                cond,
                then,
                els,
                m,
            } => {
                let v = if regs[cond as usize] != 0 {
                    regs[then as usize]
                } else {
                    regs[els as usize]
                };
                regs[dst as usize] = v & m;
            }
            Insn::ConcatFirst { dst, src, m } => regs[dst as usize] = regs[src as usize] & m,
            Insn::ConcatPush { dst, src, shift, m } => {
                regs[dst as usize] = (regs[dst as usize] << shift) | (regs[src as usize] & m);
            }
            Insn::MaskReg { dst, m } => regs[dst as usize] &= m,
            Insn::SignExtend {
                dst,
                src,
                from,
                fm,
                m,
            } => {
                regs[dst as usize] = (sign_extend(regs[src as usize] & fm, from) as u64) & m;
            }
            Insn::StoreNet { net, src, m } => values[net as usize] = regs[src as usize] & m,
            Insn::EmitNet { net, src } => pend_nets.push((net, regs[src as usize])),
            Insn::EmitMem { mem, addr, src } => {
                pend_mems.push((mem, regs[addr as usize], regs[src as usize]));
            }
            Insn::Assert { guard, cond, msg } => {
                if failure.is_none() && regs[guard as usize] != 0 && regs[cond as usize] == 0 {
                    *failure = Some(msgs[msg as usize].clone());
                }
            }
            Insn::Jump { target } => {
                pc = target as usize;
                continue;
            }
            Insn::JumpIfZero { src, target } => {
                if regs[src as usize] == 0 {
                    pc = target as usize;
                    continue;
                }
            }
        }
        pc += 1;
    }
}

fn count_mem_reads(e: &CExpr) -> u64 {
    match e {
        CExpr::Const { .. } | CExpr::Net { .. } => 0,
        CExpr::MemRead { addr, .. } => 1 + count_mem_reads(addr),
        CExpr::Slice { base, .. } => count_mem_reads(base),
        CExpr::Unary { arg, .. } => count_mem_reads(arg),
        CExpr::Binary { lhs, rhs, .. } => count_mem_reads(lhs) + count_mem_reads(rhs),
        CExpr::Ternary {
            cond, then, els, ..
        } => count_mem_reads(cond) + count_mem_reads(then) + count_mem_reads(els),
        CExpr::Concat { parts, .. } => parts.iter().map(count_mem_reads).sum(),
        CExpr::SignExtend { arg, .. } => count_mem_reads(arg),
    }
}

fn collect_deps(e: &CExpr, out: &mut Vec<usize>) {
    match e {
        CExpr::Const { .. } => {}
        CExpr::Net { index, .. } => out.push(*index),
        CExpr::MemRead { addr, .. } => collect_deps(addr, out),
        CExpr::Slice { base, .. } => collect_deps(base, out),
        CExpr::Unary { arg, .. } => collect_deps(arg, out),
        CExpr::Binary { lhs, rhs, .. } => {
            collect_deps(lhs, out);
            collect_deps(rhs, out);
        }
        CExpr::Ternary {
            cond, then, els, ..
        } => {
            collect_deps(cond, out);
            collect_deps(then, out);
            collect_deps(els, out);
        }
        CExpr::Concat { parts, .. } => {
            for p in parts {
                collect_deps(p, out);
            }
        }
        CExpr::SignExtend { arg, .. } => collect_deps(arg, out),
    }
}

/// Order assigns so every net is computed after the nets it reads. Nets that
/// are not assign targets (ports, regs) are sources.
fn topo_sort(
    net_names: &[String],
    compiled: Vec<(usize, CExpr, Vec<usize>)>,
) -> Result<Vec<(usize, CExpr)>, BuildError> {
    let mut producer: HashMap<usize, usize> = HashMap::new(); // net -> assign idx
    for (i, (net, _, _)) in compiled.iter().enumerate() {
        producer.insert(*net, i);
    }
    let n = compiled.len();
    let mut indegree = vec![0usize; n];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, (_, _, deps)) in compiled.iter().enumerate() {
        for d in deps {
            if let Some(&p) = producer.get(d) {
                dependents[p].push(i);
                indegree[i] += 1;
            }
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(i) = queue.pop() {
        order.push(i);
        for &j in &dependents[i] {
            indegree[j] -= 1;
            if indegree[j] == 0 {
                queue.push(j);
            }
        }
    }
    if order.len() != n {
        let cyclic: Vec<String> = (0..n)
            .filter(|&i| indegree[i] > 0)
            .map(|i| net_names[compiled[i].0].clone())
            .collect();
        return Err(BuildError::CombinationalLoop(cyclic));
    }
    let mut result = Vec::with_capacity(n);
    let mut items: Vec<Option<(usize, CExpr)>> = compiled
        .into_iter()
        .map(|(net, e, _)| Some((net, e)))
        .collect();
    for i in order {
        result.push(items[i].take().expect("each assign emitted once"));
    }
    Ok(result)
}

// ------------------------------------------------------------- telemetry

/// Opt-in runtime telemetry state. Lives behind an `Option<Box<_>>` on the
/// simulator so the disabled path costs one pointer check per phase and the
/// original tapes stay byte-identical: counting runs on private clones
/// compiled on demand by [`Simulator::enable_telemetry`].
struct Telemetry {
    /// Settled values at the previous accounting point (end of each step).
    prev: Vec<u64>,
    /// Per-net: cycles in which the net's value changed.
    toggle_cycles: Vec<u64>,
    /// Per-net: total bit flips across all cycles.
    bit_toggles: Vec<u64>,
    /// Per-net: cycles in which the net was non-zero.
    high_cycles: Vec<u64>,
    /// Accounting points seen (== steps since telemetry was enabled).
    cycles: u64,
    settle_cones: Vec<Cone>,
    step_cones: Vec<Cone>,
    /// Memories written during the current cycle (cleared each accounting).
    mems_written: Vec<bool>,
    /// Private clones of the tapes, executed by the counting interpreter.
    settle_tape: Vec<Insn>,
    step_tape: Vec<Insn>,
    /// Per-insn counters, indexed by pc in the cloned tapes.
    settle_exec: Vec<u64>,
    settle_changed: Vec<u64>,
    step_exec: Vec<u64>,
    step_changed: Vec<u64>,
    net_masks: Vec<u64>,
    mem_masks: Vec<u64>,
    /// Scratch state for counting under the tree-walk engine: the counting
    /// tape runs here (counts only) while the tree-walk drives the real
    /// state, so both engines report identical numbers.
    scratch_regs: Vec<u64>,
    scratch_values: Vec<u64>,
    scratch_pend_nets: Vec<(u32, u64)>,
    scratch_pend_mems: Vec<(u32, u64, u64)>,
    record_trace: bool,
}

/// One static fanin cone: a connected group of settle assigns (or step
/// statements) together with the external inputs whose stability implies
/// the whole group would recompute to its previous result.
struct Cone {
    name: String,
    /// Number of assigns / always-statements grouped into this cone.
    units: u32,
    /// Net ids read by the cone (for settle cones: minus its own outputs).
    inputs: Vec<u32>,
    /// Memory ids whose contents the cone reads.
    mem_inputs: Vec<u32>,
    quiescent_cycles: u64,
    /// Open busy interval start (0-based cycle), when trace recording.
    busy_since: Option<u64>,
    /// Closed busy intervals, half-open `[start, end)` in cycles.
    busy_intervals: Vec<(u64, u64)>,
}

/// Per-net counters in a [`TelemetryReport`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetTelemetry {
    pub name: String,
    pub width: u32,
    /// Cycles in which the value changed.
    pub toggle_cycles: u64,
    /// Total bit flips.
    pub bit_toggles: u64,
    /// Cycles in which the value was non-zero.
    pub high_cycles: u64,
}

/// Per-cone quiescence statistics in a [`TelemetryReport`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConeTelemetry {
    pub name: String,
    /// Assigns (settle) or always-statements (step) in the cone.
    pub units: u64,
    /// Distinct external inputs (nets + memories).
    pub inputs: u64,
    /// Cycles in which every input was unchanged.
    pub quiescent_cycles: u64,
}

impl ConeTelemetry {
    /// Fraction of observed cycles this cone was quiescent.
    pub fn quiescent_fraction(&self, cycles: u64) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            self.quiescent_cycles as f64 / cycles as f64
        }
    }
}

/// Aggregate per-instruction counters for one bytecode tape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InsnTelemetry {
    /// Tape length in instructions.
    pub len: u64,
    /// Total instructions executed.
    pub executed: u64,
    /// Executions that produced a different value than the previous one at
    /// the same destination (register, net, pending slot, or memory word).
    pub changed: u64,
}

/// Measured activity of one scheduled resource unit, joined with the static
/// resource report via its representative net.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnitActivity {
    /// Unit label as reported by the resource estimator (e.g. `arith.mult`).
    pub unit: String,
    /// The net whose activity stands in for the unit.
    pub net: String,
    /// `"toggle"` (datapath: counted when the value changes) or `"high"`
    /// (control: counted when the net is non-zero).
    pub mode: String,
    /// Cycles the unit was active under its mode.
    pub active_cycles: u64,
}

/// Everything the telemetry plane measured, ready for serialization.
#[derive(Clone, Debug, PartialEq)]
pub struct TelemetryReport {
    /// Accounting points observed (steps since telemetry was enabled).
    pub cycles: u64,
    pub nets: Vec<NetTelemetry>,
    pub settle_cones: Vec<ConeTelemetry>,
    pub step_cones: Vec<ConeTelemetry>,
    pub settle_insns: InsnTelemetry,
    pub step_insns: InsnTelemetry,
    /// Filled by callers that hold a resource report (see
    /// `hir_codegen::testbench::Harness::telemetry_report`).
    pub units: Vec<UnitActivity>,
}

impl TelemetryReport {
    /// Fraction of nets (excluding the clock) that toggled at least once.
    pub fn toggle_coverage(&self) -> f64 {
        let eligible: Vec<&NetTelemetry> = self.nets.iter().filter(|n| n.name != "clk").collect();
        if eligible.is_empty() {
            return 1.0;
        }
        let toggled = eligible.iter().filter(|n| n.toggle_cycles > 0).count();
        toggled as f64 / eligible.len() as f64
    }

    /// Mean quiescent fraction across all cones (settle + step).
    pub fn overall_quiescence(&self) -> f64 {
        let cones = self.settle_cones.len() + self.step_cones.len();
        if cones == 0 || self.cycles == 0 {
            return 0.0;
        }
        let quiet: u64 = self
            .settle_cones
            .iter()
            .chain(self.step_cones.iter())
            .map(|c| c.quiescent_cycles)
            .sum();
        quiet as f64 / (cones as u64 * self.cycles) as f64
    }

    /// The least-quiescent cone: `(name, quiescent fraction)`.
    pub fn worst_cone(&self) -> Option<(&str, f64)> {
        self.settle_cones
            .iter()
            .chain(self.step_cones.iter())
            .map(|c| (c.name.as_str(), c.quiescent_fraction(self.cycles)))
            .min_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(b.0)))
    }

    /// Strict JSON document (parseable by `obs::json`), newline-terminated.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"cycles\":{},\"toggle_coverage\":{:.6}",
            self.cycles,
            self.toggle_coverage()
        );
        let _ = write!(
            s,
            ",\"overall_quiescence\":{:.6}",
            self.overall_quiescence()
        );
        for (key, cones) in [
            ("settle_cones", &self.settle_cones),
            ("step_cones", &self.step_cones),
        ] {
            let _ = write!(s, ",\"{key}\":[");
            for (i, c) in cones.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(
                    s,
                    "{{\"name\":\"{}\",\"units\":{},\"inputs\":{},\
                     \"quiescent_cycles\":{},\"quiescent_fraction\":{:.6}}}",
                    json_escape(&c.name),
                    c.units,
                    c.inputs,
                    c.quiescent_cycles,
                    c.quiescent_fraction(self.cycles)
                );
            }
            s.push(']');
        }
        for (key, t) in [
            ("settle_insns", &self.settle_insns),
            ("step_insns", &self.step_insns),
        ] {
            let _ = write!(
                s,
                ",\"{key}\":{{\"len\":{},\"executed\":{},\"changed\":{}}}",
                t.len, t.executed, t.changed
            );
        }
        let _ = write!(s, ",\"units\":[");
        for (i, u) in self.units.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let frac = if self.cycles == 0 {
                0.0
            } else {
                u.active_cycles as f64 / self.cycles as f64
            };
            let _ = write!(
                s,
                "{{\"unit\":\"{}\",\"net\":\"{}\",\"mode\":\"{}\",\
                 \"active_cycles\":{},\"active_fraction\":{:.6}}}",
                json_escape(&u.unit),
                json_escape(&u.net),
                u.mode,
                u.active_cycles,
                frac
            );
        }
        s.push_str("],\"nets\":[");
        for (i, n) in self.nets.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"name\":\"{}\",\"width\":{},\"toggle_cycles\":{},\
                 \"bit_toggles\":{},\"high_cycles\":{}}}",
                json_escape(&n.name),
                n.width,
                n.toggle_cycles,
                n.bit_toggles,
                n.high_cycles
            );
        }
        s.push_str("]}\n");
        s
    }

    /// Short human-readable summary (for `--sim-telemetry` without a file).
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "telemetry: {} cycles, toggle coverage {:.1}%, overall quiescence {:.1}%",
            self.cycles,
            self.toggle_coverage() * 100.0,
            self.overall_quiescence() * 100.0
        );
        if let Some((name, frac)) = self.worst_cone() {
            let _ = writeln!(s, "  busiest cone: {name} ({:.1}% quiescent)", frac * 100.0);
        }
        let _ = writeln!(
            s,
            "  settle tape: {} insns, {} executed, {} changed ({:.1}%)",
            self.settle_insns.len,
            self.settle_insns.executed,
            self.settle_insns.changed,
            pct(self.settle_insns.changed, self.settle_insns.executed)
        );
        let _ = writeln!(
            s,
            "  step tape:   {} insns, {} executed, {} changed ({:.1}%)",
            self.step_insns.len,
            self.step_insns.executed,
            self.step_insns.changed,
            pct(self.step_insns.changed, self.step_insns.executed)
        );
        for u in &self.units {
            let frac = if self.cycles == 0 {
                0.0
            } else {
                u.active_cycles as f64 / self.cycles as f64
            };
            let _ = writeln!(
                s,
                "  unit {:<16} {:>6.1}% active  ({} via {})",
                u.unit,
                frac * 100.0,
                u.mode,
                u.net
            );
        }
        s
    }
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64 * 100.0
    }
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, i: usize) -> usize {
        if self.parent[i] != i {
            let r = self.find(self.parent[i]);
            self.parent[i] = r;
        }
        self.parent[i]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Lower root wins so group order follows first appearance.
            self.parent[ra.max(rb)] = ra.min(rb);
        }
    }

    /// Groups of member indices, ordered by each group's first member.
    fn groups(&mut self, n: usize) -> Vec<Vec<usize>> {
        let mut by_root: HashMap<usize, usize> = HashMap::new();
        let mut out: Vec<Vec<usize>> = Vec::new();
        for i in 0..n {
            let r = self.find(i);
            let g = *by_root.entry(r).or_insert_with(|| {
                out.push(Vec::new());
                out.len() - 1
            });
            out[g].push(i);
        }
        out
    }
}

fn collect_mem_reads_into(e: &CExpr, out: &mut BTreeSet<usize>) {
    match e {
        CExpr::Const { .. } | CExpr::Net { .. } => {}
        CExpr::MemRead { mem, addr, .. } => {
            out.insert(*mem);
            collect_mem_reads_into(addr, out);
        }
        CExpr::Slice { base, .. } => collect_mem_reads_into(base, out),
        CExpr::Unary { arg, .. } => collect_mem_reads_into(arg, out),
        CExpr::Binary { lhs, rhs, .. } => {
            collect_mem_reads_into(lhs, out);
            collect_mem_reads_into(rhs, out);
        }
        CExpr::Ternary {
            cond, then, els, ..
        } => {
            collect_mem_reads_into(cond, out);
            collect_mem_reads_into(then, out);
            collect_mem_reads_into(els, out);
        }
        CExpr::Concat { parts, .. } => {
            for p in parts {
                collect_mem_reads_into(p, out);
            }
        }
        CExpr::SignExtend { arg, .. } => collect_mem_reads_into(arg, out),
    }
}

/// Partition the topo-ordered assigns into connected fanin cones: two
/// assigns share a cone when one reads the other's target. A cone's inputs
/// are the nets it reads but does not produce, plus every memory it reads;
/// if none of those changed over a cycle, re-running the cone would
/// reproduce its previous outputs.
fn partition_settle(assigns: &[(usize, CExpr)], net_names: &[String]) -> Vec<Cone> {
    let n = assigns.len();
    let mut uf = UnionFind::new(n);
    let producer: HashMap<usize, usize> = assigns
        .iter()
        .enumerate()
        .map(|(i, (net, _))| (*net, i))
        .collect();
    let mut deps_per: Vec<Vec<usize>> = Vec::with_capacity(n);
    for (i, (_, e)) in assigns.iter().enumerate() {
        let mut deps = Vec::new();
        collect_deps(e, &mut deps);
        for &d in &deps {
            if let Some(&p) = producer.get(&d) {
                uf.union(i, p);
            }
        }
        deps_per.push(deps);
    }
    let mut cones = Vec::new();
    for members in uf.groups(n) {
        let written: HashSet<usize> = members.iter().map(|&i| assigns[i].0).collect();
        let mut inputs = BTreeSet::new();
        let mut mem_inputs = BTreeSet::new();
        for &i in &members {
            for &d in &deps_per[i] {
                if !written.contains(&d) {
                    inputs.insert(d as u32);
                }
            }
            collect_mem_reads_into(&assigns[i].1, &mut mem_inputs);
        }
        cones.push(Cone {
            name: net_names[assigns[members[0]].0].clone(),
            units: members.len() as u32,
            inputs: inputs.into_iter().collect(),
            mem_inputs: mem_inputs.into_iter().map(|m| m as u32).collect(),
            quiescent_cycles: 0,
            busy_since: None,
            busy_intervals: Vec::new(),
        });
    }
    cones
}

fn stmt_effects(
    s: &CStmt,
    reads: &mut BTreeSet<usize>,
    writes: &mut BTreeSet<usize>,
    mreads: &mut BTreeSet<usize>,
    mwrites: &mut BTreeSet<usize>,
) {
    let expr = |e: &CExpr, reads: &mut BTreeSet<usize>, mreads: &mut BTreeSet<usize>| {
        let mut deps = Vec::new();
        collect_deps(e, &mut deps);
        reads.extend(deps);
        collect_mem_reads_into(e, mreads);
    };
    match s {
        CStmt::AssignNet { net, rhs } => {
            writes.insert(*net);
            expr(rhs, reads, mreads);
        }
        CStmt::AssignMem { mem, addr, rhs } => {
            mwrites.insert(*mem);
            expr(addr, reads, mreads);
            expr(rhs, reads, mreads);
        }
        CStmt::If { cond, then, els } => {
            expr(cond, reads, mreads);
            for t in then.iter().chain(els.iter()) {
                stmt_effects(t, reads, writes, mreads, mwrites);
            }
        }
        CStmt::Assert { guard, cond, .. } => {
            expr(guard, reads, mreads);
            expr(cond, reads, mreads);
        }
    }
}

/// Partition the always-statements into cones: two statements share a cone
/// when they write the same register or the same memory (so their combined
/// next-state is a function of the union of their reads). A step cone's
/// inputs are everything it reads; registers it updates from their own old
/// value count as inputs too, keeping self-incrementing state "busy".
fn partition_step(always: &[CStmt], net_names: &[String], mem_names: &[String]) -> Vec<Cone> {
    let n = always.len();
    let mut effects = Vec::with_capacity(n);
    for s in always {
        let mut reads = BTreeSet::new();
        let mut writes = BTreeSet::new();
        let mut mreads = BTreeSet::new();
        let mut mwrites = BTreeSet::new();
        stmt_effects(s, &mut reads, &mut writes, &mut mreads, &mut mwrites);
        effects.push((reads, writes, mreads, mwrites));
    }
    let mut uf = UnionFind::new(n);
    let mut net_writer: HashMap<usize, usize> = HashMap::new();
    let mut mem_writer: HashMap<usize, usize> = HashMap::new();
    for (i, (_, writes, _, mwrites)) in effects.iter().enumerate() {
        for &w in writes {
            match net_writer.get(&w) {
                Some(&j) => uf.union(i, j),
                None => {
                    net_writer.insert(w, i);
                }
            }
        }
        for &m in mwrites {
            match mem_writer.get(&m) {
                Some(&j) => uf.union(i, j),
                None => {
                    mem_writer.insert(m, i);
                }
            }
        }
    }
    let mut cones = Vec::new();
    let mut used_names: HashSet<String> = HashSet::new();
    for members in uf.groups(n) {
        let mut inputs = BTreeSet::new();
        let mut mem_inputs = BTreeSet::new();
        for &i in &members {
            let (reads, _, mreads, _) = &effects[i];
            inputs.extend(reads.iter().map(|&r| r as u32));
            mem_inputs.extend(mreads.iter().map(|&m| m as u32));
        }
        let first = &effects[members[0]];
        let mut name = first
            .1
            .iter()
            .next()
            .map(|&w| net_names[w].clone())
            .or_else(|| first.3.iter().next().map(|&m| mem_names[m].clone()))
            .or_else(|| {
                first
                    .0
                    .iter()
                    .next()
                    .map(|&r| format!("assert@{}", net_names[r]))
            })
            .unwrap_or_else(|| "cone".to_string());
        if !used_names.insert(name.clone()) {
            name = format!("{name}#{}", members[0]);
            used_names.insert(name.clone());
        }
        cones.push(Cone {
            name,
            units: members.len() as u32,
            inputs: inputs.into_iter().collect(),
            mem_inputs: mem_inputs.into_iter().collect(),
            quiescent_cycles: 0,
            busy_since: None,
            busy_intervals: Vec::new(),
        });
    }
    cones
}

/// The counting twin of [`run_tape`]: identical semantics, plus per-insn
/// executed/changed counters. Kept separate so the uninstrumented hot loop
/// pays nothing for telemetry support.
#[allow(clippy::too_many_arguments)]
fn run_tape_counting(
    tape: &[Insn],
    regs: &mut [u64],
    values: &mut [u64],
    memories: &[Vec<u64>],
    msgs: &[String],
    pend_nets: &mut Vec<(u32, u64)>,
    pend_mems: &mut Vec<(u32, u64, u64)>,
    failure: &mut Option<String>,
    exec: &mut [u64],
    changed: &mut [u64],
    net_masks: &[u64],
    mem_masks: &[u64],
) {
    let mut pc = 0usize;
    // regs[dst] = v, counting a change when the register held a different
    // value (from the previous cycle, or an earlier conditional path).
    macro_rules! put {
        ($dst:expr, $v:expr) => {{
            let v = $v;
            let d = $dst as usize;
            if regs[d] != v {
                changed[pc] += 1;
            }
            regs[d] = v;
        }};
    }
    while pc < tape.len() {
        exec[pc] += 1;
        match tape[pc] {
            Insn::LoadNet { dst, net } => put!(dst, values[net as usize]),
            Insn::MemRead { dst, mem, addr, m } => {
                let a = regs[addr as usize] as usize;
                put!(dst, memories[mem as usize].get(a).copied().unwrap_or(0) & m);
            }
            Insn::Slice { dst, src, lo, m } => put!(dst, (regs[src as usize] >> lo) & m),
            Insn::Not { dst, src, m } => put!(dst, !regs[src as usize] & m),
            Insn::LNot { dst, src } => put!(dst, u64::from(regs[src as usize] == 0)),
            Insn::RedOr { dst, src } => put!(dst, u64::from(regs[src as usize] != 0)),
            Insn::Binary {
                op,
                dst,
                a,
                b,
                aw,
                bw,
                m,
            } => put!(
                dst,
                eval_binary(op, regs[a as usize], regs[b as usize], aw, bw) & m
            ),
            Insn::Select {
                dst,
                cond,
                then,
                els,
                m,
            } => {
                let v = if regs[cond as usize] != 0 {
                    regs[then as usize]
                } else {
                    regs[els as usize]
                };
                put!(dst, v & m);
            }
            Insn::ConcatFirst { dst, src, m } => put!(dst, regs[src as usize] & m),
            Insn::ConcatPush { dst, src, shift, m } => {
                put!(
                    dst,
                    (regs[dst as usize] << shift) | (regs[src as usize] & m)
                );
            }
            Insn::MaskReg { dst, m } => put!(dst, regs[dst as usize] & m),
            Insn::SignExtend {
                dst,
                src,
                from,
                fm,
                m,
            } => put!(dst, (sign_extend(regs[src as usize] & fm, from) as u64) & m),
            Insn::StoreNet { net, src, m } => {
                let v = regs[src as usize] & m;
                if values[net as usize] != v {
                    changed[pc] += 1;
                }
                values[net as usize] = v;
            }
            Insn::EmitNet { net, src } => {
                let v = regs[src as usize];
                if (v & net_masks[net as usize]) != values[net as usize] {
                    changed[pc] += 1;
                }
                pend_nets.push((net, v));
            }
            Insn::EmitMem { mem, addr, src } => {
                let a = regs[addr as usize];
                let v = regs[src as usize];
                if let Some(&cur) = memories[mem as usize].get(a as usize) {
                    if (v & mem_masks[mem as usize]) != cur {
                        changed[pc] += 1;
                    }
                }
                pend_mems.push((mem, a, v));
            }
            Insn::Assert { guard, cond, msg } => {
                if failure.is_none() && regs[guard as usize] != 0 && regs[cond as usize] == 0 {
                    *failure = Some(msgs[msg as usize].clone());
                }
            }
            Insn::Jump { target } => {
                pc = target as usize;
                continue;
            }
            Insn::JumpIfZero { src, target } => {
                if regs[src as usize] == 0 {
                    pc = target as usize;
                    continue;
                }
            }
        }
        pc += 1;
    }
}

impl Simulator {
    /// Turn on the telemetry plane. Idempotent; settles first so counting
    /// starts from a consistent baseline. With `record_trace`, per-cone
    /// busy/quiescent intervals are kept for [`telemetry_trace`].
    ///
    /// Counting runs on private clones of the tapes: the original tapes and
    /// the untelemetered execution path are untouched. When telemetry is
    /// enabled before the first `step`, both engines report identical
    /// counts.
    ///
    /// [`telemetry_trace`]: Self::telemetry_trace
    pub fn enable_telemetry(&mut self, record_trace: bool) {
        if self.telemetry.is_some() {
            return;
        }
        self.settle();
        let settle_tape = self.settle_tape.clone();
        let step_tape = self.step_tape.clone();
        let mut scratch_regs = self.regs.clone();
        let mut scratch_values = self.values.clone();
        // Warm the counting register file: one uncounted run of the settle
        // tape brings it to the state the bytecode engine's file holds
        // after the settle above (a no-op under `Engine::Bytecode`), so
        // `changed` counters start from the same baseline under either
        // engine.
        {
            let mut pn = Vec::new();
            let mut pm = Vec::new();
            let mut f = None;
            run_tape(
                &settle_tape,
                &mut scratch_regs,
                &mut scratch_values,
                &self.memories,
                &self.msgs,
                &mut pn,
                &mut pm,
                &mut f,
            );
        }
        let settle_cones = partition_settle(&self.assigns, &self.net_names);
        let step_cones = partition_step(&self.always, &self.net_names, &self.mem_names);
        self.telemetry = Some(Box::new(Telemetry {
            prev: self.values.clone(),
            toggle_cycles: vec![0; self.values.len()],
            bit_toggles: vec![0; self.values.len()],
            high_cycles: vec![0; self.values.len()],
            cycles: 0,
            settle_cones,
            step_cones,
            mems_written: vec![false; self.memories.len()],
            settle_exec: vec![0; settle_tape.len()],
            settle_changed: vec![0; settle_tape.len()],
            step_exec: vec![0; step_tape.len()],
            step_changed: vec![0; step_tape.len()],
            net_masks: self.net_width.iter().map(|&w| mask(w)).collect(),
            mem_masks: self.mem_width.iter().map(|&w| mask(w)).collect(),
            settle_tape,
            step_tape,
            scratch_regs,
            scratch_values,
            scratch_pend_nets: Vec::new(),
            scratch_pend_mems: Vec::new(),
            record_trace,
        }));
    }

    /// Whether the telemetry plane is active.
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry.is_some()
    }

    /// Snapshot the telemetry counters (`None` when telemetry is off). The
    /// `units` field is left empty; callers holding a resource report join
    /// it themselves.
    pub fn telemetry_report(&self) -> Option<TelemetryReport> {
        let t = self.telemetry.as_deref()?;
        let nets = (0..self.net_names.len())
            .map(|i| NetTelemetry {
                name: self.net_names[i].clone(),
                width: self.net_width[i],
                toggle_cycles: t.toggle_cycles[i],
                bit_toggles: t.bit_toggles[i],
                high_cycles: t.high_cycles[i],
            })
            .collect();
        let cone_report = |cones: &[Cone]| {
            cones
                .iter()
                .map(|c| ConeTelemetry {
                    name: c.name.clone(),
                    units: u64::from(c.units),
                    inputs: (c.inputs.len() + c.mem_inputs.len()) as u64,
                    quiescent_cycles: c.quiescent_cycles,
                })
                .collect()
        };
        let insn_report = |tape: &[Insn], exec: &[u64], changed: &[u64]| InsnTelemetry {
            len: tape.len() as u64,
            executed: exec.iter().sum(),
            changed: changed.iter().sum(),
        };
        Some(TelemetryReport {
            cycles: t.cycles,
            nets,
            settle_cones: cone_report(&t.settle_cones),
            step_cones: cone_report(&t.step_cones),
            settle_insns: insn_report(&t.settle_tape, &t.settle_exec, &t.settle_changed),
            step_insns: insn_report(&t.step_tape, &t.step_exec, &t.step_changed),
            units: Vec::new(),
        })
    }

    /// Chrome-trace JSON of per-cone busy/quiescent periods, one track per
    /// cone, 1 µs per cycle. `None` unless telemetry was enabled with
    /// `record_trace`.
    pub fn telemetry_trace(&self) -> Option<String> {
        let t = self.telemetry.as_deref()?;
        if !t.record_trace {
            return None;
        }
        let mut spans = Vec::new();
        let mut emit = |phase: &str, cones: &[Cone]| {
            for c in cones {
                let track = format!("{phase}/{}", c.name);
                let mut cursor = 0u64;
                let mut intervals = c.busy_intervals.clone();
                if let Some(start) = c.busy_since {
                    intervals.push((start, t.cycles));
                }
                let mut push = |name: &str, s: u64, e: u64| {
                    spans.push(obs::SpanRecord {
                        track: track.clone(),
                        name: name.to_string(),
                        start_ns: s * 1000,
                        dur_ns: (e - s) * 1000,
                        depth: 0,
                        args: vec![
                            ("start_cycle".to_string(), s.to_string()),
                            ("cycles".to_string(), (e - s).to_string()),
                        ],
                        pid_tid: None,
                    });
                };
                for (s, e) in intervals {
                    if s > cursor {
                        push("quiescent", cursor, s);
                    }
                    push("busy", s, e);
                    cursor = e;
                }
                if cursor < t.cycles {
                    push("quiescent", cursor, t.cycles);
                }
            }
        };
        emit("settle", &t.settle_cones);
        emit("step", &t.step_cones);
        Some(obs::trace::chrome_trace(&spans))
    }

    /// Resolve a net name to its index, for allocation-free hot-loop access
    /// via [`get_id`](Self::get_id) / [`set_id`](Self::set_id).
    pub fn net_id(&self, name: &str) -> Option<usize> {
        self.net_index.get(name).copied()
    }

    /// Read a net by pre-resolved id (settling first when needed).
    pub fn get_id(&mut self, id: usize) -> u64 {
        if self.dirty {
            self.settle();
        }
        self.values[id]
    }

    /// Drive a net by pre-resolved id. Takes effect at the next settle.
    pub fn set_id(&mut self, id: usize, value: u64) {
        self.values[id] = value & mask(self.net_width[id]);
        self.dirty = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter() -> Design {
        let mut m = VModule::new("counter");
        m.port("clk", Dir::Input, 1);
        m.port("en", Dir::Input, 1);
        m.port("count", Dir::Output, 8);
        m.reg("value", 8);
        m.assign("count", Expr::r("value"));
        m.main_always().stmts.push(Stmt::If {
            cond: Expr::r("en"),
            then: vec![Stmt::NonBlocking {
                lhs: LValue::Net("value".into()),
                rhs: Expr::add(Expr::r("value"), Expr::c(1, 8)),
            }],
            els: vec![],
        });
        let mut d = Design::new();
        d.add(m);
        d
    }

    #[test]
    fn counter_counts() {
        let d = counter();
        let mut sim = Simulator::new(&d, "counter").expect("build");
        sim.set("en", 1);
        sim.run(5).unwrap();
        assert_eq!(sim.get("count"), 5);
        sim.set("en", 0);
        sim.run(3).unwrap();
        assert_eq!(sim.get("count"), 5);
        assert_eq!(sim.cycle(), 8);
    }

    #[test]
    fn counter_wraps_at_width() {
        let d = counter();
        let mut sim = Simulator::new(&d, "counter").expect("build");
        sim.set("en", 1);
        sim.run(256).unwrap();
        assert_eq!(sim.get("count"), 0, "8-bit counter wraps");
    }

    #[test]
    fn chained_comb_assigns_settle_in_order() {
        let mut m = VModule::new("chain");
        m.port("clk", Dir::Input, 1);
        m.port("x", Dir::Input, 8);
        m.port("y", Dir::Output, 8);
        m.wire("a", 8);
        m.wire("b", 8);
        // Declared out of dependency order on purpose.
        m.assign("y", Expr::add(Expr::r("b"), Expr::c(1, 8)));
        m.assign("b", Expr::add(Expr::r("a"), Expr::c(1, 8)));
        m.assign("a", Expr::add(Expr::r("x"), Expr::c(1, 8)));
        let mut d = Design::new();
        d.add(m);
        let mut sim = Simulator::new(&d, "chain").expect("build");
        sim.set("x", 10);
        assert_eq!(sim.get("y"), 13);
    }

    #[test]
    fn combinational_loop_rejected() {
        let mut m = VModule::new("loopy");
        m.port("clk", Dir::Input, 1);
        m.wire("a", 1);
        m.wire("b", 1);
        m.assign("a", Expr::r("b"));
        m.assign("b", Expr::r("a"));
        let mut d = Design::new();
        d.add(m);
        match Simulator::new(&d, "loopy") {
            Err(BuildError::CombinationalLoop(nets)) => {
                assert_eq!(nets.len(), 2);
            }
            Err(other) => panic!("expected loop error, got {other:?}"),
            Ok(_) => panic!("expected loop error, build succeeded"),
        }
    }

    #[test]
    fn memory_write_then_read() {
        let mut m = VModule::new("memtest");
        m.port("clk", Dir::Input, 1);
        m.port("we", Dir::Input, 1);
        m.port("waddr", Dir::Input, 4);
        m.port("wdata", Dir::Input, 32);
        m.port("raddr", Dir::Input, 4);
        m.port("rdata", Dir::Output, 32);
        m.memory("ram", 32, 16, None);
        // Synchronous read register.
        m.reg("rdata_r", 32);
        m.assign("rdata", Expr::r("rdata_r"));
        m.main_always().stmts.push(Stmt::If {
            cond: Expr::r("we"),
            then: vec![Stmt::NonBlocking {
                lhs: LValue::MemElem {
                    mem: "ram".into(),
                    addr: Expr::r("waddr"),
                },
                rhs: Expr::r("wdata"),
            }],
            els: vec![],
        });
        m.main_always().stmts.push(Stmt::NonBlocking {
            lhs: LValue::Net("rdata_r".into()),
            rhs: Expr::MemRead {
                mem: "ram".into(),
                addr: Box::new(Expr::r("raddr")),
            },
        });
        let mut d = Design::new();
        d.add(m);
        let mut sim = Simulator::new(&d, "memtest").expect("build");
        sim.set("we", 1);
        sim.set("waddr", 3);
        sim.set("wdata", 12345);
        sim.step().unwrap();
        sim.set("we", 0);
        sim.set("raddr", 3);
        sim.step().unwrap();
        assert_eq!(sim.get("rdata"), 12345);
        // Read BEFORE the write lands sees the old value (non-blocking).
        assert_eq!(sim.read_mem("ram", 3), 12345);
    }

    #[test]
    fn assertion_fires() {
        let mut m = VModule::new("guarded");
        m.port("clk", Dir::Input, 1);
        m.port("en", Dir::Input, 1);
        m.port("addr", Dir::Input, 8);
        m.main_always().stmts.push(Stmt::Assert {
            guard: Expr::r("en"),
            cond: Expr::bin(BinOp::ULt, Expr::r("addr"), Expr::c(16, 8)),
            message: "address out of bounds".into(),
        });
        let mut d = Design::new();
        d.add(m);
        let mut sim = Simulator::new(&d, "guarded").expect("build");
        sim.set("en", 0);
        sim.set("addr", 200);
        sim.step().expect("guard off: no failure");
        sim.set("en", 1);
        let err = sim.step().unwrap_err();
        assert!(err.message.contains("address out of bounds"), "{err}");
    }

    #[test]
    fn hierarchical_design_simulates() {
        // Reuse the elaborate test structure: two chained incrementers.
        let mut inc = VModule::new("inc");
        inc.port("clk", Dir::Input, 1);
        inc.port("x", Dir::Input, 8);
        inc.port("y", Dir::Output, 8);
        inc.assign("y", Expr::add(Expr::r("x"), Expr::c(1, 8)));
        let mut top = VModule::new("top");
        top.port("clk", Dir::Input, 1);
        top.port("a", Dir::Input, 8);
        top.port("b", Dir::Output, 8);
        top.wire("mid", 8);
        top.instances.push(Instance {
            module: "inc".into(),
            name: "u0".into(),
            connections: vec![
                ("clk".into(), Expr::r("clk")),
                ("x".into(), Expr::r("a")),
                ("y".into(), Expr::r("mid")),
            ],
        });
        top.instances.push(Instance {
            module: "inc".into(),
            name: "u1".into(),
            connections: vec![
                ("clk".into(), Expr::r("clk")),
                ("x".into(), Expr::r("mid")),
                ("y".into(), Expr::r("b")),
            ],
        });
        let mut d = Design::new();
        d.add(inc);
        d.add(top);
        let mut sim = Simulator::new(&d, "top").expect("build");
        sim.set("a", 7);
        assert_eq!(sim.get("b"), 9);
    }

    #[test]
    fn signed_arithmetic() {
        let mut m = VModule::new("s");
        m.port("clk", Dir::Input, 1);
        m.port("a", Dir::Input, 8);
        m.port("b", Dir::Input, 8);
        m.port("lt", Dir::Output, 1);
        m.port("ext", Dir::Output, 16);
        m.assign("lt", Expr::bin(BinOp::SLt, Expr::r("a"), Expr::r("b")));
        m.assign(
            "ext",
            Expr::SignExtend {
                arg: Box::new(Expr::r("a")),
                from: 8,
                to: 16,
            },
        );
        let mut d = Design::new();
        d.add(m);
        let mut sim = Simulator::new(&d, "s").expect("build");
        sim.set("a", 0xFF); // -1
        sim.set("b", 1);
        assert_eq!(sim.get("lt"), 1, "-1 < 1 signed");
        assert_eq!(sim.get("ext"), 0xFFFF, "sign extension");
        assert_eq!(sim.get_signed("ext"), -1);
    }

    #[test]
    fn vcd_dump_records_changes() {
        let d = counter();
        let mut sim = Simulator::new(&d, "counter").expect("build");
        let buf: Vec<u8> = Vec::new();
        let shared = std::rc::Rc::new(std::cell::RefCell::new(buf));
        struct W(std::rc::Rc<std::cell::RefCell<Vec<u8>>>);
        impl std::io::Write for W {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.borrow_mut().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        sim.start_vcd(Box::new(W(shared.clone()))).unwrap();
        sim.set("en", 1);
        sim.run(3).unwrap();
        let text = String::from_utf8(shared.borrow().clone()).unwrap();
        assert!(text.contains("$var wire 8"), "{text}");
        assert!(text.contains("$enddefinitions"), "{text}");
        assert!(text.contains("#3"), "timestep markers: {text}");
        assert!(text.contains("b11 "), "count=3 change: {text}");
    }

    #[test]
    fn step_until_timeout() {
        let d = counter();
        let mut sim = Simulator::new(&d, "counter").expect("build");
        sim.set("en", 0);
        let err = sim.step_until("count", 10).unwrap_err();
        assert!(err.message.contains("did not assert"), "{err}");
    }

    #[test]
    fn engines_agree_on_counter() {
        let d = counter();
        let mut a = Simulator::new(&d, "counter").expect("build");
        let mut b = Simulator::new(&d, "counter").expect("build");
        a.set_engine(Engine::Bytecode);
        b.set_engine(Engine::TreeWalk);
        for cyc in 0..300u64 {
            let en = u64::from(cyc % 3 != 0);
            a.set("en", en);
            b.set("en", en);
            assert_eq!(a.get("count"), b.get("count"), "cycle {cyc}");
            a.step().unwrap();
            b.step().unwrap();
        }
    }

    fn mx_design() -> Design {
        let mut m = VModule::new("mx");
        m.port("clk", Dir::Input, 1);
        m.port("we", Dir::Input, 1);
        m.port("waddr", Dir::Input, 4);
        m.port("wdata", Dir::Input, 16);
        m.port("raddr", Dir::Input, 4);
        m.port("rdata", Dir::Output, 16);
        m.port("sum", Dir::Output, 16);
        m.memory("ram", 16, 16, None);
        m.reg("rdata_r", 16);
        m.assign("rdata", Expr::r("rdata_r"));
        // Exercise ternary, concat, slice, sign-extend in the comb network.
        m.wire("sx", 16);
        m.assign(
            "sx",
            Expr::SignExtend {
                arg: Box::new(Expr::Slice {
                    base: Box::new(Expr::r("wdata")),
                    hi: 7,
                    lo: 0,
                }),
                from: 8,
                to: 16,
            },
        );
        m.assign(
            "sum",
            Expr::Ternary {
                cond: Box::new(Expr::r("we")),
                then: Box::new(Expr::add(Expr::r("sx"), Expr::r("rdata_r"))),
                els: Box::new(Expr::Concat(vec![
                    Expr::Slice {
                        base: Box::new(Expr::r("rdata_r")),
                        hi: 7,
                        lo: 0,
                    },
                    Expr::Slice {
                        base: Box::new(Expr::r("wdata")),
                        hi: 7,
                        lo: 0,
                    },
                ])),
            },
        );
        m.main_always().stmts.push(Stmt::If {
            cond: Expr::r("we"),
            then: vec![Stmt::NonBlocking {
                lhs: LValue::MemElem {
                    mem: "ram".into(),
                    addr: Expr::r("waddr"),
                },
                rhs: Expr::r("wdata"),
            }],
            els: vec![Stmt::NonBlocking {
                lhs: LValue::Net("rdata_r".into()),
                rhs: Expr::MemRead {
                    mem: "ram".into(),
                    addr: Box::new(Expr::r("raddr")),
                },
            }],
        });
        let mut d = Design::new();
        d.add(m);
        d
    }

    #[test]
    fn engines_agree_on_memory_and_assert_design() {
        let d = mx_design();
        let mut a = Simulator::new(&d, "mx").expect("build");
        let mut b = Simulator::new(&d, "mx").expect("build");
        a.set_engine(Engine::Bytecode);
        b.set_engine(Engine::TreeWalk);
        // Deterministic LCG stimulus.
        let mut state = 0x2545F4914F6CDD1Du64;
        for cyc in 0..500u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            for (port, width) in [("we", 1), ("waddr", 4), ("wdata", 16), ("raddr", 4)] {
                let v = (state >> 24) & mask(width);
                a.set(port, v);
                b.set(port, v);
                state = state.rotate_left(17);
            }
            for out in ["rdata", "sum"] {
                assert_eq!(a.get(out), b.get(out), "net {out} at cycle {cyc}");
            }
            a.step().unwrap();
            b.step().unwrap();
        }
        for addr in 0..16 {
            assert_eq!(a.read_mem("ram", addr), b.read_mem("ram", addr));
        }
    }

    #[test]
    fn bytecode_assertion_fires_like_treewalk() {
        let mut m = VModule::new("guarded");
        m.port("clk", Dir::Input, 1);
        m.port("en", Dir::Input, 1);
        m.port("addr", Dir::Input, 8);
        m.main_always().stmts.push(Stmt::Assert {
            guard: Expr::r("en"),
            cond: Expr::bin(BinOp::ULt, Expr::r("addr"), Expr::c(16, 8)),
            message: "address out of bounds".into(),
        });
        let mut d = Design::new();
        d.add(m);
        for engine in [Engine::Bytecode, Engine::TreeWalk] {
            let mut sim = Simulator::new(&d, "guarded").expect("build");
            sim.set_engine(engine);
            sim.set("en", 0);
            sim.set("addr", 200);
            sim.step().expect("guard off: no failure");
            sim.set("en", 1);
            let err = sim.step().unwrap_err();
            assert!(err.message.contains("address out of bounds"), "{err}");
            assert_eq!(err.cycle, 1);
        }
    }

    #[test]
    fn cycle_budget_watchdog_stops_runaway_runs() {
        let d = counter();
        let mut sim = Simulator::new(&d, "counter").expect("build");
        sim.set_cycle_budget(Some(10));
        sim.run(10).unwrap(); // exactly the budget is fine
        let err = sim.step().unwrap_err();
        assert_eq!(err.cycle, 10);
        assert!(err.message.contains("cycle budget"), "{err}");
        // Raising the budget lets the run continue where it stopped.
        sim.set_cycle_budget(Some(12));
        sim.run(2).unwrap();
        assert_eq!(sim.cycle(), 12);
        sim.set_cycle_budget(None);
        sim.run(5).unwrap();
        assert_eq!(sim.cycle(), 17);
    }

    #[test]
    fn telemetry_leaves_tapes_and_results_untouched() {
        let d = counter();
        let mut plain = Simulator::new(&d, "counter").expect("build");
        let mut telem = Simulator::new(&d, "counter").expect("build");
        telem.enable_telemetry(true);
        for cyc in 0..50u64 {
            let en = u64::from(cyc % 3 != 0);
            plain.set("en", en);
            telem.set("en", en);
            assert_eq!(plain.get("count"), telem.get("count"), "cycle {cyc}");
            plain.step().unwrap();
            telem.step().unwrap();
        }
        // The executable tapes are byte-identical: counting runs on clones.
        assert_eq!(plain.settle_tape, telem.settle_tape);
        assert_eq!(plain.step_tape, telem.step_tape);
        assert_eq!(plain.get("count"), telem.get("count"));
    }

    #[test]
    fn telemetry_counts_on_counter_are_exact() {
        let d = counter();
        let mut sim = Simulator::new(&d, "counter").expect("build");
        sim.set("en", 1);
        sim.enable_telemetry(false);
        sim.run(10).unwrap();
        let r = sim.telemetry_report().expect("enabled");
        assert_eq!(r.cycles, 10);
        let net = |name: &str| r.nets.iter().find(|n| n.name == name).unwrap();
        // value increments every cycle, so value and count toggle each cycle.
        assert_eq!(net("value").toggle_cycles, 10);
        assert_eq!(net("count").toggle_cycles, 10);
        // en was driven high before enabling and never changed.
        assert_eq!(net("en").toggle_cycles, 0);
        assert_eq!(net("en").high_cycles, 10);
        assert_eq!(net("clk").toggle_cycles, 0);
        // Coverage excludes clk: en never toggled -> 2 of 3 nets.
        assert!((r.toggle_coverage() - 2.0 / 3.0).abs() < 1e-9);
        // Everything depends on the always-changing value: never quiescent.
        assert!(r
            .settle_cones
            .iter()
            .chain(r.step_cones.iter())
            .all(|c| c.quiescent_cycles == 0));
        // Disabling en freezes the design: every later cycle is quiescent.
        sim.set("en", 0);
        sim.step().unwrap(); // en toggles this cycle
        sim.run(9).unwrap();
        let r2 = sim.telemetry_report().expect("enabled");
        assert_eq!(r2.cycles, 20);
        // Settle cones read only `value`, frozen from the en-toggle cycle on;
        // step cones also read `en`, which changed on that one cycle.
        assert!(r2.settle_cones.iter().all(|c| c.quiescent_cycles == 10));
        assert!(r2.step_cones.iter().all(|c| c.quiescent_cycles == 9));
    }

    #[test]
    fn engines_report_identical_telemetry() {
        let d = mx_design();
        let mut a = Simulator::new(&d, "mx").expect("build");
        let mut b = Simulator::new(&d, "mx").expect("build");
        a.set_engine(Engine::Bytecode);
        b.set_engine(Engine::TreeWalk);
        a.enable_telemetry(true);
        b.enable_telemetry(true);
        let mut state = 0x2545F4914F6CDD1Du64;
        for _ in 0..200u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            for (port, width) in [("we", 1), ("waddr", 4), ("wdata", 16), ("raddr", 4)] {
                let v = (state >> 24) & mask(width);
                a.set(port, v);
                b.set(port, v);
                state = state.rotate_left(17);
            }
            a.step().unwrap();
            b.step().unwrap();
        }
        let ra = a.telemetry_report().expect("enabled");
        let rb = b.telemetry_report().expect("enabled");
        assert_eq!(ra, rb);
        assert_eq!(ra.to_json(), rb.to_json());
        assert_eq!(a.telemetry_trace(), b.telemetry_trace());
        obs::json::parse(&ra.to_json()).expect("telemetry JSON is strict");
    }

    #[test]
    fn telemetry_trace_is_chrome_trace_json() {
        let d = counter();
        let mut sim = Simulator::new(&d, "counter").expect("build");
        sim.enable_telemetry(true);
        sim.set("en", 1);
        sim.run(5).unwrap();
        sim.set("en", 0);
        sim.step().unwrap();
        sim.run(4).unwrap();
        let trace = sim.telemetry_trace().expect("trace recording on");
        let doc = obs::json::parse(&trace).expect("trace is strict JSON");
        assert!(doc.get("traceEvents").is_some());
        assert!(trace.contains("\"busy\""));
        assert!(trace.contains("\"quiescent\""));
        // Without record_trace there is no trace, but reports still work.
        let mut plain = Simulator::new(&d, "counter").expect("build");
        plain.enable_telemetry(false);
        plain.run(3).unwrap();
        assert!(plain.telemetry_trace().is_none());
        assert!(plain.telemetry_report().is_some());
    }
}
