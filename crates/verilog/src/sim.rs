//! Cycle-accurate two-state simulator for the synthesizable subset.
//!
//! The simulator flattens the design, compiles expressions to an index-based
//! form, topologically orders the continuous assigns (rejecting
//! combinational loops), and then alternates *settle* (combinational
//! evaluation) and *step* (one `posedge clk`, non-blocking semantics).
//! Immediate assertions — the automatic UB guards the HIR code generator
//! inserts (paper §4.5) — abort the simulation with a message.

use crate::ast::*;
use crate::elaborate::{flatten, ElabError};
use obs::json::escape as json_escape;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

/// A runtime simulation failure (a fired assertion or an engine limit).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VSimError {
    pub cycle: u64,
    pub message: String,
}

impl fmt::Display for VSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}: {}", self.cycle, self.message)
    }
}
impl std::error::Error for VSimError {}

/// Construction failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    Elab(ElabError),
    UnknownNet(String),
    CombinationalLoop(Vec<String>),
    /// The design is valid for simulation but outside the fragment the
    /// transition-system lowering ([`crate::tsys`]) supports.
    Unsupported(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Elab(e) => write!(f, "{e}"),
            BuildError::UnknownNet(n) => write!(f, "reference to undeclared net '{n}'"),
            BuildError::CombinationalLoop(nets) => {
                write!(f, "combinational loop through: {}", nets.join(" -> "))
            }
            BuildError::Unsupported(what) => {
                write!(f, "unsupported for transition-system lowering: {what}")
            }
        }
    }
}
impl std::error::Error for BuildError {}

impl From<ElabError> for BuildError {
    fn from(e: ElabError) -> Self {
        BuildError::Elab(e)
    }
}

// Compiled expression: net/memory references resolved to indices, result
// widths precomputed.
#[derive(Clone, Debug)]
enum CExpr {
    Const {
        value: u64,
        width: u32,
    },
    Net {
        index: usize,
        width: u32,
    },
    MemRead {
        mem: usize,
        addr: Box<CExpr>,
        width: u32,
    },
    Slice {
        base: Box<CExpr>,
        hi: u32,
        lo: u32,
    },
    Unary {
        op: UnOp,
        arg: Box<CExpr>,
        width: u32,
    },
    Binary {
        op: BinOp,
        lhs: Box<CExpr>,
        rhs: Box<CExpr>,
        width: u32,
    },
    Ternary {
        cond: Box<CExpr>,
        then: Box<CExpr>,
        els: Box<CExpr>,
        width: u32,
    },
    Concat {
        parts: Vec<CExpr>,
        width: u32,
    },
    SignExtend {
        arg: Box<CExpr>,
        from: u32,
        to: u32,
    },
}

impl CExpr {
    fn width(&self) -> u32 {
        match self {
            CExpr::Const { width, .. }
            | CExpr::Net { width, .. }
            | CExpr::MemRead { width, .. }
            | CExpr::Unary { width, .. }
            | CExpr::Binary { width, .. }
            | CExpr::Ternary { width, .. }
            | CExpr::Concat { width, .. } => *width,
            CExpr::Slice { hi, lo, .. } => hi - lo + 1,
            CExpr::SignExtend { to, .. } => *to,
        }
    }
}

#[derive(Clone, Debug)]
enum CStmt {
    AssignNet {
        net: usize,
        rhs: CExpr,
    },
    AssignMem {
        mem: usize,
        addr: CExpr,
        rhs: CExpr,
    },
    If {
        cond: CExpr,
        then: Vec<CStmt>,
        els: Vec<CStmt>,
    },
    Assert {
        guard: CExpr,
        cond: CExpr,
        message: String,
    },
}

/// Which execution engine drives `settle`/`step`.
///
/// `Bytecode` is the default: the design is lowered once into flat
/// register-machine tapes and each cycle is a linear sweep with no
/// allocation and no recursion. `TreeWalk` is the original recursive
/// evaluator, kept as a differential-testing oracle; building with the
/// `treewalk-sim` feature makes it the default instead.
///
/// `Event` turns the static union-find cone partition into the scheduler:
/// each settle/step cone executes as a slice of the same tapes, activated
/// by a dirty-set of nets changed this cycle; quiescent cones are skipped
/// entirely. `Batched` layers N independent stimulus lanes on top of the
/// same cone scheduling (see [`Simulator::set_batch_lanes`]); lane 0 is
/// bit-identical to a scalar run. All engines produce byte-identical
/// results, VCD, telemetry reports, and watchdog behavior.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    Bytecode,
    TreeWalk,
    Event,
    Batched,
}

impl Default for Engine {
    fn default() -> Self {
        if cfg!(feature = "treewalk-sim") {
            Engine::TreeWalk
        } else {
            Engine::Bytecode
        }
    }
}

// One bytecode instruction. Operands name registers in a flat `u64` file;
// every compiled expression node writes its own dedicated register before
// any reader, so registers never need clearing between cycles. Constants
// live in registers preloaded at build time.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub(crate) enum Insn {
    /// regs[dst] = values[net]
    LoadNet { dst: u32, net: u32 },
    /// regs[dst] = memories[mem][regs[addr]] (0 when out of range) & m
    MemRead {
        dst: u32,
        mem: u32,
        addr: u32,
        m: u64,
    },
    /// regs[dst] = (regs[src] >> lo) & m
    Slice { dst: u32, src: u32, lo: u32, m: u64 },
    /// regs[dst] = !regs[src] & m
    Not { dst: u32, src: u32, m: u64 },
    /// regs[dst] = (regs[src] == 0) as u64
    LNot { dst: u32, src: u32 },
    /// regs[dst] = (regs[src] != 0) as u64
    RedOr { dst: u32, src: u32 },
    /// regs[dst] = eval_binary(op, regs[a], regs[b], aw, bw) & m
    Binary {
        op: BinOp,
        dst: u32,
        a: u32,
        b: u32,
        aw: u32,
        bw: u32,
        m: u64,
    },
    /// regs[dst] = (if regs[cond] != 0 { regs[then] } else { regs[els] }) & m
    /// Eager select: both arms are pure, so evaluating both is sound.
    Select {
        dst: u32,
        cond: u32,
        then: u32,
        els: u32,
        m: u64,
    },
    /// regs[dst] = regs[src] & m (first concat part)
    ConcatFirst { dst: u32, src: u32, m: u64 },
    /// regs[dst] = (regs[dst] << shift) | (regs[src] & m)
    ConcatPush {
        dst: u32,
        src: u32,
        shift: u32,
        m: u64,
    },
    /// regs[dst] &= m (final concat width clamp)
    MaskReg { dst: u32, m: u64 },
    /// regs[dst] = sign_extend(regs[src] & fm, from) & m
    SignExtend {
        dst: u32,
        src: u32,
        from: u32,
        fm: u64,
        m: u64,
    },
    /// values[net] = regs[src] & m (settle tape: continuous assign)
    StoreNet { net: u32, src: u32, m: u64 },
    /// pend_nets.push((net, regs[src])) (step tape: non-blocking assign)
    EmitNet { net: u32, src: u32 },
    /// pend_mems.push((mem, regs[addr], regs[src]))
    EmitMem { mem: u32, addr: u32, src: u32 },
    /// if regs[guard] != 0 && regs[cond] == 0 { fail with msgs[msg] }
    Assert { guard: u32, cond: u32, msg: u32 },
    /// pc = target
    Jump { target: u32 },
    /// if regs[src] == 0 { pc = target }
    JumpIfZero { src: u32, target: u32 },
}

/// Lowers compiled expression trees into [`Insn`] tapes. One builder is
/// shared by the settle and step tapes so they share the register file and
/// constant pool.
#[derive(Default)]
struct TapeBuilder {
    insns: Vec<Insn>,
    next_reg: u32,
    /// Masked constant value -> preloaded register.
    consts: HashMap<u64, u32>,
    const_init: Vec<(u32, u64)>,
    msgs: Vec<String>,
}

impl TapeBuilder {
    fn reg(&mut self) -> u32 {
        let r = self.next_reg;
        self.next_reg += 1;
        r
    }

    /// Register preloaded with `value` (already masked).
    fn konst(&mut self, value: u64) -> u32 {
        if let Some(&r) = self.consts.get(&value) {
            return r;
        }
        let r = self.reg();
        self.consts.insert(value, r);
        self.const_init.push((r, value));
        r
    }

    /// Lower `e`, returning the register holding its (masked) value.
    fn expr(&mut self, e: &CExpr) -> u32 {
        match e {
            CExpr::Const { value, width } => self.konst(value & mask(*width)),
            CExpr::Net { index, .. } => {
                let dst = self.reg();
                self.insns.push(Insn::LoadNet {
                    dst,
                    net: *index as u32,
                });
                dst
            }
            CExpr::MemRead { mem, addr, width } => {
                let addr = self.expr(addr);
                let dst = self.reg();
                self.insns.push(Insn::MemRead {
                    dst,
                    mem: *mem as u32,
                    addr,
                    m: mask(*width),
                });
                dst
            }
            CExpr::Slice { base, hi, lo } => {
                let src = self.expr(base);
                let dst = self.reg();
                self.insns.push(Insn::Slice {
                    dst,
                    src,
                    lo: *lo,
                    m: mask(hi - lo + 1),
                });
                dst
            }
            CExpr::Unary { op, arg, width } => {
                let src = self.expr(arg);
                let dst = self.reg();
                self.insns.push(match op {
                    UnOp::Not => Insn::Not {
                        dst,
                        src,
                        m: mask(*width),
                    },
                    UnOp::LNot => Insn::LNot { dst, src },
                    UnOp::RedOr => Insn::RedOr { dst, src },
                });
                dst
            }
            CExpr::Binary {
                op,
                lhs,
                rhs,
                width,
            } => {
                let (aw, bw) = (lhs.width(), rhs.width());
                let a = self.expr(lhs);
                let b = self.expr(rhs);
                let dst = self.reg();
                self.insns.push(Insn::Binary {
                    op: *op,
                    dst,
                    a,
                    b,
                    aw,
                    bw,
                    m: mask(*width),
                });
                dst
            }
            CExpr::Ternary {
                cond,
                then,
                els,
                width,
            } => {
                let cond = self.expr(cond);
                let then = self.expr(then);
                let els = self.expr(els);
                let dst = self.reg();
                self.insns.push(Insn::Select {
                    dst,
                    cond,
                    then,
                    els,
                    m: mask(*width),
                });
                dst
            }
            CExpr::Concat { parts, width } => {
                let dst = self.reg();
                if parts.is_empty() {
                    return self.konst(0);
                }
                for (i, p) in parts.iter().enumerate() {
                    let w = p.width().min(63);
                    let src = self.expr(p);
                    if i == 0 {
                        self.insns.push(Insn::ConcatFirst {
                            dst,
                            src,
                            m: mask(w),
                        });
                    } else {
                        self.insns.push(Insn::ConcatPush {
                            dst,
                            src,
                            shift: w,
                            m: mask(w),
                        });
                    }
                }
                self.insns.push(Insn::MaskReg {
                    dst,
                    m: mask(*width),
                });
                dst
            }
            CExpr::SignExtend { arg, from, to } => {
                let src = self.expr(arg);
                let dst = self.reg();
                self.insns.push(Insn::SignExtend {
                    dst,
                    src,
                    from: *from,
                    fm: mask(*from),
                    m: mask(*to),
                });
                dst
            }
        }
    }

    fn stmt(&mut self, s: &CStmt) {
        match s {
            CStmt::AssignNet { net, rhs } => {
                let src = self.expr(rhs);
                self.insns.push(Insn::EmitNet {
                    net: *net as u32,
                    src,
                });
            }
            CStmt::AssignMem { mem, addr, rhs } => {
                let addr = self.expr(addr);
                let src = self.expr(rhs);
                self.insns.push(Insn::EmitMem {
                    mem: *mem as u32,
                    addr,
                    src,
                });
            }
            CStmt::If { cond, then, els } => {
                let cond = self.expr(cond);
                let to_else = self.insns.len();
                self.insns.push(Insn::JumpIfZero {
                    src: cond,
                    target: 0, // patched below
                });
                for t in then {
                    self.stmt(t);
                }
                if els.is_empty() {
                    let end = self.insns.len() as u32;
                    self.patch_jump(to_else, end);
                } else {
                    let to_end = self.insns.len();
                    self.insns.push(Insn::Jump { target: 0 });
                    let else_start = self.insns.len() as u32;
                    self.patch_jump(to_else, else_start);
                    for t in els {
                        self.stmt(t);
                    }
                    let end = self.insns.len() as u32;
                    self.patch_jump(to_end, end);
                }
            }
            CStmt::Assert {
                guard,
                cond,
                message,
            } => {
                let guard = self.expr(guard);
                let cond = self.expr(cond);
                let msg = self.msgs.len() as u32;
                self.msgs.push(message.clone());
                self.insns.push(Insn::Assert { guard, cond, msg });
            }
        }
    }

    fn patch_jump(&mut self, at: usize, to: u32) {
        match &mut self.insns[at] {
            Insn::Jump { target } | Insn::JumpIfZero { target, .. } => *target = to,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    /// Take the instructions lowered so far as one finished tape.
    fn take_tape(&mut self) -> Vec<Insn> {
        std::mem::take(&mut self.insns)
    }
}

/// Compile-time common-subexpression elimination over one tape.
///
/// Generated RTL recomputes the same guard and index expressions once per
/// process (one per processing element in an unrolled design); on the flat
/// tape those become literally identical pure instructions. Every register
/// has a single static writer except concat accumulators, so a pure insn is
/// fully described by its opcode + canonicalized operand registers, and a
/// duplicate's destination can simply be renamed to the first occurrence.
///
/// Soundness:
/// - Only *unconditionally executed* insns (outside every jump-delimited
///   region) publish into the table, so a reuse always reads a register
///   that was recomputed earlier in the same run of the tape.
/// - Effects (`StoreNet`/`EmitNet`/`EmitMem`/`Assert`/jumps) are never
///   removed; their operands are just renamed.
/// - `LoadNet` entries are invalidated when the settle tape stores to that
///   net (blocking-assign order matters there); the step tape reads a
///   stable pre-edge snapshot, so loads and memory reads dedupe globally.
/// - Concat accumulators mutate their destination across several insns, so
///   `ConcatFirst`/`ConcatPush`/`MaskReg` never publish (their consumers
///   may: the accumulator is stable once the chain is done).
/// - Store-to-load forwarding: after an unconditional `StoreNet` whose
///   source register provably fits the net's mask (the store is a plain
///   copy), later loads of that net rename to the source register instead
///   of re-reading the net. Mask confinement holds even for conditionally
///   executed defs: a skipped insn leaves the register at a value a prior
///   run of the same insn produced (or the 0 it was initialised with),
///   which is confined to the same mask.
///
/// `consts` carries the preloaded constant registers so their (exact)
/// values participate in the mask analysis.
///
/// Returns the optimized tape plus the old-pc -> new-pc map (length
/// `tape.len() + 1`; dropped insns map to the position of their successor),
/// so callers can remap chain boundaries recorded before CSE.
fn cse_tape(tape: Vec<Insn>, consts: &[(u32, u64)]) -> (Vec<Insn>, Vec<u32>) {
    use Insn::*;
    let mut rep: HashMap<u32, u32> = HashMap::new();
    let resolve = |rep: &HashMap<u32, u32>, r: u32| -> u32 { *rep.get(&r).unwrap_or(&r) };
    let mut table: HashMap<Insn, u32> = HashMap::new();
    // Net index -> table key currently caching a load of that net.
    let mut net_loads: HashMap<u32, Insn> = HashMap::new();
    // Net index -> register known to hold exactly the net's current value.
    let mut net_fwd: HashMap<u32, u32> = HashMap::new();
    // Register -> mask its value is always confined to (reg & !mask == 0).
    let mut known: HashMap<u32, u64> = consts.iter().map(|&(r, v)| (r, v)).collect();
    let mut out: Vec<Insn> = Vec::with_capacity(tape.len());
    // old pc -> new pc, for patching forward jump targets afterward.
    let mut pc_map: Vec<u32> = Vec::with_capacity(tape.len() + 1);
    // Ends (old pcs) of the conditional regions currently open.
    let mut region_ends: Vec<u32> = Vec::new();

    for (pc, insn) in tape.into_iter().enumerate() {
        let pc = pc as u32;
        region_ends.retain(|&e| e > pc);
        pc_map.push(out.len() as u32);
        // Canonicalize operands through the representative map; dst fields
        // stay untouched (they are defs, not uses).
        let mut insn = insn;
        match &mut insn {
            LoadNet { .. } => {}
            MemRead { addr, .. } => *addr = resolve(&rep, *addr),
            Slice { src, .. }
            | Not { src, .. }
            | LNot { src, .. }
            | RedOr { src, .. }
            | SignExtend { src, .. }
            | ConcatFirst { src, .. }
            | ConcatPush { src, .. } => *src = resolve(&rep, *src),
            Binary { a, b, .. } => {
                *a = resolve(&rep, *a);
                *b = resolve(&rep, *b);
            }
            Select {
                cond, then, els, ..
            } => {
                *cond = resolve(&rep, *cond);
                *then = resolve(&rep, *then);
                *els = resolve(&rep, *els);
            }
            MaskReg { .. } => {}
            StoreNet { src, .. } | EmitNet { src, .. } => *src = resolve(&rep, *src),
            EmitMem { addr, src, .. } => {
                *addr = resolve(&rep, *addr);
                *src = resolve(&rep, *src);
            }
            Assert { guard, cond, .. } => {
                *guard = resolve(&rep, *guard);
                *cond = resolve(&rep, *cond);
            }
            Jump { .. } => {}
            JumpIfZero { src, .. } => *src = resolve(&rep, *src),
        }
        // Store-to-load forwarding: the net provably holds `src` verbatim.
        if let LoadNet { dst, net } = insn {
            if let Some(&src) = net_fwd.get(&net) {
                rep.insert(dst, src);
                continue;
            }
        }
        // Pure single-def insns: key = insn with dst zeroed, plus the mask
        // the result is confined to.
        let keyed: Option<(Insn, u32, u64)> = match insn.clone() {
            LoadNet { dst, net } => Some((LoadNet { dst: 0, net }, dst, u64::MAX)),
            MemRead { dst, mem, addr, m } => Some((
                MemRead {
                    dst: 0,
                    mem,
                    addr,
                    m,
                },
                dst,
                m,
            )),
            Slice { dst, src, lo, m } => Some((Slice { dst: 0, src, lo, m }, dst, m)),
            Not { dst, src, m } => Some((Not { dst: 0, src, m }, dst, m)),
            LNot { dst, src } => Some((LNot { dst: 0, src }, dst, 1)),
            RedOr { dst, src } => Some((RedOr { dst: 0, src }, dst, 1)),
            Binary {
                op,
                dst,
                a,
                b,
                aw,
                bw,
                m,
            } => Some((
                Binary {
                    op,
                    dst: 0,
                    a,
                    b,
                    aw,
                    bw,
                    m,
                },
                dst,
                m,
            )),
            Select {
                dst,
                cond,
                then,
                els,
                m,
            } => Some((
                Select {
                    dst: 0,
                    cond,
                    then,
                    els,
                    m,
                },
                dst,
                m,
            )),
            SignExtend {
                dst,
                src,
                from,
                fm,
                m,
            } => Some((
                SignExtend {
                    dst: 0,
                    src,
                    from,
                    fm,
                    m,
                },
                dst,
                m,
            )),
            _ => None,
        };
        match keyed {
            Some((key, dst, result_mask)) => {
                if let Some(&prev) = table.get(&key) {
                    rep.insert(dst, prev);
                    continue; // drop the duplicate
                }
                if region_ends.is_empty() {
                    if let LoadNet { net, .. } = key {
                        net_loads.insert(net, key.clone());
                    }
                    table.insert(key, dst);
                }
                if result_mask != u64::MAX {
                    known.insert(dst, result_mask);
                }
                out.push(insn);
            }
            None => {
                match insn {
                    StoreNet { net, src, m } => {
                        // Blocking assign: later loads of this net see the
                        // new value, so the cached load (if any) is stale.
                        if let Some(key) = net_loads.remove(&net) {
                            table.remove(&key);
                        }
                        if region_ends.is_empty() && known.get(&src).is_some_and(|&km| km & !m == 0)
                        {
                            net_fwd.insert(net, src);
                        } else {
                            net_fwd.remove(&net);
                        }
                    }
                    ConcatFirst { dst, m, .. } => {
                        known.insert(dst, m);
                    }
                    ConcatPush { dst, .. } => {
                        // Accumulator grows past its own push mask.
                        known.remove(&dst);
                    }
                    MaskReg { dst, m } => {
                        known.insert(dst, m);
                    }
                    Jump { target } | JumpIfZero { target, .. } => {
                        region_ends.push(target);
                    }
                    _ => {}
                }
                out.push(insn);
            }
        }
    }
    pc_map.push(out.len() as u32);

    for insn in &mut out {
        if let Jump { target } | JumpIfZero { target, .. } = insn {
            *target = pc_map[*target as usize];
        }
    }
    (out, pc_map)
}

/// Read-only view of the compiled tapes and name tables, consumed by the
/// transition-system lowering in [`crate::tsys`]. `values`, `memories` and
/// `regs` carry the *reset-state* contents (initial net values, zeroed
/// memories, preloaded constant registers) — the view must be taken from a
/// freshly built simulator, before any `step`.
pub(crate) struct TapeView<'a> {
    pub net_names: &'a [String],
    pub net_width: &'a [u32],
    pub values: &'a [u64],
    pub mem_names: &'a [String],
    pub mem_width: &'a [u32],
    pub memories: &'a [Vec<u64>],
    pub settle_tape: &'a [Insn],
    pub step_tape: &'a [Insn],
    pub regs: &'a [u64],
    pub msgs: &'a [String],
}

impl Simulator {
    pub(crate) fn tape_view(&self) -> TapeView<'_> {
        TapeView {
            net_names: &self.net_names,
            net_width: &self.net_width,
            values: &self.values,
            mem_names: &self.mem_names,
            mem_width: &self.mem_width,
            memories: &self.memories,
            settle_tape: &self.settle_tape,
            step_tape: &self.step_tape,
            regs: &self.regs,
            msgs: &self.msgs,
        }
    }
}

impl Simulator {
    /// (assigns, settle-tape insns, always stmts, step-tape insns, regs).
    pub fn tape_stats(&self) -> (usize, usize, usize, usize, usize) {
        (
            self.assigns.len(),
            self.settle_tape.len(),
            self.always.len(),
            self.step_tape.len(),
            self.regs.len(),
        )
    }

    /// Event-scheduler activity since the engine was (last) enabled:
    /// `(settle cone runs, step cone runs, settle cones, step cones,
    /// settle insns dispatched, step insns dispatched)`.
    /// `None` unless the event or batched engine has been selected.
    #[allow(clippy::type_complexity)]
    pub fn event_activity(&self) -> Option<(u64, u64, usize, usize, u64, u64)> {
        self.ev.as_deref().map(|ev| {
            (
                ev.stat_settle_runs,
                ev.stat_step_runs,
                ev.settle_chains.len(),
                ev.step_members_off.len() - 1,
                ev.stat_settle_insns,
                ev.stat_step_insns,
            )
        })
    }
}

/// VCD (value-change-dump) waveform recording state.
struct Vcd {
    out: Box<dyn std::io::Write>,
    /// (net index, identifier code) pairs being traced.
    traced: Vec<(usize, String)>,
    last: Vec<Option<u64>>,
}

/// The simulator. See module docs.
pub struct Simulator {
    net_names: Vec<String>,
    net_index: HashMap<String, usize>,
    net_width: Vec<u32>,
    values: Vec<u64>,
    mem_names: Vec<String>,
    mem_index: HashMap<String, usize>,
    mem_width: Vec<u32>,
    memories: Vec<Vec<u64>>,
    /// Continuous assigns in topological order: (net, expr).
    assigns: Vec<(usize, CExpr)>,
    always: Vec<CStmt>,
    /// Bytecode lowering of `assigns` (StoreNet per assign, in topo order).
    settle_tape: Vec<Insn>,
    /// Bytecode lowering of `always` (EmitNet/EmitMem/Assert + jumps).
    step_tape: Vec<Insn>,
    /// Register file shared by both tapes; constants preloaded at build.
    regs: Vec<u64>,
    /// Assertion messages referenced by `Insn::Assert`.
    msgs: Vec<String>,
    /// Reusable non-blocking update buffers (allocation-free stepping).
    pending_nets: Vec<(u32, u64)>,
    pending_mems: Vec<(u32, u64, u64)>,
    engine: Engine,
    /// Memory read ports appearing in the assign network: each is sampled
    /// once per settled cycle (reported as `sim.mem_read_events`).
    mem_read_ports: u64,
    cycle: u64,
    /// Watchdog: total cycles the simulation may run before `step` refuses
    /// with a clean error instead of looping forever on a hung design.
    cycle_budget: Option<u64>,
    dirty: bool,
    vcd: Option<Vcd>,
    /// Opt-in telemetry plane (toggle counters, cone quiescence, per-insn
    /// counters). `None` (the default) keeps the hot loop unperturbed: the
    /// only cost is this Option check in `settle`/`step`.
    telemetry: Option<Box<Telemetry>>,
    /// Opt-in scheduler-statistics plane (self-profiling of the *engine*:
    /// dirty-set occupancy, commit-compare outcomes). Same zero-cost-when-
    /// off discipline as `telemetry`; the event-engine share (wake walks,
    /// run lengths) lives in `EventState::sched`.
    sched: Option<Box<SchedStats>>,
    /// Per-assign chain start pcs in the (CSE'd) settle tape, in tape order.
    settle_chain_starts: Vec<u32>,
    /// Per-statement chain start pcs in the (CSE'd) step tape.
    step_chain_starts: Vec<u32>,
    /// Event-driven scheduler state; `Some` iff `engine` is `Event` or
    /// `Batched`. Rebuilt (all cones pending) on every switch into those
    /// engines, so stale register files from other engines never leak in.
    ev: Option<Box<EventState>>,
    /// Per-lane state for `Engine::Batched`; `Some` iff that engine is
    /// active. Lane 0 mirrors `values`/`memories` exactly.
    batch: Option<Box<BatchState>>,
    /// Requested lane count for `Engine::Batched` (1..=64).
    batch_lanes: usize,
}

impl Simulator {
    /// Flatten `top` within `design` and compile it for simulation.
    ///
    /// # Errors
    /// Fails on elaboration errors, undeclared nets, or combinational loops.
    pub fn new(design: &Design, top: &str) -> Result<Self, BuildError> {
        let flat = flatten(design, top)?;
        Self::from_flat(&flat)
    }

    /// Build from an already-flat module (no instances).
    pub fn from_flat(flat: &VModule) -> Result<Self, BuildError> {
        let mut sim = Simulator {
            net_names: Vec::new(),
            net_index: HashMap::new(),
            net_width: Vec::new(),
            values: Vec::new(),
            mem_names: Vec::new(),
            mem_index: HashMap::new(),
            mem_width: Vec::new(),
            memories: Vec::new(),
            assigns: Vec::new(),
            always: Vec::new(),
            settle_tape: Vec::new(),
            step_tape: Vec::new(),
            regs: Vec::new(),
            msgs: Vec::new(),
            pending_nets: Vec::new(),
            pending_mems: Vec::new(),
            engine: Engine::default(),
            mem_read_ports: 0,
            cycle: 0,
            cycle_budget: None,
            dirty: true,
            vcd: None,
            telemetry: None,
            sched: None,
            settle_chain_starts: Vec::new(),
            step_chain_starts: Vec::new(),
            ev: None,
            batch: None,
            batch_lanes: 8,
        };
        for p in &flat.ports {
            sim.add_net(&p.name, p.width, 0);
        }
        for n in &flat.nets {
            sim.add_net(&n.name, n.width, n.init.unwrap_or(0));
        }
        for m in &flat.memories {
            sim.mem_index.insert(m.name.clone(), sim.memories.len());
            sim.mem_names.push(m.name.clone());
            sim.mem_width.push(m.width);
            sim.memories.push(vec![0; m.depth as usize]);
        }

        // Compile assigns and order them topologically.
        let mut compiled: Vec<(usize, CExpr, Vec<usize>)> = Vec::new();
        for a in &flat.assigns {
            let net = sim.net(&a.lhs)?;
            let rhs = sim.compile(&a.rhs)?;
            let mut deps = Vec::new();
            collect_deps(&rhs, &mut deps);
            compiled.push((net, rhs, deps));
        }
        sim.assigns = topo_sort(&sim.net_names, compiled)?;
        sim.mem_read_ports = sim.assigns.iter().map(|(_, e)| count_mem_reads(e)).sum();

        for blk in &flat.always {
            for s in &blk.stmts {
                let c = sim.compile_stmt(s)?;
                sim.always.push(c);
            }
        }

        // Lower both phases to bytecode. The tapes share one register file
        // and constant pool.
        let mut tb = TapeBuilder::default();
        let mut settle_starts: Vec<u32> = Vec::with_capacity(sim.assigns.len());
        for (net, expr) in &sim.assigns {
            settle_starts.push(tb.insns.len() as u32);
            let src = tb.expr(expr);
            tb.insns.push(Insn::StoreNet {
                net: *net as u32,
                src,
                m: mask(sim.net_width[*net]),
            });
        }
        let settle = tb.take_tape();
        let (settle_tape, settle_map) = cse_tape(settle, &tb.const_init);
        sim.settle_tape = settle_tape;
        sim.settle_chain_starts = settle_starts
            .iter()
            .map(|&s| settle_map[s as usize])
            .collect();
        let mut step_starts: Vec<u32> = Vec::with_capacity(sim.always.len());
        for s in &sim.always {
            step_starts.push(tb.insns.len() as u32);
            tb.stmt(s);
        }
        let step = tb.take_tape();
        let (step_tape, step_map) = cse_tape(step, &tb.const_init);
        sim.step_tape = step_tape;
        sim.step_chain_starts = step_starts.iter().map(|&s| step_map[s as usize]).collect();
        sim.regs = vec![0; tb.next_reg as usize];
        for (r, v) in &tb.const_init {
            sim.regs[*r as usize] = *v;
        }
        sim.msgs = tb.msgs;
        Ok(sim)
    }

    /// Select the execution engine (defaults to [`Engine::Bytecode`], or
    /// [`Engine::TreeWalk`] when built with the `treewalk-sim` feature).
    /// All engines produce bit-identical results, VCD, and telemetry; the
    /// tree-walk evaluator exists as a differential-testing oracle.
    ///
    /// Switching to [`Engine::Event`] or [`Engine::Batched`] (re)builds the
    /// scheduler tables with every cone pending, so the first settle runs
    /// everything and the register file is consistent regardless of the
    /// previous engine.
    pub fn set_engine(&mut self, engine: Engine) {
        self.engine = engine;
        match engine {
            Engine::Event => {
                self.batch = None;
                let mut ev = EventState::build(self);
                ev.track = self.telemetry.is_some();
                self.ev = Some(ev);
                self.dirty = true;
            }
            Engine::Batched => {
                let mut ev = EventState::build(self);
                ev.track = false;
                self.ev = Some(ev);
                self.batch = Some(BatchState::build(self, self.batch_lanes));
                self.dirty = true;
            }
            Engine::Bytecode | Engine::TreeWalk => {
                self.ev = None;
                self.batch = None;
            }
        }
    }

    /// The currently selected execution engine.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Number of stimulus lanes evaluated per step (1 unless
    /// [`Engine::Batched`] is active).
    pub fn lanes(&self) -> usize {
        match self.engine {
            Engine::Batched => self.batch_lanes,
            _ => 1,
        }
    }

    /// Set the batched-stimulus lane count (1..=64). Rebuilds the lane
    /// state when [`Engine::Batched`] is active: every lane restarts from
    /// the current scalar state.
    ///
    /// # Panics
    /// Panics when `lanes` is 0 or exceeds 64 (lane dirty masks are packed
    /// into one 64-bit word).
    pub fn set_batch_lanes(&mut self, lanes: usize) {
        assert!(
            (1..=64).contains(&lanes),
            "batch lanes must be in 1..=64, got {lanes}"
        );
        self.batch_lanes = lanes;
        if self.engine == Engine::Batched {
            self.batch = Some(BatchState::build(self, lanes));
            if let Some(ev) = self.ev.as_deref_mut() {
                ev.mark_all_pending();
            }
            self.dirty = true;
        }
    }

    fn add_net(&mut self, name: &str, width: u32, init: u64) {
        let idx = self.values.len();
        self.net_index.insert(name.to_string(), idx);
        self.net_names.push(name.to_string());
        self.net_width.push(width.max(1));
        self.values.push(init & mask(width.max(1)));
    }

    fn net(&self, name: &str) -> Result<usize, BuildError> {
        self.net_index
            .get(name)
            .copied()
            .ok_or_else(|| BuildError::UnknownNet(name.to_string()))
    }

    fn compile(&self, e: &Expr) -> Result<CExpr, BuildError> {
        Ok(match e {
            Expr::Const { value, width } => CExpr::Const {
                value: *value,
                width: *width,
            },
            Expr::Ref(n) => {
                let index = self.net(n)?;
                CExpr::Net {
                    index,
                    width: self.net_width[index],
                }
            }
            Expr::MemRead { mem, addr } => {
                let m = *self
                    .mem_index
                    .get(mem)
                    .ok_or_else(|| BuildError::UnknownNet(mem.clone()))?;
                CExpr::MemRead {
                    mem: m,
                    addr: Box::new(self.compile(addr)?),
                    width: self.mem_width[m],
                }
            }
            Expr::Slice { base, hi, lo } => CExpr::Slice {
                base: Box::new(self.compile(base)?),
                hi: *hi,
                lo: *lo,
            },
            Expr::Unary { op, arg } => {
                let arg = self.compile(arg)?;
                let width = match op {
                    UnOp::Not => arg.width(),
                    UnOp::LNot | UnOp::RedOr => 1,
                };
                CExpr::Unary {
                    op: *op,
                    arg: Box::new(arg),
                    width,
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let lhs = self.compile(lhs)?;
                let rhs = self.compile(rhs)?;
                let width = if op.is_comparison() {
                    1
                } else if *op == BinOp::Mul {
                    (lhs.width() + rhs.width()).min(64)
                } else {
                    lhs.width().max(rhs.width())
                };
                CExpr::Binary {
                    op: *op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                    width,
                }
            }
            Expr::Ternary { cond, then, els } => {
                let then = self.compile(then)?;
                let els = self.compile(els)?;
                let width = then.width().max(els.width());
                CExpr::Ternary {
                    cond: Box::new(self.compile(cond)?),
                    then: Box::new(then),
                    els: Box::new(els),
                    width,
                }
            }
            Expr::Concat(parts) => {
                let parts: Vec<CExpr> = parts
                    .iter()
                    .map(|p| self.compile(p))
                    .collect::<Result<_, _>>()?;
                let width = parts.iter().map(CExpr::width).sum::<u32>().min(64);
                CExpr::Concat { parts, width }
            }
            Expr::SignExtend { arg, from, to } => CExpr::SignExtend {
                arg: Box::new(self.compile(arg)?),
                from: *from,
                to: *to,
            },
        })
    }

    fn compile_stmt(&self, s: &Stmt) -> Result<CStmt, BuildError> {
        Ok(match s {
            Stmt::NonBlocking { lhs, rhs } => match lhs {
                LValue::Net(n) => CStmt::AssignNet {
                    net: self.net(n)?,
                    rhs: self.compile(rhs)?,
                },
                LValue::MemElem { mem, addr } => CStmt::AssignMem {
                    mem: *self
                        .mem_index
                        .get(mem)
                        .ok_or_else(|| BuildError::UnknownNet(mem.clone()))?,
                    addr: self.compile(addr)?,
                    rhs: self.compile(rhs)?,
                },
            },
            Stmt::If { cond, then, els } => CStmt::If {
                cond: self.compile(cond)?,
                then: then
                    .iter()
                    .map(|t| self.compile_stmt(t))
                    .collect::<Result<_, _>>()?,
                els: els
                    .iter()
                    .map(|t| self.compile_stmt(t))
                    .collect::<Result<_, _>>()?,
            },
            Stmt::Assert {
                guard,
                cond,
                message,
            } => CStmt::Assert {
                guard: self.compile(guard)?,
                cond: self.compile(cond)?,
                message: message.clone(),
            },
        })
    }

    // ------------------------------------------------------------------ API

    /// Drive an input port (every lane under [`Engine::Batched`]). Takes
    /// effect at the next settle.
    ///
    /// # Panics
    /// Panics on an unknown net name.
    pub fn set(&mut self, name: &str, value: u64) {
        let idx = self.net_index[name];
        self.set_id(idx, value);
    }

    /// Read a net's current value (settling combinational logic first).
    ///
    /// # Panics
    /// Panics on an unknown net name.
    pub fn get(&mut self, name: &str) -> u64 {
        if self.dirty {
            self.settle();
        }
        self.values[self.net_index[name]]
    }

    /// Read a net as a sign-extended integer.
    pub fn get_signed(&mut self, name: &str) -> i64 {
        let idx = self.net_index[name];
        let w = self.net_width[idx];
        let v = self.get(name);
        sign_extend(v, w) as i64
    }

    /// Preload a memory word (every lane under [`Engine::Batched`]).
    ///
    /// # Panics
    /// Panics on unknown memory or out-of-range address.
    pub fn write_mem(&mut self, name: &str, addr: u64, value: u64) {
        let m = self.mem_index[name];
        let v = value & mask(self.mem_width[m]);
        if let Some(b) = self.batch.as_deref_mut() {
            let l = b.lanes;
            let slot = addr as usize * l;
            let mut changed = 0u64;
            for k in 0..l {
                if b.mems[m][slot + k] != v {
                    b.mems[m][slot + k] = v;
                    changed |= 1u64 << k;
                }
            }
            self.memories[m][addr as usize] = v;
            if changed != 0 {
                if let Some(ev) = self.ev.as_deref_mut() {
                    ev.note_mem_poked(m, changed);
                }
            }
        } else if self.memories[m][addr as usize] != v {
            self.memories[m][addr as usize] = v;
            if let Some(ev) = self.ev.as_deref_mut() {
                ev.note_mem_poked(m, ALL_LANES);
            }
        }
    }

    /// Preload one lane's copy of a memory word ([`Engine::Batched`] only;
    /// lane 0 also mirrors into the scalar memory).
    ///
    /// # Panics
    /// Panics on unknown memory, out-of-range address or lane, or when the
    /// batched engine is not active.
    pub fn write_mem_lane(&mut self, name: &str, lane: usize, addr: u64, value: u64) {
        let m = self.mem_index[name];
        let v = value & mask(self.mem_width[m]);
        let b = self
            .batch
            .as_deref_mut()
            .expect("batched engine not active");
        let l = b.lanes;
        assert!(lane < l, "lane {lane} out of range (lanes = {l})");
        let slot = addr as usize * l + lane;
        if b.mems[m][slot] != v {
            b.mems[m][slot] = v;
            if lane == 0 {
                self.memories[m][addr as usize] = v;
            }
            if let Some(ev) = self.ev.as_deref_mut() {
                ev.note_mem_poked(m, 1u64 << lane);
            }
        }
    }

    /// Read one lane's copy of a memory word ([`Engine::Batched`] only).
    ///
    /// # Panics
    /// Panics on unknown memory, out-of-range address or lane, or when the
    /// batched engine is not active.
    pub fn read_mem_lane(&self, name: &str, lane: usize, addr: u64) -> u64 {
        let m = self.mem_index[name];
        let b = self.batch.as_deref().expect("batched engine not active");
        assert!(
            lane < b.lanes,
            "lane {lane} out of range (lanes = {})",
            b.lanes
        );
        b.mems[m][addr as usize * b.lanes + lane]
    }

    /// Drive one lane of an input net ([`Engine::Batched`] only; lane 0
    /// also mirrors into the scalar values). Takes effect at the next
    /// settle.
    ///
    /// # Panics
    /// Panics on an unknown net name, an out-of-range lane, or when the
    /// batched engine is not active.
    pub fn set_lane(&mut self, name: &str, lane: usize, value: u64) {
        let idx = self.net_index[name];
        self.set_lane_id(idx, lane, value);
    }

    /// [`set_lane`](Self::set_lane) by pre-resolved net id.
    ///
    /// # Panics
    /// Panics on an out-of-range lane or when the batched engine is not
    /// active.
    pub fn set_lane_id(&mut self, id: usize, lane: usize, value: u64) {
        let v = value & mask(self.net_width[id]);
        let b = self
            .batch
            .as_deref_mut()
            .expect("batched engine not active");
        let l = b.lanes;
        assert!(lane < l, "lane {lane} out of range (lanes = {l})");
        if b.values[id * l + lane] != v {
            b.values[id * l + lane] = v;
            if lane == 0 {
                self.values[id] = v;
            }
            if let Some(ev) = self.ev.as_deref_mut() {
                ev.note_net_poked(id, 1u64 << lane);
            }
        }
        self.dirty = true;
    }

    /// Read one lane's settled value of a net ([`Engine::Batched`] only).
    ///
    /// # Panics
    /// Panics on an unknown net name, an out-of-range lane, or when the
    /// batched engine is not active.
    pub fn get_lane(&mut self, name: &str, lane: usize) -> u64 {
        let idx = self.net_index[name];
        self.get_lane_id(idx, lane)
    }

    /// [`get_lane`](Self::get_lane) by pre-resolved net id.
    ///
    /// # Panics
    /// Panics on an out-of-range lane or when the batched engine is not
    /// active.
    pub fn get_lane_id(&mut self, id: usize, lane: usize) -> u64 {
        if self.dirty {
            self.settle();
        }
        let b = self.batch.as_deref().expect("batched engine not active");
        assert!(
            lane < b.lanes,
            "lane {lane} out of range (lanes = {})",
            b.lanes
        );
        b.values[id * b.lanes + lane]
    }

    /// Read a memory word.
    ///
    /// # Panics
    /// Panics on unknown memory or out-of-range address.
    pub fn read_mem(&self, name: &str, addr: u64) -> u64 {
        self.memories[self.mem_index[name]][addr as usize]
    }

    /// Whether a memory with this (flattened) name exists.
    pub fn has_mem(&self, name: &str) -> bool {
        self.mem_index.contains_key(name)
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Cap the total number of cycles this simulator may execute. Once the
    /// budget is reached, [`step`](Self::step) fails with a clean watchdog
    /// error rather than letting a hung design spin forever. `None` (the
    /// default) removes the cap.
    pub fn set_cycle_budget(&mut self, budget: Option<u64>) {
        self.cycle_budget = budget;
    }

    /// Start dumping a VCD waveform of every net to `out` (e.g. a file).
    /// One VCD timestep per clock cycle; values are sampled after each
    /// settle.
    ///
    /// # Errors
    /// Propagates write errors from emitting the header.
    pub fn start_vcd(&mut self, mut out: Box<dyn std::io::Write>) -> std::io::Result<()> {
        use std::io::Write;
        writeln!(out, "$timescale 1ns $end")?;
        writeln!(out, "$scope module top $end")?;
        let mut traced = Vec::new();
        for (i, name) in self.net_names.iter().enumerate() {
            let code = vcd_code(i);
            writeln!(
                out,
                "$var wire {} {} {} $end",
                self.net_width[i], code, name
            )?;
            traced.push((i, code));
        }
        writeln!(out, "$upscope $end")?;
        writeln!(out, "$enddefinitions $end")?;
        let last = vec![None; self.values.len()];
        self.vcd = Some(Vcd { out, traced, last });
        self.emit_vcd();
        Ok(())
    }

    fn emit_vcd(&mut self) {
        if self.dirty {
            self.settle();
        }
        let Some(vcd) = &mut self.vcd else { return };
        use std::io::Write;
        let _ = writeln!(vcd.out, "#{}", self.cycle);
        for (i, code) in &vcd.traced {
            let v = self.values[*i];
            if vcd.last[*i] != Some(v) {
                vcd.last[*i] = Some(v);
                if self.net_width[*i] == 1 {
                    let _ = writeln!(vcd.out, "{v}{code}");
                } else {
                    let _ = writeln!(vcd.out, "b{:b} {code}", v);
                }
            }
        }
    }

    /// Evaluate all continuous assigns (in topological order).
    pub fn settle(&mut self) {
        // Two iterations would be needed only for stale memory reads; assigns
        // are topologically ordered so one pass suffices.
        match self.engine {
            Engine::Bytecode => {
                let mut failure = None;
                if let Some(t) = self.telemetry.as_deref_mut() {
                    // The counting interpreter IS the executor here: it runs
                    // the instrumented clone of the tape against the live
                    // state, so results stay bit-identical.
                    run_tape_counting(
                        &t.settle_tape,
                        0,
                        t.settle_tape.len(),
                        &mut self.regs,
                        &mut self.values,
                        &self.memories,
                        &self.msgs,
                        &mut self.pending_nets,
                        &mut self.pending_mems,
                        &mut failure,
                        &mut t.settle_exec,
                        &mut t.settle_changed,
                        &t.net_masks,
                        &t.mem_masks,
                    );
                } else {
                    run_tape(
                        &self.settle_tape,
                        0,
                        self.settle_tape.len(),
                        &mut self.regs,
                        &mut self.values,
                        &self.memories,
                        &self.msgs,
                        &mut self.pending_nets,
                        &mut self.pending_mems,
                        &mut failure,
                    );
                }
                debug_assert!(failure.is_none(), "settle tape has no assertions");
            }
            Engine::TreeWalk => {
                if let Some(t) = self.telemetry.as_deref_mut() {
                    // Counts come from a scratch run of the same tape the
                    // bytecode engine would execute, so both engines report
                    // identical telemetry; the tree-walk below still drives
                    // the real state.
                    t.scratch_values.copy_from_slice(&self.values);
                    t.scratch_pend_nets.clear();
                    t.scratch_pend_mems.clear();
                    let mut failure = None;
                    run_tape_counting(
                        &t.settle_tape,
                        0,
                        t.settle_tape.len(),
                        &mut t.scratch_regs,
                        &mut t.scratch_values,
                        &self.memories,
                        &self.msgs,
                        &mut t.scratch_pend_nets,
                        &mut t.scratch_pend_mems,
                        &mut failure,
                        &mut t.settle_exec,
                        &mut t.settle_changed,
                        &t.net_masks,
                        &t.mem_masks,
                    );
                }
                for i in 0..self.assigns.len() {
                    let (net, expr) = (self.assigns[i].0, &self.assigns[i].1);
                    let v = eval(expr, &self.values, &self.memories);
                    self.values[net] = v & mask(self.net_width[net]);
                }
            }
            Engine::Event => {
                let mut ev = self.ev.take().expect("event state built on engine switch");
                let telem = self.telemetry.is_some();
                let mut exec_extra = 0u64;
                let mut changed_extra = 0u64;
                // Worklist to fixpoint. Units are dispatched in ascending
                // index order, which is tape order, which is topological
                // order — so a unit's readers always sit ahead of it and
                // one in-order sweep converges; the outer loop guards that
                // invariant (external pokes are the only way bits appear
                // behind the cursor).
                if !telem {
                    // Fast path: coalesced worklist sweep — consecutive
                    // pending units collapse into single interpreter calls
                    // (see `settle_sweep`).
                    settle_sweep(
                        &self.settle_tape,
                        &mut self.regs,
                        &mut self.values,
                        &self.memories,
                        &mut ev,
                    );
                } else {
                    loop {
                        let mut any = false;
                        for w in 0..ev.settle_pending.len() {
                            while ev.settle_pending[w] != 0 {
                                let c = (w << 6) | ev.settle_pending[w].trailing_zeros() as usize;
                                ev.settle_pending[w] &= ev.settle_pending[w] - 1;
                                any = true;
                                ev.stat_settle_runs += 1;
                                if let Some(sc) = ev.sched.as_deref_mut() {
                                    sc.settle_run_len.record(1);
                                }
                                ev.settle_ran[c] = true;
                                ev.settle_stale[c] = true;
                                // Unit c is settle chain c: one assign, one chain.
                                {
                                    let (s, e) = ev.settle_chains[c];
                                    ev.stat_settle_insns += (e - s) as u64;
                                    let (ex, ch) = run_settle_chain_counting(
                                        &self.settle_tape,
                                        s as usize,
                                        e as usize,
                                        &mut self.regs,
                                        &mut self.values,
                                        &self.memories,
                                        &mut ev.store_changed,
                                    );
                                    exec_extra += ex;
                                    changed_extra += ch;
                                }
                                let mut i = 0;
                                while i < ev.store_changed.len() {
                                    let net = ev.store_changed[i] as usize;
                                    i += 1;
                                    ev.note_net_change(net, ALL_LANES);
                                }
                                ev.store_changed.clear();
                            }
                        }
                        if !any {
                            break;
                        }
                    }
                }
                if telem {
                    // Skipped cones still contribute the counts a full-tape
                    // run would record: steady-state counts, cached per
                    // cone and refreshed by one idempotent live re-run
                    // after each execution.
                    for c in 0..ev.settle_chains.len() {
                        if ev.settle_ran[c] {
                            ev.settle_ran[c] = false;
                            continue;
                        }
                        if ev.settle_stale[c] {
                            let (s, e) = ev.settle_chains[c];
                            let (ex_sum, ch_sum) = run_settle_chain_counting(
                                &self.settle_tape,
                                s as usize,
                                e as usize,
                                &mut self.regs,
                                &mut self.values,
                                &self.memories,
                                &mut ev.store_changed,
                            );
                            debug_assert!(ev.store_changed.is_empty());
                            ev.settle_cache[c] = (ex_sum, ch_sum);
                            ev.settle_stale[c] = false;
                        }
                        exec_extra += ev.settle_cache[c].0;
                        changed_extra += ev.settle_cache[c].1;
                    }
                    if let Some(t) = self.telemetry.as_deref_mut() {
                        t.settle_exec_extra += exec_extra;
                        t.settle_changed_extra += changed_extra;
                    }
                }
                self.ev = Some(ev);
            }
            Engine::Batched => {
                if let Some(t) = self.telemetry.as_deref_mut() {
                    // Counts from a scratch full-tape run mirroring lane 0,
                    // exactly as under the tree-walk oracle.
                    t.scratch_values.copy_from_slice(&self.values);
                    t.scratch_pend_nets.clear();
                    t.scratch_pend_mems.clear();
                    let mut failure = None;
                    run_tape_counting(
                        &t.settle_tape,
                        0,
                        t.settle_tape.len(),
                        &mut t.scratch_regs,
                        &mut t.scratch_values,
                        &self.memories,
                        &self.msgs,
                        &mut t.scratch_pend_nets,
                        &mut t.scratch_pend_mems,
                        &mut failure,
                        &mut t.settle_exec,
                        &mut t.settle_changed,
                        &t.net_masks,
                        &t.mem_masks,
                    );
                }
                let mut ev = self.ev.take().expect("event state built on engine switch");
                let mut b = self
                    .batch
                    .take()
                    .expect("batch state built on engine switch");
                // Same run-coalesced sweep as the scalar event engine: every
                // lane of a merged range sees its in-range producers' final
                // values (tape order), so in-range re-wakes are cleared.
                loop {
                    let mut any = false;
                    let mut w = 0;
                    while w < ev.settle_pending.len() {
                        if ev.settle_pending[w] == 0 {
                            w += 1;
                            continue;
                        }
                        let (c0, c1) = pop_pending_run(&mut ev.settle_pending, w);
                        any = true;
                        ev.stat_settle_runs += (c1 - c0 + 1) as u64;
                        if let Some(sc) = ev.sched.as_deref_mut() {
                            sc.settle_run_len.record((c1 - c0 + 1) as u64);
                        }
                        let s = ev.settle_chains[c0].0 as usize;
                        let e = ev.settle_chains[c1].1 as usize;
                        ev.stat_settle_insns += (e - s) as u64;
                        run_settle_range_batched(
                            &self.settle_tape,
                            s,
                            e,
                            b.lanes,
                            &mut b.regs,
                            &mut b.values,
                            &mut self.values,
                            &b.mems,
                            &mut ev.store_changed_lanes,
                        );
                        let mut i = 0;
                        while i < ev.store_changed_lanes.len() {
                            let (net, lanes_mask) = ev.store_changed_lanes[i];
                            i += 1;
                            ev.note_net_change(net as usize, lanes_mask);
                        }
                        ev.store_changed_lanes.clear();
                        clear_bit_range(&mut ev.settle_pending, c0, c1);
                    }
                    if !any {
                        break;
                    }
                }
                self.ev = Some(ev);
                self.batch = Some(b);
            }
        }
        if self.ev.is_none() {
            // Full-tape engines: every settle re-evaluates every assign, so
            // the sched-stats plane records one maximal "run".
            if let Some(sc) = self.sched.as_deref_mut() {
                sc.full_settles += 1;
            }
        }
        self.dirty = false;
    }

    /// Advance one clock edge with non-blocking semantics.
    ///
    /// # Errors
    /// Returns an error when an assertion fires or the cycle budget set via
    /// [`set_cycle_budget`](Self::set_cycle_budget) is exhausted.
    pub fn step(&mut self) -> Result<(), VSimError> {
        if let Some(budget) = self.cycle_budget {
            if self.cycle >= budget {
                return Err(VSimError {
                    cycle: self.cycle,
                    message: format!(
                        "cycle budget of {budget} cycles exhausted (watchdog; \
                         raise with set_cycle_budget or --sim-max-cycles)"
                    ),
                });
            }
        }
        if self.dirty {
            self.settle();
        }
        if self.sched.is_some() {
            // Sample the dirty set before dispatch consumes it.
            self.sched_sample_step_entry();
        }
        // Reuse the pending-update buffers across steps: stepping allocates
        // nothing in either engine.
        let mut net_updates = std::mem::take(&mut self.pending_nets);
        let mut mem_updates = std::mem::take(&mut self.pending_mems);
        net_updates.clear();
        mem_updates.clear();
        let mut failure: Option<String> = None;
        match self.engine {
            Engine::Bytecode => {
                if let Some(t) = self.telemetry.as_deref_mut() {
                    run_tape_counting(
                        &t.step_tape,
                        0,
                        t.step_tape.len(),
                        &mut self.regs,
                        &mut self.values,
                        &self.memories,
                        &self.msgs,
                        &mut net_updates,
                        &mut mem_updates,
                        &mut failure,
                        &mut t.step_exec,
                        &mut t.step_changed,
                        &t.net_masks,
                        &t.mem_masks,
                    );
                } else {
                    run_tape(
                        &self.step_tape,
                        0,
                        self.step_tape.len(),
                        &mut self.regs,
                        &mut self.values,
                        &self.memories,
                        &self.msgs,
                        &mut net_updates,
                        &mut mem_updates,
                        &mut failure,
                    );
                }
            }
            Engine::TreeWalk => {
                if let Some(t) = self.telemetry.as_deref_mut() {
                    t.scratch_values.copy_from_slice(&self.values);
                    t.scratch_pend_nets.clear();
                    t.scratch_pend_mems.clear();
                    let mut scratch_failure = None;
                    run_tape_counting(
                        &t.step_tape,
                        0,
                        t.step_tape.len(),
                        &mut t.scratch_regs,
                        &mut t.scratch_values,
                        &self.memories,
                        &self.msgs,
                        &mut t.scratch_pend_nets,
                        &mut t.scratch_pend_mems,
                        &mut scratch_failure,
                        &mut t.step_exec,
                        &mut t.step_changed,
                        &t.net_masks,
                        &t.mem_masks,
                    );
                }
                for i in 0..self.always.len() {
                    self.exec(
                        &self.always[i],
                        &mut net_updates,
                        &mut mem_updates,
                        &mut failure,
                    );
                }
            }
            Engine::Event => {
                let mut ev = self.ev.take().expect("event state built on engine switch");
                let telem = self.telemetry.is_some();
                if !telem {
                    // Fast path: pop pending cones off the summary bitset in
                    // tape order (quiescent cones cost ~1/64 load each) and
                    // merge member chains that sit back-to-back in the tape
                    // into one interpreter call. Step chains are independent
                    // (non-blocking semantics: every write lands in the
                    // pending-update buffers, not the live state), so the
                    // merge never reorders an observable read after a write.
                    let mut rs = usize::MAX;
                    let mut re = 0usize;
                    let mut run_chains = 0u64;
                    for w in 0..ev.step_dirty.len() {
                        while ev.step_dirty[w] != 0 {
                            let c = (w << 6) | ev.step_dirty[w].trailing_zeros() as usize;
                            ev.step_dirty[w] &= ev.step_dirty[w] - 1;
                            ev.step_pending[c] = 0;
                            ev.stat_step_runs += 1;
                            let (ms, me) = (
                                ev.step_members_off[c] as usize,
                                ev.step_members_off[c + 1] as usize,
                            );
                            for mi in ms..me {
                                let chain = ev.step_members_flat[mi] as usize;
                                let (s, e) = ev.step_chains[chain];
                                ev.stat_step_insns += (e - s) as u64;
                                let (s, e) = (s as usize, e as usize);
                                if rs == usize::MAX {
                                    (rs, re) = (s, e);
                                    run_chains = 1;
                                } else if s == re {
                                    re = e;
                                    run_chains += 1;
                                } else {
                                    run_tape(
                                        &self.step_tape,
                                        rs,
                                        re,
                                        &mut self.regs,
                                        &mut self.values,
                                        &self.memories,
                                        &self.msgs,
                                        &mut net_updates,
                                        &mut mem_updates,
                                        &mut failure,
                                    );
                                    if let Some(sc) = ev.sched.as_deref_mut() {
                                        sc.step_run_len.record(run_chains);
                                    }
                                    (rs, re) = (s, e);
                                    run_chains = 1;
                                }
                            }
                        }
                    }
                    if rs != usize::MAX {
                        run_tape(
                            &self.step_tape,
                            rs,
                            re,
                            &mut self.regs,
                            &mut self.values,
                            &self.memories,
                            &self.msgs,
                            &mut net_updates,
                            &mut mem_updates,
                            &mut failure,
                        );
                        if let Some(sc) = ev.sched.as_deref_mut() {
                            sc.step_run_len.record(run_chains);
                        }
                    }
                    self.ev = Some(ev);
                    // Telemetry-instrumented dispatch below is skipped.
                } else {
                    for c in 0..(ev.step_members_off.len() - 1) {
                        if ev.step_pending[c] != 0 {
                            ev.step_pending[c] = 0;
                            ev.stat_step_runs += 1;
                            if telem {
                                ev.step_stale[c] = true;
                            }
                            let (ms, me) = (
                                ev.step_members_off[c] as usize,
                                ev.step_members_off[c + 1] as usize,
                            );
                            for mi in ms..me {
                                let chain = ev.step_members_flat[mi] as usize;
                                let (s, e) = ev.step_chains[chain];
                                ev.stat_step_insns += (e - s) as u64;
                                if let Some(sc) = ev.sched.as_deref_mut() {
                                    // Telemetry dispatch runs chains singly.
                                    sc.step_run_len.record(1);
                                }
                                if let Some(t) = self.telemetry.as_deref_mut() {
                                    let (ex, ch) = run_step_chain_counting(
                                        &self.step_tape,
                                        s as usize,
                                        e as usize,
                                        &mut self.regs,
                                        &self.values,
                                        &self.memories,
                                        &self.msgs,
                                        &mut net_updates,
                                        &mut mem_updates,
                                        &mut failure,
                                        &t.net_masks,
                                        &t.mem_masks,
                                    );
                                    t.step_exec_extra += ex;
                                    t.step_changed_extra += ch;
                                } else {
                                    run_tape(
                                        &self.step_tape,
                                        s as usize,
                                        e as usize,
                                        &mut self.regs,
                                        &mut self.values,
                                        &self.memories,
                                        &self.msgs,
                                        &mut net_updates,
                                        &mut mem_updates,
                                        &mut failure,
                                    );
                                }
                            }
                        } else if telem {
                            if ev.step_stale[c] {
                                // Refresh the steady counts with one idempotent
                                // re-run on the live state (inputs unchanged):
                                // emissions go to scratch buffers.
                                let mut ex_sum = 0u64;
                                let mut ch_sum = 0u64;
                                let (ms, me) = (
                                    ev.step_members_off[c] as usize,
                                    ev.step_members_off[c + 1] as usize,
                                );
                                for mi in ms..me {
                                    let chain = ev.step_members_flat[mi] as usize;
                                    let (s, e) = ev.step_chains[chain];
                                    let t = self.telemetry.as_deref_mut().expect("telem checked");
                                    t.scratch_pend_nets.clear();
                                    t.scratch_pend_mems.clear();
                                    let mut scratch_failure = None;
                                    let (ex, ch) = run_step_chain_counting(
                                        &self.step_tape,
                                        s as usize,
                                        e as usize,
                                        &mut self.regs,
                                        &self.values,
                                        &self.memories,
                                        &self.msgs,
                                        &mut t.scratch_pend_nets,
                                        &mut t.scratch_pend_mems,
                                        &mut scratch_failure,
                                        &t.net_masks,
                                        &t.mem_masks,
                                    );
                                    ex_sum += ex;
                                    ch_sum += ch;
                                }
                                ev.step_cache[c] = (ex_sum, ch_sum);
                                ev.step_stale[c] = false;
                            }
                            let t = self.telemetry.as_deref_mut().expect("telem checked");
                            t.step_exec_extra += ev.step_cache[c].0;
                            t.step_changed_extra += ev.step_cache[c].1;
                        }
                    }
                    for w in &mut ev.step_dirty {
                        *w = 0;
                    }
                    self.ev = Some(ev);
                }
            }
            Engine::Batched => {
                if let Some(t) = self.telemetry.as_deref_mut() {
                    t.scratch_values.copy_from_slice(&self.values);
                    t.scratch_pend_nets.clear();
                    t.scratch_pend_mems.clear();
                    let mut scratch_failure = None;
                    run_tape_counting(
                        &t.step_tape,
                        0,
                        t.step_tape.len(),
                        &mut t.scratch_regs,
                        &mut t.scratch_values,
                        &self.memories,
                        &self.msgs,
                        &mut t.scratch_pend_nets,
                        &mut t.scratch_pend_mems,
                        &mut scratch_failure,
                        &mut t.step_exec,
                        &mut t.step_changed,
                        &t.net_masks,
                        &t.mem_masks,
                    );
                }
                let mut ev = self.ev.take().expect("event state built on engine switch");
                let mut b = self
                    .batch
                    .take()
                    .expect("batch state built on engine switch");
                for k in 1..b.lanes {
                    b.pend_nets[k].clear();
                    b.pend_mems[k].clear();
                    b.failures[k] = None;
                }
                // Adjacent regions with the same dirty-lane mask merge into
                // one interpreter call per lane (chains are independent:
                // non-blocking writes land in the pending buffers).
                let mut rs = usize::MAX;
                let mut re = 0usize;
                let mut rmask = 0u64;
                let mut run_chains = 0u64;
                macro_rules! flush_lanes {
                    () => {
                        if rs != usize::MAX {
                            run_tape_lanes(
                                &self.step_tape,
                                rs,
                                re,
                                rmask,
                                b.lanes,
                                &mut b.regs,
                                &b.values,
                                &b.mems,
                                &self.msgs,
                                &mut net_updates,
                                &mut mem_updates,
                                &mut failure,
                                &mut b.pend_nets,
                                &mut b.pend_mems,
                                &mut b.failures,
                                &mut b.work,
                            );
                            if let Some(sc) = ev.sched.as_deref_mut() {
                                sc.step_run_len.record(run_chains);
                            }
                        }
                    };
                }
                for w in 0..ev.step_dirty.len() {
                    while ev.step_dirty[w] != 0 {
                        let c = (w << 6) | ev.step_dirty[w].trailing_zeros() as usize;
                        ev.step_dirty[w] &= ev.step_dirty[w] - 1;
                        let pend = ev.step_pending[c];
                        ev.step_pending[c] = 0;
                        ev.stat_step_runs += 1;
                        let (ms, me) = (
                            ev.step_members_off[c] as usize,
                            ev.step_members_off[c + 1] as usize,
                        );
                        for mi in ms..me {
                            let chain = ev.step_members_flat[mi] as usize;
                            let (s, e) = ev.step_chains[chain];
                            ev.stat_step_insns += (e - s) as u64;
                            let (s, e) = (s as usize, e as usize);
                            if rs == usize::MAX {
                                (rs, re, rmask) = (s, e, pend);
                                run_chains = 1;
                            } else if s == re && pend == rmask {
                                re = e;
                                run_chains += 1;
                            } else {
                                flush_lanes!();
                                (rs, re, rmask) = (s, e, pend);
                                run_chains = 1;
                            }
                        }
                    }
                }
                flush_lanes!();
                self.ev = Some(ev);
                self.batch = Some(b);
            }
        }
        if self.engine == Engine::Batched && failure.is_none() {
            // Report the lowest failing lane; lane 0 keeps the scalar
            // message verbatim, other lanes are suffixed with their index.
            if let Some(b) = self.batch.as_deref_mut() {
                for k in 1..b.lanes {
                    if let Some(msg) = b.failures[k].take() {
                        failure = Some(format!("{msg} [lane {k}]"));
                        break;
                    }
                }
            }
        }
        if let Some(message) = failure {
            // A failed step does not complete the cycle; re-arm every cone
            // so a retry re-executes like the full-tape engines would.
            if let Some(ev) = self.ev.as_deref_mut() {
                ev.mark_all_pending();
            }
            self.pending_nets = net_updates;
            self.pending_mems = mem_updates;
            return Err(VSimError {
                cycle: self.cycle,
                message,
            });
        }
        obs::counter_add("sim", "cycles", 1);
        obs::counter_add("sim", "net_updates", net_updates.len() as u64);
        obs::counter_add("sim", "mem_write_events", mem_updates.len() as u64);
        obs::counter_add("sim", "mem_read_events", self.mem_read_ports);
        if self.engine == Engine::Batched {
            let mut ev = self.ev.take().expect("event state built on engine switch");
            let mut b = self
                .batch
                .take()
                .expect("batch state built on engine switch");
            let l = b.lanes;
            // Accumulate a changed-lane mask per net/memory first, then
            // wake readers once per net with the combined mask — the
            // reader walk is the expensive part, and at 64 lanes it
            // would otherwise run per (net, lane) pair.
            let mut net_compares = net_updates.len() as u64;
            let mut mem_compares = mem_updates.len() as u64;
            let mut net_changes = 0u64;
            let mut mem_changes = 0u64;
            for &(net, v) in &net_updates {
                let n = net as usize;
                let nv = v & mask(self.net_width[n]);
                if b.values[n * l] != nv {
                    b.values[n * l] = nv;
                    self.values[n] = nv;
                    net_changes += 1;
                    if b.note_net_mask[n] == 0 {
                        b.note_nets.push(net);
                    }
                    b.note_net_mask[n] |= 1;
                }
            }
            for k in 1..l {
                net_compares += b.pend_nets[k].len() as u64;
                for i in 0..b.pend_nets[k].len() {
                    let (net, v) = b.pend_nets[k][i];
                    let n = net as usize;
                    let nv = v & mask(self.net_width[n]);
                    if b.values[n * l + k] != nv {
                        b.values[n * l + k] = nv;
                        net_changes += 1;
                        if b.note_net_mask[n] == 0 {
                            b.note_nets.push(net);
                        }
                        b.note_net_mask[n] |= 1u64 << k;
                    }
                }
            }
            for &(mem, addr, v) in &mem_updates {
                let m = mem as usize;
                let depth = self.memories[m].len() as u64;
                if addr < depth {
                    let nv = v & mask(self.mem_width[m]);
                    let slot = addr as usize * l;
                    if b.mems[m][slot] != nv {
                        b.mems[m][slot] = nv;
                        self.memories[m][addr as usize] = nv;
                        mem_changes += 1;
                        if let Some(t) = self.telemetry.as_deref_mut() {
                            t.mems_written[m] = true;
                        }
                        if b.note_mem_mask[m] == 0 {
                            b.note_mems.push(mem);
                        }
                        b.note_mem_mask[m] |= 1;
                    }
                }
            }
            for k in 1..l {
                mem_compares += b.pend_mems[k].len() as u64;
                for i in 0..b.pend_mems[k].len() {
                    let (mem, addr, v) = b.pend_mems[k][i];
                    let m = mem as usize;
                    let depth = self.memories[m].len() as u64;
                    if addr < depth {
                        let nv = v & mask(self.mem_width[m]);
                        let slot = addr as usize * l + k;
                        if b.mems[m][slot] != nv {
                            b.mems[m][slot] = nv;
                            mem_changes += 1;
                            if b.note_mem_mask[m] == 0 {
                                b.note_mems.push(mem);
                            }
                            b.note_mem_mask[m] |= 1u64 << k;
                        }
                    }
                }
            }
            if let Some(sc) = self.sched.as_deref_mut() {
                sc.commit_net_compares += net_compares;
                sc.commit_net_changes += net_changes;
                sc.commit_mem_compares += mem_compares;
                sc.commit_mem_changes += mem_changes;
            }
            for i in 0..b.note_nets.len() {
                let n = b.note_nets[i] as usize;
                ev.note_net_change(n, b.note_net_mask[n]);
                b.note_net_mask[n] = 0;
            }
            b.note_nets.clear();
            for i in 0..b.note_mems.len() {
                let m = b.note_mems[i] as usize;
                ev.note_mem_change(m, b.note_mem_mask[m]);
                b.note_mem_mask[m] = 0;
            }
            b.note_mems.clear();
            self.ev = Some(ev);
            self.batch = Some(b);
        } else {
            let mut net_changes = 0u64;
            let mut mem_changes = 0u64;
            for &(net, v) in &net_updates {
                let net = net as usize;
                let nv = v & mask(self.net_width[net]);
                if self.values[net] != nv {
                    self.values[net] = nv;
                    net_changes += 1;
                    if let Some(ev) = self.ev.as_deref_mut() {
                        ev.note_net_change(net, ALL_LANES);
                    }
                }
            }
            for &(mem, addr, v) in &mem_updates {
                let mem = mem as usize;
                let depth = self.memories[mem].len() as u64;
                if addr < depth {
                    let nv = v & mask(self.mem_width[mem]);
                    // `mems_written` records writes that change the stored
                    // word — identical under every engine, including the
                    // event scheduler, which never re-executes a cone whose
                    // memory writes rewrite the same values.
                    if self.memories[mem][addr as usize] != nv {
                        self.memories[mem][addr as usize] = nv;
                        mem_changes += 1;
                        if let Some(t) = self.telemetry.as_deref_mut() {
                            t.mems_written[mem] = true;
                        }
                        if let Some(ev) = self.ev.as_deref_mut() {
                            ev.note_mem_change(mem, ALL_LANES);
                        }
                    }
                }
                // Out-of-range writes are dropped; assertions catch them first.
            }
            if let Some(sc) = self.sched.as_deref_mut() {
                sc.commit_net_compares += net_updates.len() as u64;
                sc.commit_net_changes += net_changes;
                sc.commit_mem_compares += mem_updates.len() as u64;
                sc.commit_mem_changes += mem_changes;
            }
        }
        self.pending_nets = net_updates;
        self.pending_mems = mem_updates;
        self.cycle += 1;
        self.settle();
        if self.telemetry.is_some() {
            self.telemetry_account();
        }
        if self.vcd.is_some() {
            self.emit_vcd();
        }
        Ok(())
    }

    /// One telemetry accounting point: called at the end of each `step`,
    /// after the post-edge settle, comparing the newly settled values
    /// against the previous accounting point's snapshot.
    fn telemetry_account(&mut self) {
        if self.engine == Engine::Event && self.ev.is_some() {
            self.telemetry_account_dirty();
            return;
        }
        let Some(t) = self.telemetry.as_deref_mut() else {
            return;
        };
        t.cycles += 1;
        let cyc = t.cycles - 1; // 0-based index of the cycle just completed
        for i in 0..self.values.len() {
            let new = self.values[i];
            let old = t.prev[i];
            if new != old {
                t.toggle_cycles[i] += 1;
                t.bit_toggles[i] += u64::from((new ^ old).count_ones());
                // Lazy high accounting: credit the run of unchanged cycles
                // the old value was held for, then this point's new value;
                // [`telemetry_report`](Self::telemetry_report) credits the
                // still-open run. Identical totals to eager per-cycle
                // accounting, but change-driven, so the event engine's
                // dirty-set covers it.
                if old != 0 {
                    t.high_cycles[i] += (t.cycles - 1) - t.high_since[i];
                }
                if new != 0 {
                    t.high_cycles[i] += 1;
                }
                t.high_since[i] = t.cycles;
            }
        }
        for cone in t.settle_cones.iter_mut().chain(t.step_cones.iter_mut()) {
            let mut quiet = cone
                .inputs
                .iter()
                .all(|&n| self.values[n as usize] == t.prev[n as usize]);
            if quiet {
                quiet = cone.mem_inputs.iter().all(|&m| !t.mems_written[m as usize]);
            }
            if quiet {
                cone.quiescent_cycles += 1;
                if t.record_trace {
                    if let Some(start) = cone.busy_since.take() {
                        cone.busy_intervals.push((start, cyc));
                    }
                }
            } else if t.record_trace && cone.busy_since.is_none() {
                cone.busy_since = Some(cyc);
            }
        }
        t.prev.copy_from_slice(&self.values);
        for w in &mut t.mems_written {
            *w = false;
        }
    }

    /// Dirty-set accounting for [`Engine::Event`]: instead of re-deriving
    /// per-net change detection with a full scan, visit only the nets the
    /// scheduler recorded as possibly-changed (a sound superset, filtered
    /// here by an exact compare against the previous snapshot) and mark
    /// reader cones busy through the same sensitivity lists that drive
    /// scheduling. Counter totals are byte-identical to the eager path.
    fn telemetry_account_dirty(&mut self) {
        let Some(t) = self.telemetry.as_deref_mut() else {
            return;
        };
        let mut ev = self.ev.take().expect("event state built on engine switch");
        t.cycles += 1;
        let cyc = t.cycles - 1;
        for idx in 0..ev.changed_nets.len() {
            let i = ev.changed_nets[idx] as usize;
            ev.changed_flag[i] = false;
            let new = self.values[i];
            let old = t.prev[i];
            if new != old {
                t.toggle_cycles[i] += 1;
                t.bit_toggles[i] += u64::from((new ^ old).count_ones());
                if old != 0 {
                    t.high_cycles[i] += (t.cycles - 1) - t.high_since[i];
                }
                if new != 0 {
                    t.high_cycles[i] += 1;
                }
                t.high_since[i] = t.cycles;
                t.prev[i] = new;
                let (a, b) = (
                    ev.settle_readers.off[i] as usize,
                    ev.settle_readers.off[i + 1] as usize,
                );
                for j in a..b {
                    let c = ev.settle_readers.flat[j];
                    ev.settle_busy[ev.settle_unit_cone[c as usize] as usize] = true;
                }
                let (a, b) = (
                    ev.step_readers.off[i] as usize,
                    ev.step_readers.off[i + 1] as usize,
                );
                for j in a..b {
                    let c = ev.step_readers.flat[j];
                    ev.step_busy[c as usize] = true;
                }
            }
        }
        ev.changed_nets.clear();
        for m in 0..t.mems_written.len() {
            if t.mems_written[m] {
                t.mems_written[m] = false;
                let (a, b) = (
                    ev.settle_mem_readers.off[m] as usize,
                    ev.settle_mem_readers.off[m + 1] as usize,
                );
                for j in a..b {
                    let c = ev.settle_mem_readers.flat[j];
                    ev.settle_busy[ev.settle_unit_cone[c as usize] as usize] = true;
                }
                let (a, b) = (
                    ev.step_mem_readers.off[m] as usize,
                    ev.step_mem_readers.off[m + 1] as usize,
                );
                for j in a..b {
                    let c = ev.step_mem_readers.flat[j];
                    ev.step_busy[c as usize] = true;
                }
            }
        }
        for (cones, busy) in [
            (&mut t.settle_cones, &mut ev.settle_busy),
            (&mut t.step_cones, &mut ev.step_busy),
        ] {
            for (c, cone) in cones.iter_mut().enumerate() {
                if busy[c] {
                    busy[c] = false;
                    if t.record_trace && cone.busy_since.is_none() {
                        cone.busy_since = Some(cyc);
                    }
                } else {
                    cone.quiescent_cycles += 1;
                    if t.record_trace {
                        if let Some(start) = cone.busy_since.take() {
                            cone.busy_intervals.push((start, cyc));
                        }
                    }
                }
            }
        }
        self.ev = Some(ev);
    }

    /// Run `n` clock cycles.
    ///
    /// # Errors
    /// Propagates the first assertion failure.
    pub fn run(&mut self, n: u64) -> Result<(), VSimError> {
        for _ in 0..n {
            self.step()?;
        }
        Ok(())
    }

    /// Step until `net` becomes non-zero, up to `max_cycles`.
    ///
    /// # Errors
    /// Fails on assertion or timeout.
    pub fn step_until(&mut self, net: &str, max_cycles: u64) -> Result<u64, VSimError> {
        let start = self.cycle;
        loop {
            if self.get(net) != 0 {
                return Ok(self.cycle - start);
            }
            if self.cycle - start >= max_cycles {
                return Err(VSimError {
                    cycle: self.cycle,
                    message: format!("'{net}' did not assert within {max_cycles} cycles"),
                });
            }
            self.step()?;
        }
    }

    fn exec(
        &self,
        stmt: &CStmt,
        net_updates: &mut Vec<(u32, u64)>,
        mem_updates: &mut Vec<(u32, u64, u64)>,
        failure: &mut Option<String>,
    ) {
        match stmt {
            CStmt::AssignNet { net, rhs } => {
                net_updates.push((*net as u32, eval(rhs, &self.values, &self.memories)));
            }
            CStmt::AssignMem { mem, addr, rhs } => {
                let a = eval(addr, &self.values, &self.memories);
                let v = eval(rhs, &self.values, &self.memories);
                mem_updates.push((*mem as u32, a, v));
            }
            CStmt::If { cond, then, els } => {
                let branch = if eval(cond, &self.values, &self.memories) != 0 {
                    then
                } else {
                    els
                };
                for s in branch {
                    self.exec(s, net_updates, mem_updates, failure);
                }
            }
            CStmt::Assert {
                guard,
                cond,
                message,
            } => {
                if failure.is_none()
                    && eval(guard, &self.values, &self.memories) != 0
                    && eval(cond, &self.values, &self.memories) == 0
                {
                    *failure = Some(message.clone());
                }
            }
        }
    }
}

/// Short printable VCD identifier for signal `i`.
fn vcd_code(mut i: usize) -> String {
    let mut s = String::new();
    loop {
        s.push((b'!' + (i % 94) as u8) as char);
        i /= 94;
        if i == 0 {
            break;
        }
    }
    s
}

pub(crate) fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

fn sign_extend(v: u64, width: u32) -> i128 {
    if width >= 64 {
        return v as i64 as i128;
    }
    let sign = 1u64 << (width - 1);
    if v & sign != 0 {
        v as i128 - (1i128 << width)
    } else {
        v as i128
    }
}

fn eval(e: &CExpr, values: &[u64], memories: &[Vec<u64>]) -> u64 {
    match e {
        CExpr::Const { value, width } => value & mask(*width),
        CExpr::Net { index, .. } => values[*index],
        CExpr::MemRead { mem, addr, width } => {
            let a = eval(addr, values, memories) as usize;
            memories[*mem].get(a).copied().unwrap_or(0) & mask(*width)
        }
        CExpr::Slice { base, hi, lo } => {
            let v = eval(base, values, memories);
            (v >> lo) & mask(hi - lo + 1)
        }
        CExpr::Unary { op, arg, width } => {
            let a = eval(arg, values, memories);
            let r = match op {
                UnOp::Not => !a,
                UnOp::LNot => u64::from(a == 0),
                UnOp::RedOr => u64::from(a != 0),
            };
            r & mask(*width)
        }
        CExpr::Binary {
            op,
            lhs,
            rhs,
            width,
        } => {
            let a = eval(lhs, values, memories);
            let b = eval(rhs, values, memories);
            eval_binary(*op, a, b, lhs.width(), rhs.width()) & mask(*width)
        }
        CExpr::Ternary {
            cond,
            then,
            els,
            width,
        } => {
            let r = if eval(cond, values, memories) != 0 {
                eval(then, values, memories)
            } else {
                eval(els, values, memories)
            };
            r & mask(*width)
        }
        CExpr::Concat { parts, width } => {
            let mut acc: u64 = 0;
            for p in parts {
                let w = p.width().min(63);
                acc = (acc << w) | (eval(p, values, memories) & mask(w));
            }
            acc & mask(*width)
        }
        CExpr::SignExtend { arg, from, to } => {
            let v = eval(arg, values, memories);
            (sign_extend(v & mask(*from), *from) as u64) & mask(*to)
        }
    }
}

/// Unmasked binary-op semantics, shared by the tree-walk evaluator and the
/// bytecode executor so the two engines agree bit for bit by construction.
#[inline]
fn eval_binary(op: BinOp, a: u64, b: u64, aw: u32, bw: u32) -> u64 {
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => {
            if b >= 64 {
                0
            } else {
                a.wrapping_shl(b as u32)
            }
        }
        BinOp::LShr => {
            if b >= 64 {
                0
            } else {
                a.wrapping_shr(b as u32)
            }
        }
        BinOp::AShr => {
            let sa = sign_extend(a, aw);
            (sa >> b.min(127) as i32) as u64
        }
        BinOp::Eq => u64::from(a == b),
        BinOp::Ne => u64::from(a != b),
        BinOp::SLt => u64::from(sign_extend(a, aw) < sign_extend(b, bw)),
        BinOp::SLe => u64::from(sign_extend(a, aw) <= sign_extend(b, bw)),
        BinOp::SGt => u64::from(sign_extend(a, aw) > sign_extend(b, bw)),
        BinOp::SGe => u64::from(sign_extend(a, aw) >= sign_extend(b, bw)),
        BinOp::ULt => u64::from(a < b),
        BinOp::ULe => u64::from(a <= b),
    }
}

/// Execute bytecode tape pcs `[start, end)`: a linear sweep over
/// preallocated buffers with no recursion and no allocation (assertion
/// failure aside). Jump targets are absolute pcs and never leave the range
/// (ranges follow statement boundaries). Returns the number of instructions
/// executed (branch-dependent for step chains; the event scheduler caches
/// it per chain for exact telemetry on skipped cones).
#[allow(clippy::too_many_arguments)]
fn run_tape(
    tape: &[Insn],
    start: usize,
    end: usize,
    regs: &mut [u64],
    values: &mut [u64],
    memories: &[Vec<u64>],
    msgs: &[String],
    pend_nets: &mut Vec<(u32, u64)>,
    pend_mems: &mut Vec<(u32, u64, u64)>,
    failure: &mut Option<String>,
) -> u64 {
    let mut executed = 0u64;
    let mut pc = start;
    while pc < end {
        executed += 1;
        match tape[pc] {
            Insn::LoadNet { dst, net } => regs[dst as usize] = values[net as usize],
            Insn::MemRead { dst, mem, addr, m } => {
                let a = regs[addr as usize] as usize;
                regs[dst as usize] = memories[mem as usize].get(a).copied().unwrap_or(0) & m;
            }
            Insn::Slice { dst, src, lo, m } => {
                regs[dst as usize] = (regs[src as usize] >> lo) & m;
            }
            Insn::Not { dst, src, m } => regs[dst as usize] = !regs[src as usize] & m,
            Insn::LNot { dst, src } => regs[dst as usize] = u64::from(regs[src as usize] == 0),
            Insn::RedOr { dst, src } => regs[dst as usize] = u64::from(regs[src as usize] != 0),
            Insn::Binary {
                op,
                dst,
                a,
                b,
                aw,
                bw,
                m,
            } => {
                regs[dst as usize] =
                    eval_binary(op, regs[a as usize], regs[b as usize], aw, bw) & m;
            }
            Insn::Select {
                dst,
                cond,
                then,
                els,
                m,
            } => {
                let v = if regs[cond as usize] != 0 {
                    regs[then as usize]
                } else {
                    regs[els as usize]
                };
                regs[dst as usize] = v & m;
            }
            Insn::ConcatFirst { dst, src, m } => regs[dst as usize] = regs[src as usize] & m,
            Insn::ConcatPush { dst, src, shift, m } => {
                regs[dst as usize] = (regs[dst as usize] << shift) | (regs[src as usize] & m);
            }
            Insn::MaskReg { dst, m } => regs[dst as usize] &= m,
            Insn::SignExtend {
                dst,
                src,
                from,
                fm,
                m,
            } => {
                regs[dst as usize] = (sign_extend(regs[src as usize] & fm, from) as u64) & m;
            }
            Insn::StoreNet { net, src, m } => values[net as usize] = regs[src as usize] & m,
            Insn::EmitNet { net, src } => pend_nets.push((net, regs[src as usize])),
            Insn::EmitMem { mem, addr, src } => {
                pend_mems.push((mem, regs[addr as usize], regs[src as usize]));
            }
            Insn::Assert { guard, cond, msg } => {
                if failure.is_none() && regs[guard as usize] != 0 && regs[cond as usize] == 0 {
                    *failure = Some(msgs[msg as usize].clone());
                }
            }
            Insn::Jump { target } => {
                pc = target as usize;
                continue;
            }
            Insn::JumpIfZero { src, target } => {
                if regs[src as usize] == 0 {
                    pc = target as usize;
                    continue;
                }
            }
        }
        pc += 1;
    }
    executed
}

fn count_mem_reads(e: &CExpr) -> u64 {
    match e {
        CExpr::Const { .. } | CExpr::Net { .. } => 0,
        CExpr::MemRead { addr, .. } => 1 + count_mem_reads(addr),
        CExpr::Slice { base, .. } => count_mem_reads(base),
        CExpr::Unary { arg, .. } => count_mem_reads(arg),
        CExpr::Binary { lhs, rhs, .. } => count_mem_reads(lhs) + count_mem_reads(rhs),
        CExpr::Ternary {
            cond, then, els, ..
        } => count_mem_reads(cond) + count_mem_reads(then) + count_mem_reads(els),
        CExpr::Concat { parts, .. } => parts.iter().map(count_mem_reads).sum(),
        CExpr::SignExtend { arg, .. } => count_mem_reads(arg),
    }
}

fn collect_deps(e: &CExpr, out: &mut Vec<usize>) {
    match e {
        CExpr::Const { .. } => {}
        CExpr::Net { index, .. } => out.push(*index),
        CExpr::MemRead { addr, .. } => collect_deps(addr, out),
        CExpr::Slice { base, .. } => collect_deps(base, out),
        CExpr::Unary { arg, .. } => collect_deps(arg, out),
        CExpr::Binary { lhs, rhs, .. } => {
            collect_deps(lhs, out);
            collect_deps(rhs, out);
        }
        CExpr::Ternary {
            cond, then, els, ..
        } => {
            collect_deps(cond, out);
            collect_deps(then, out);
            collect_deps(els, out);
        }
        CExpr::Concat { parts, .. } => {
            for p in parts {
                collect_deps(p, out);
            }
        }
        CExpr::SignExtend { arg, .. } => collect_deps(arg, out),
    }
}

/// Order assigns so every net is computed after the nets it reads. Nets that
/// are not assign targets (ports, regs) are sources.
fn topo_sort(
    net_names: &[String],
    compiled: Vec<(usize, CExpr, Vec<usize>)>,
) -> Result<Vec<(usize, CExpr)>, BuildError> {
    let mut producer: HashMap<usize, usize> = HashMap::new(); // net -> assign idx
    for (i, (net, _, _)) in compiled.iter().enumerate() {
        producer.insert(*net, i);
    }
    let n = compiled.len();
    let mut indegree = vec![0usize; n];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, (_, _, deps)) in compiled.iter().enumerate() {
        for d in deps {
            if let Some(&p) = producer.get(d) {
                dependents[p].push(i);
                indegree[i] += 1;
            }
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(i) = queue.pop() {
        order.push(i);
        for &j in &dependents[i] {
            indegree[j] -= 1;
            if indegree[j] == 0 {
                queue.push(j);
            }
        }
    }
    if order.len() != n {
        let cyclic: Vec<String> = (0..n)
            .filter(|&i| indegree[i] > 0)
            .map(|i| net_names[compiled[i].0].clone())
            .collect();
        return Err(BuildError::CombinationalLoop(cyclic));
    }
    let mut result = Vec::with_capacity(n);
    let mut items: Vec<Option<(usize, CExpr)>> = compiled
        .into_iter()
        .map(|(net, e, _)| Some((net, e)))
        .collect();
    for i in order {
        result.push(items[i].take().expect("each assign emitted once"));
    }
    Ok(result)
}

// ------------------------------------------------- event-driven scheduler

/// Lane mask covering every possible stimulus lane (the scalar event
/// engine passes this; the batched engine masks individual lanes).
const ALL_LANES: u64 = u64::MAX;

/// Scheduling tables for [`Engine::Event`] and [`Engine::Batched`]: the
/// static union-find cone partition turned into the scheduler. Each cone
/// executes as a set of pc ranges (chains) of the *unchanged* settle/step
/// tapes; a dirty-set of nets changed this cycle activates exactly the
/// cones whose sensitivity lists intersect it, and quiescent cones are
/// skipped entirely.
///
/// Soundness invariants (see DESIGN.md §11):
/// - a cone's sensitivity list is a sound over-approximation of its true
///   dependence set;
/// - the dirty-set is a superset of the nets whose settled value changed;
/// - a skipped chain's registers hold exactly the values a re-execution
///   would produce (its inputs are unchanged), so shared-CSE registers
///   read across chain boundaries are never stale;
/// - external pokes additionally wake the *writers* of the poked net or
///   memory, which the full-tape engines would rerun to overwrite it.
struct EventState {
    /// Per-assign chain bounds `[start, end)` in the settle tape.
    settle_chains: Vec<(u32, u32)>,
    /// Per-statement chain bounds `[start, end)` in the step tape.
    step_chains: Vec<(u32, u32)>,
    /// Chain indices per step cone in tape order, CSR layout: cone `c`
    /// owns `step_members_flat[off[c]..off[c+1]]`. (Settle needs no such
    /// table — settle scheduler unit `c` is exactly settle chain `c`.)
    step_members_off: Vec<u32>,
    step_members_flat: Vec<u32>,
    /// net -> settle scheduler units with the net in their sensitivity list.
    settle_readers: Csr,
    /// net -> settle scheduler unit producing it (`u32::MAX` when none).
    settle_writer: Vec<u32>,
    /// mem -> settle scheduler units reading it (latency-0 read ports).
    settle_mem_readers: Csr,
    /// settle scheduler unit -> coarse union-find cone (telemetry index).
    settle_unit_cone: Vec<u32>,
    /// net -> step cones reading it.
    step_readers: Csr,
    /// net -> step cones writing it (woken on external pokes only).
    step_writers: Csr,
    step_mem_readers: Csr,
    step_mem_writers: Csr,
    /// Pending settle units as a bitset (bit c of word c/64): the dispatch
    /// loop scans words and pops bits in ascending order, which is tape
    /// order, so skipping costs ~n/64 loads per sweep instead of n.
    settle_pending: Vec<u64>,
    /// Per-cone dirty lane mask (bit i = lane i). The scalar event engine
    /// treats any non-zero mask as pending; the batched engine
    /// re-evaluates only the dirty lanes (per-lane divergence masks).
    step_pending: Vec<u64>,
    /// Summary bitset over `step_pending` (bit c set iff the cone's lane
    /// mask is non-zero), giving the step dispatch the same ~n/64 scan.
    step_dirty: Vec<u64>,
    /// Whether to record changed nets for the telemetry piggyback (set iff
    /// telemetry is enabled): `changed_nets` then holds a deduplicated
    /// superset of the nets whose settled value differs from the previous
    /// accounting point's snapshot.
    track: bool,
    changed_nets: Vec<u32>,
    changed_flag: Vec<bool>,
    /// Scratch: nets changed by the settle cone currently being drained.
    store_changed: Vec<u32>,
    /// Scratch: (net, changed-lane-mask) pairs from a batched settle cone.
    store_changed_lanes: Vec<(u32, u64)>,
    /// Scratch: per-cone busy marks for telemetry accounting.
    settle_busy: Vec<bool>,
    step_busy: Vec<bool>,
    /// Scratch: cones executed during the current settle call.
    settle_ran: Vec<bool>,
    /// Per-cone steady-state (exec, changed) instruction counts: what the
    /// full-tape counting interpreter would record for a quiescent cone.
    /// Exact for skipped cones — with unchanged inputs a re-execution
    /// repeats the same path and register trajectory — so summing cache
    /// entries for skipped cones plus live counts for executed ones equals
    /// the bytecode engine's totals. A cache entry is stale after the cone
    /// executes (its next steady counts may differ) and is refreshed by
    /// one idempotent re-run on the live state.
    settle_cache: Vec<(u64, u64)>,
    settle_stale: Vec<bool>,
    step_cache: Vec<(u64, u64)>,
    step_stale: Vec<bool>,
    /// Scheduler activity counters: cone executions (settle, step) since
    /// construction. Cheap enough to keep unconditionally; surfaced through
    /// [`Simulator::event_activity`] for profiling and reports.
    stat_settle_runs: u64,
    stat_step_runs: u64,
    /// Tape instructions dispatched by those runs (chain lengths summed).
    stat_settle_insns: u64,
    stat_step_insns: u64,
    /// Event-engine share of the sched-stats plane (`Some` iff the
    /// simulator's plane is on): wake-walk and dispatch distributions,
    /// recorded here because the wake methods run while the event state is
    /// detached from the simulator.
    sched: Option<Box<EvSchedStats>>,
}

/// Event-scheduler distributions for the sched-stats plane. Every field is
/// a pure observation of work the scheduler already did — recording never
/// changes which units run or what the tapes compute.
struct EvSchedStats {
    /// Reader-list entries walked per `note_net_change`/`note_net_poked`
    /// wake (settle-reader + step-reader CSR rows; poked nets add their
    /// writer rows as a separate sample).
    net_wake_walk: obs::Histogram,
    /// Reader-list entries walked per `note_mem_change`/`note_mem_poked`.
    mem_wake_walk: obs::Histogram,
    /// Units per coalesced settle dispatch (`pop_pending_run` run length).
    settle_run_len: obs::Histogram,
    /// Back-to-back chains merged per step-tape interpreter call.
    step_run_len: obs::Histogram,
    /// Wake deliveries per settle scheduler unit (may exceed activations:
    /// several inputs of one unit can change in the same sweep).
    settle_unit_wakes: Vec<u64>,
    /// Wake deliveries per step cone.
    step_cone_wakes: Vec<u64>,
}

impl EvSchedStats {
    fn new(n_settle_units: usize, n_step_cones: usize) -> Box<EvSchedStats> {
        Box::new(EvSchedStats {
            net_wake_walk: obs::Histogram::new(),
            mem_wake_walk: obs::Histogram::new(),
            settle_run_len: obs::Histogram::new(),
            step_run_len: obs::Histogram::new(),
            settle_unit_wakes: vec![0; n_settle_units],
            step_cone_wakes: vec![0; n_step_cones],
        })
    }
}

/// A bitset of `n` bits, all set (tail bits beyond `n` stay clear so a
/// word scan never dispatches a nonexistent unit).
fn full_bitset(n: usize) -> Vec<u64> {
    let mut words = vec![u64::MAX; n.div_ceil(64)];
    if !n.is_multiple_of(64) {
        if let Some(last) = words.last_mut() {
            *last = (1u64 << (n % 64)) - 1;
        }
    }
    words
}

/// `net/mem -> unit` adjacency lists in CSR layout: row `i` is
/// `flat[off[i]..off[i+1]]`. One contiguous allocation instead of a
/// `Vec<Vec<_>>` — the wake walks in `note_net_change` run once per changed
/// net per cycle, so the two dependent loads of the nested layout were a
/// measurable share of the event engine's settle time.
struct Csr {
    off: Vec<u32>,
    flat: Vec<u32>,
}

impl Csr {
    fn from_lists(lists: &[Vec<u32>]) -> Csr {
        let mut off = Vec::with_capacity(lists.len() + 1);
        let mut flat = Vec::new();
        off.push(0);
        for l in lists {
            flat.extend_from_slice(l);
            off.push(flat.len() as u32);
        }
        Csr { off, flat }
    }
}

/// The event engine's settle worklist sweep: dispatch maximal runs of
/// consecutive pending units as single contiguous tape ranges (settle
/// chains are laid out back-to-back). A range executes in tape order, so
/// every unit inside it has already seen its in-range producers' final
/// values; wakes the drain re-raises inside the range are therefore
/// satisfied and cleared again. When `record_slot` names a memo slot,
/// the executed ranges and changed-net trace are recorded into it.
fn settle_sweep(
    tape: &[Insn],
    regs: &mut [u64],
    values: &mut [u64],
    memories: &[Vec<u64>],
    ev: &mut EventState,
) {
    loop {
        let mut any = false;
        let mut w = 0;
        while w < ev.settle_pending.len() {
            if ev.settle_pending[w] == 0 {
                w += 1;
                continue;
            }
            let (c0, c1) = pop_pending_run(&mut ev.settle_pending, w);
            any = true;
            ev.stat_settle_runs += (c1 - c0 + 1) as u64;
            if let Some(sc) = ev.sched.as_deref_mut() {
                sc.settle_run_len.record((c1 - c0 + 1) as u64);
            }
            let s = ev.settle_chains[c0].0 as usize;
            let e = ev.settle_chains[c1].1 as usize;
            ev.stat_settle_insns += (e - s) as u64;
            run_settle_range(tape, s, e, regs, values, memories, &mut ev.store_changed);
            let mut i = 0;
            while i < ev.store_changed.len() {
                let net = ev.store_changed[i];
                i += 1;
                ev.note_net_change(net as usize, ALL_LANES);
            }
            ev.store_changed.clear();
            clear_bit_range(&mut ev.settle_pending, c0, c1);
        }
        if !any {
            break;
        }
    }
}

/// Pop the lowest run of consecutive set bits from `words`, starting the
/// scan inside word `w` (which must be non-zero). Returns the inclusive
/// bit-index range of the run and clears its bits. Runs may span words.
///
/// Settle chains are laid out back-to-back in the tape, so a run of
/// consecutive pending units is a single contiguous pc range — one
/// interpreter call instead of one per unit.
fn pop_pending_run(words: &mut [u64], w: usize) -> (usize, usize) {
    let b0 = words[w].trailing_zeros() as usize;
    let first = (w << 6) + b0;
    let mut wi = w;
    let mut b = b0;
    loop {
        let shifted = words[wi] >> b;
        let r = (!shifted).trailing_zeros() as usize; // consecutive ones at b
        let r = r.min(64 - b);
        let mask = if r == 64 {
            u64::MAX
        } else {
            ((1u64 << r) - 1) << b
        };
        words[wi] &= !mask;
        if b + r == 64 && wi + 1 < words.len() && words[wi + 1] & 1 != 0 {
            wi += 1;
            b = 0;
            continue;
        }
        return (first, (wi << 6) + b + r - 1);
    }
}

/// Clear bits `[a, b]` (inclusive) of the bitset.
fn clear_bit_range(words: &mut [u64], a: usize, b: usize) {
    for c in a..=b {
        words[c >> 6] &= !(1u64 << (c & 63));
    }
}

impl EventState {
    fn build(sim: &Simulator) -> Box<EventState> {
        let n_nets = sim.values.len();
        let n_mems = sim.memories.len();
        let chain_bounds = |starts: &[u32], len: usize| -> Vec<(u32, u32)> {
            (0..starts.len())
                .map(|i| {
                    let end = starts.get(i + 1).copied().unwrap_or(len as u32);
                    (starts[i], end)
                })
                .collect()
        };
        // Settle is scheduled at per-assign granularity: the tape is
        // topologically ordered, so an in-order worklist sweep converges
        // without merging producer-consumer pairs, and fine units mean a
        // changed net re-evaluates only its actual readers instead of the
        // whole connected netlist (the union-find cone, which on HLS output
        // typically spans nearly every assign through the shared FSM). The
        // coarse cones remain the telemetry reporting unit;
        // `settle_unit_cone` maps scheduler units onto them.
        let n_assigns = sim.assigns.len();
        let settle_cones = partition_settle(&sim.assigns, &sim.net_names);
        let step_cones = partition_step(&sim.always, &sim.net_names, &sim.mem_names);
        let mut ev = EventState {
            settle_chains: chain_bounds(&sim.settle_chain_starts, sim.settle_tape.len()),
            step_chains: chain_bounds(&sim.step_chain_starts, sim.step_tape.len()),
            step_members_off: Vec::new(),
            step_members_flat: Vec::new(),
            settle_readers: Csr::from_lists(&[]),
            settle_writer: vec![u32::MAX; n_nets],
            settle_mem_readers: Csr::from_lists(&[]),
            step_readers: Csr::from_lists(&[]),
            step_writers: Csr::from_lists(&[]),
            step_mem_readers: Csr::from_lists(&[]),
            step_mem_writers: Csr::from_lists(&[]),
            settle_unit_cone: vec![0; n_assigns],
            settle_pending: full_bitset(n_assigns),
            step_pending: vec![ALL_LANES; step_cones.len()],
            step_dirty: full_bitset(step_cones.len()),
            track: sim.telemetry.is_some(),
            changed_nets: Vec::new(),
            changed_flag: vec![false; n_nets],
            store_changed: Vec::new(),
            store_changed_lanes: Vec::new(),
            settle_busy: vec![false; settle_cones.len()],
            step_busy: vec![false; step_cones.len()],
            settle_ran: vec![false; n_assigns],
            settle_cache: vec![(0, 0); n_assigns],
            settle_stale: vec![true; n_assigns],
            step_cache: vec![(0, 0); step_cones.len()],
            step_stale: vec![true; step_cones.len()],
            stat_settle_runs: 0,
            stat_step_runs: 0,
            stat_settle_insns: 0,
            stat_step_insns: 0,
            sched: sim
                .sched
                .as_ref()
                .map(|_| EvSchedStats::new(n_assigns, step_cones.len())),
        };
        let mut settle_readers = vec![Vec::new(); n_nets];
        let mut settle_mem_readers = vec![Vec::new(); n_mems];
        let mut step_readers = vec![Vec::new(); n_nets];
        let mut step_writers: Vec<Vec<u32>> = vec![Vec::new(); n_nets];
        let mut step_mem_readers = vec![Vec::new(); n_mems];
        let mut step_mem_writers: Vec<Vec<u32>> = vec![Vec::new(); n_mems];
        for (i, (net, e)) in sim.assigns.iter().enumerate() {
            let mut deps = Vec::new();
            collect_deps(e, &mut deps);
            deps.sort_unstable();
            deps.dedup();
            for d in deps {
                settle_readers[d].push(i as u32);
            }
            let mut mems = BTreeSet::new();
            collect_mem_reads_into(e, &mut mems);
            for m in mems {
                settle_mem_readers[m].push(i as u32);
            }
            ev.settle_writer[*net] = i as u32;
        }
        for (c, cone) in settle_cones.iter().enumerate() {
            for &a in &cone.members {
                ev.settle_unit_cone[a as usize] = c as u32;
            }
        }
        for (c, cone) in step_cones.iter().enumerate() {
            for &net in &cone.inputs {
                step_readers[net as usize].push(c as u32);
            }
            for &m in &cone.mem_inputs {
                step_mem_readers[m as usize].push(c as u32);
            }
            for &i in &cone.members {
                let mut reads = BTreeSet::new();
                let mut writes = BTreeSet::new();
                let mut mreads = BTreeSet::new();
                let mut mwrites = BTreeSet::new();
                stmt_effects(
                    &sim.always[i as usize],
                    &mut reads,
                    &mut writes,
                    &mut mreads,
                    &mut mwrites,
                );
                for w in writes {
                    if step_writers[w].last() != Some(&(c as u32)) {
                        step_writers[w].push(c as u32);
                    }
                }
                for m in mwrites {
                    if step_mem_writers[m].last() != Some(&(c as u32)) {
                        step_mem_writers[m].push(c as u32);
                    }
                }
            }
        }
        ev.step_members_off.push(0);
        for cone in &step_cones {
            ev.step_members_flat.extend_from_slice(&cone.members);
            ev.step_members_off.push(ev.step_members_flat.len() as u32);
        }
        ev.settle_readers = Csr::from_lists(&settle_readers);
        ev.settle_mem_readers = Csr::from_lists(&settle_mem_readers);
        ev.step_readers = Csr::from_lists(&step_readers);
        ev.step_writers = Csr::from_lists(&step_writers);
        ev.step_mem_readers = Csr::from_lists(&step_mem_readers);
        ev.step_mem_writers = Csr::from_lists(&step_mem_writers);
        Box::new(ev)
    }

    /// A net's settled value changed (settle store, edge update): wake
    /// every cone that reads it. `lane_mask` limits which batched lanes
    /// re-evaluate.
    fn note_net_change(&mut self, net: usize, lane_mask: u64) {
        if self.track && !self.changed_flag[net] {
            self.changed_flag[net] = true;
            self.changed_nets.push(net as u32);
        }
        let (a, b) = (
            self.settle_readers.off[net] as usize,
            self.settle_readers.off[net + 1] as usize,
        );
        for i in a..b {
            let c = self.settle_readers.flat[i];
            self.wake_settle(c);
        }
        let (a, b) = (
            self.step_readers.off[net] as usize,
            self.step_readers.off[net + 1] as usize,
        );
        for i in a..b {
            let c = self.step_readers.flat[i];
            self.wake_step(c, lane_mask);
        }
        if let Some(sc) = self.sched.as_deref_mut() {
            let (s0, s1) = (
                self.settle_readers.off[net] as usize,
                self.settle_readers.off[net + 1] as usize,
            );
            let (t0, t1) = (
                self.step_readers.off[net] as usize,
                self.step_readers.off[net + 1] as usize,
            );
            sc.net_wake_walk.record((s1 - s0 + t1 - t0) as u64);
            for i in s0..s1 {
                sc.settle_unit_wakes[self.settle_readers.flat[i] as usize] += 1;
            }
            for i in t0..t1 {
                sc.step_cone_wakes[self.step_readers.flat[i] as usize] += 1;
            }
        }
    }

    /// A net was driven externally (`set`/`set_id`): additionally wake its
    /// producers, which the full-tape engines would rerun to overwrite it.
    fn note_net_poked(&mut self, net: usize, lane_mask: u64) {
        self.note_net_change(net, lane_mask);
        let w = self.settle_writer[net];
        if w != u32::MAX {
            self.wake_settle(w);
        }
        let (a, b) = (
            self.step_writers.off[net] as usize,
            self.step_writers.off[net + 1] as usize,
        );
        for i in a..b {
            let c = self.step_writers.flat[i];
            self.wake_step(c, lane_mask);
        }
        if let Some(sc) = self.sched.as_deref_mut() {
            let extra = u64::from(self.settle_writer[net] != u32::MAX) + (b - a) as u64;
            sc.net_wake_walk.record(extra);
        }
    }

    /// A memory word changed at the clock edge: wake readers.
    fn note_mem_change(&mut self, mem: usize, lane_mask: u64) {
        let (a, b) = (
            self.settle_mem_readers.off[mem] as usize,
            self.settle_mem_readers.off[mem + 1] as usize,
        );
        for i in a..b {
            let c = self.settle_mem_readers.flat[i];
            self.wake_settle(c);
        }
        let (a, b) = (
            self.step_mem_readers.off[mem] as usize,
            self.step_mem_readers.off[mem + 1] as usize,
        );
        for i in a..b {
            let c = self.step_mem_readers.flat[i];
            self.wake_step(c, lane_mask);
        }
        if let Some(sc) = self.sched.as_deref_mut() {
            let (s0, s1) = (
                self.settle_mem_readers.off[mem] as usize,
                self.settle_mem_readers.off[mem + 1] as usize,
            );
            let (t0, t1) = (
                self.step_mem_readers.off[mem] as usize,
                self.step_mem_readers.off[mem + 1] as usize,
            );
            sc.mem_wake_walk.record((s1 - s0 + t1 - t0) as u64);
            for i in s0..s1 {
                sc.settle_unit_wakes[self.settle_mem_readers.flat[i] as usize] += 1;
            }
            for i in t0..t1 {
                sc.step_cone_wakes[self.step_mem_readers.flat[i] as usize] += 1;
            }
        }
    }

    /// A memory word was written externally (`write_mem`): wake readers
    /// and writers.
    fn note_mem_poked(&mut self, mem: usize, lane_mask: u64) {
        self.note_mem_change(mem, lane_mask);
        let (a, b) = (
            self.step_mem_writers.off[mem] as usize,
            self.step_mem_writers.off[mem + 1] as usize,
        );
        for i in a..b {
            let c = self.step_mem_writers.flat[i];
            self.wake_step(c, lane_mask);
        }
        if let Some(sc) = self.sched.as_deref_mut() {
            sc.mem_wake_walk.record((b - a) as u64);
        }
    }

    #[inline]
    fn wake_settle(&mut self, c: u32) {
        self.settle_pending[(c >> 6) as usize] |= 1u64 << (c & 63);
    }

    #[inline]
    fn wake_step(&mut self, c: u32, lane_mask: u64) {
        self.step_pending[c as usize] |= lane_mask;
        self.step_dirty[(c >> 6) as usize] |= 1u64 << (c & 63);
    }

    /// Force a full re-evaluation (engine switch, lane rebuild).
    fn mark_all_pending(&mut self) {
        let n = self.settle_chains.len();
        self.settle_pending.copy_from_slice(&full_bitset(n));
        for p in &mut self.step_pending {
            *p = ALL_LANES;
        }
        let n = self.step_members_off.len() - 1;
        self.step_dirty.copy_from_slice(&full_bitset(n));
    }
}

/// Execute settle-tape pcs `[start, end)` — pure ops plus `StoreNet`, no
/// jumps. Like [`run_tape`], but every store compares-and-sets, pushing the
/// ids of nets whose value actually changed into `changed_out`; that
/// dirty-set is what drives the event scheduler.
fn run_settle_range(
    tape: &[Insn],
    start: usize,
    end: usize,
    regs: &mut [u64],
    values: &mut [u64],
    memories: &[Vec<u64>],
    changed_out: &mut Vec<u32>,
) -> u64 {
    for insn in &tape[start..end] {
        match *insn {
            Insn::LoadNet { dst, net } => regs[dst as usize] = values[net as usize],
            Insn::MemRead { dst, mem, addr, m } => {
                let a = regs[addr as usize] as usize;
                regs[dst as usize] = memories[mem as usize].get(a).copied().unwrap_or(0) & m;
            }
            Insn::Slice { dst, src, lo, m } => {
                regs[dst as usize] = (regs[src as usize] >> lo) & m;
            }
            Insn::Not { dst, src, m } => regs[dst as usize] = !regs[src as usize] & m,
            Insn::LNot { dst, src } => regs[dst as usize] = u64::from(regs[src as usize] == 0),
            Insn::RedOr { dst, src } => regs[dst as usize] = u64::from(regs[src as usize] != 0),
            Insn::Binary {
                op,
                dst,
                a,
                b,
                aw,
                bw,
                m,
            } => {
                regs[dst as usize] =
                    eval_binary(op, regs[a as usize], regs[b as usize], aw, bw) & m;
            }
            Insn::Select {
                dst,
                cond,
                then,
                els,
                m,
            } => {
                let v = if regs[cond as usize] != 0 {
                    regs[then as usize]
                } else {
                    regs[els as usize]
                };
                regs[dst as usize] = v & m;
            }
            Insn::ConcatFirst { dst, src, m } => regs[dst as usize] = regs[src as usize] & m,
            Insn::ConcatPush { dst, src, shift, m } => {
                regs[dst as usize] = (regs[dst as usize] << shift) | (regs[src as usize] & m);
            }
            Insn::MaskReg { dst, m } => regs[dst as usize] &= m,
            Insn::SignExtend {
                dst,
                src,
                from,
                fm,
                m,
            } => {
                regs[dst as usize] = (sign_extend(regs[src as usize] & fm, from) as u64) & m;
            }
            Insn::StoreNet { net, src, m } => {
                let v = regs[src as usize] & m;
                let n = net as usize;
                if values[n] != v {
                    values[n] = v;
                    changed_out.push(net);
                }
            }
            _ => debug_assert!(false, "settle tape holds only pure ops and StoreNet"),
        }
    }
    (end - start) as u64
}

/// Telemetry twin of [`run_settle_range`]: the counting interpreter is the
/// executor (exactly as under the full-tape bytecode engine), returning
/// aggregate `(executed, changed)` counts with the same per-destination
/// change semantics as [`run_tape_counting`]. Also serves as the
/// steady-count refresh for a quiescent cone: re-running with unchanged
/// inputs is idempotent on registers and nets (no `changed_out` pushes)
/// and measures what the bytecode engine would count this cycle.
fn run_settle_chain_counting(
    tape: &[Insn],
    start: usize,
    end: usize,
    regs: &mut [u64],
    values: &mut [u64],
    memories: &[Vec<u64>],
    changed_out: &mut Vec<u32>,
) -> (u64, u64) {
    let mut n_changed = 0u64;
    macro_rules! put {
        ($dst:expr, $v:expr) => {{
            let v = $v;
            let d = $dst as usize;
            if regs[d] != v {
                n_changed += 1;
            }
            regs[d] = v;
        }};
    }
    for insn in &tape[start..end] {
        match *insn {
            Insn::LoadNet { dst, net } => put!(dst, values[net as usize]),
            Insn::MemRead { dst, mem, addr, m } => {
                let a = regs[addr as usize] as usize;
                put!(dst, memories[mem as usize].get(a).copied().unwrap_or(0) & m);
            }
            Insn::Slice { dst, src, lo, m } => put!(dst, (regs[src as usize] >> lo) & m),
            Insn::Not { dst, src, m } => put!(dst, !regs[src as usize] & m),
            Insn::LNot { dst, src } => put!(dst, u64::from(regs[src as usize] == 0)),
            Insn::RedOr { dst, src } => put!(dst, u64::from(regs[src as usize] != 0)),
            Insn::Binary {
                op,
                dst,
                a,
                b,
                aw,
                bw,
                m,
            } => put!(
                dst,
                eval_binary(op, regs[a as usize], regs[b as usize], aw, bw) & m
            ),
            Insn::Select {
                dst,
                cond,
                then,
                els,
                m,
            } => {
                let v = if regs[cond as usize] != 0 {
                    regs[then as usize]
                } else {
                    regs[els as usize]
                };
                put!(dst, v & m);
            }
            Insn::ConcatFirst { dst, src, m } => put!(dst, regs[src as usize] & m),
            Insn::ConcatPush { dst, src, shift, m } => {
                put!(
                    dst,
                    (regs[dst as usize] << shift) | (regs[src as usize] & m)
                );
            }
            Insn::MaskReg { dst, m } => put!(dst, regs[dst as usize] & m),
            Insn::SignExtend {
                dst,
                src,
                from,
                fm,
                m,
            } => put!(dst, (sign_extend(regs[src as usize] & fm, from) as u64) & m),
            Insn::StoreNet { net, src, m } => {
                let v = regs[src as usize] & m;
                let n = net as usize;
                if values[n] != v {
                    n_changed += 1;
                    values[n] = v;
                    changed_out.push(net);
                }
            }
            _ => debug_assert!(false, "settle tape holds only pure ops and StoreNet"),
        }
    }
    ((end - start) as u64, n_changed)
}

/// Aggregate-counting twin of [`run_tape_counting`] over a pc range of the
/// step tape: same change semantics, but totals instead of per-pc arrays.
/// Used both as the executor for activated step cones (emissions go to the
/// real pending buffers) and as the steady-count refresh for skipped ones
/// (emissions to scratch buffers; register effects are idempotent because
/// the cone's inputs are unchanged).
#[allow(clippy::too_many_arguments)]
fn run_step_chain_counting(
    tape: &[Insn],
    start: usize,
    end: usize,
    regs: &mut [u64],
    values: &[u64],
    memories: &[Vec<u64>],
    msgs: &[String],
    pend_nets: &mut Vec<(u32, u64)>,
    pend_mems: &mut Vec<(u32, u64, u64)>,
    failure: &mut Option<String>,
    net_masks: &[u64],
    mem_masks: &[u64],
) -> (u64, u64) {
    let mut executed = 0u64;
    let mut n_changed = 0u64;
    let mut pc = start;
    macro_rules! put {
        ($dst:expr, $v:expr) => {{
            let v = $v;
            let d = $dst as usize;
            if regs[d] != v {
                n_changed += 1;
            }
            regs[d] = v;
        }};
    }
    while pc < end {
        executed += 1;
        match tape[pc] {
            Insn::LoadNet { dst, net } => put!(dst, values[net as usize]),
            Insn::MemRead { dst, mem, addr, m } => {
                let a = regs[addr as usize] as usize;
                put!(dst, memories[mem as usize].get(a).copied().unwrap_or(0) & m);
            }
            Insn::Slice { dst, src, lo, m } => put!(dst, (regs[src as usize] >> lo) & m),
            Insn::Not { dst, src, m } => put!(dst, !regs[src as usize] & m),
            Insn::LNot { dst, src } => put!(dst, u64::from(regs[src as usize] == 0)),
            Insn::RedOr { dst, src } => put!(dst, u64::from(regs[src as usize] != 0)),
            Insn::Binary {
                op,
                dst,
                a,
                b,
                aw,
                bw,
                m,
            } => put!(
                dst,
                eval_binary(op, regs[a as usize], regs[b as usize], aw, bw) & m
            ),
            Insn::Select {
                dst,
                cond,
                then,
                els,
                m,
            } => {
                let v = if regs[cond as usize] != 0 {
                    regs[then as usize]
                } else {
                    regs[els as usize]
                };
                put!(dst, v & m);
            }
            Insn::ConcatFirst { dst, src, m } => put!(dst, regs[src as usize] & m),
            Insn::ConcatPush { dst, src, shift, m } => {
                put!(
                    dst,
                    (regs[dst as usize] << shift) | (regs[src as usize] & m)
                );
            }
            Insn::MaskReg { dst, m } => put!(dst, regs[dst as usize] & m),
            Insn::SignExtend {
                dst,
                src,
                from,
                fm,
                m,
            } => put!(dst, (sign_extend(regs[src as usize] & fm, from) as u64) & m),
            Insn::StoreNet { .. } => {
                debug_assert!(false, "step tape has no StoreNet");
            }
            Insn::EmitNet { net, src } => {
                let v = regs[src as usize];
                if (v & net_masks[net as usize]) != values[net as usize] {
                    n_changed += 1;
                }
                pend_nets.push((net, v));
            }
            Insn::EmitMem { mem, addr, src } => {
                let a = regs[addr as usize];
                let v = regs[src as usize];
                if let Some(&cur) = memories[mem as usize].get(a as usize) {
                    if (v & mem_masks[mem as usize]) != cur {
                        n_changed += 1;
                    }
                }
                pend_mems.push((mem, a, v));
            }
            Insn::Assert { guard, cond, msg } => {
                if failure.is_none() && regs[guard as usize] != 0 && regs[cond as usize] == 0 {
                    *failure = Some(msgs[msg as usize].clone());
                }
            }
            Insn::Jump { target } => {
                pc = target as usize;
                continue;
            }
            Insn::JumpIfZero { src, target } => {
                if regs[src as usize] == 0 {
                    pc = target as usize;
                    continue;
                }
            }
        }
        pc += 1;
    }
    (executed, n_changed)
}

// ----------------------------------------------- batched stimulus lanes

/// Per-lane state for [`Engine::Batched`]: N independent 2-state stimulus
/// lanes evaluated in one pass over the cone tapes. Storage is lane-major
/// (`slot = index * lanes + lane`) so each instruction's inner lane loop
/// is one contiguous sweep the compiler auto-vectorizes — logic ops
/// evaluate bit-parallel across lanes in SIMD words, while step-tape
/// control flow runs per lane under the cone's dirty-lane divergence mask.
/// Lane 0 mirrors the scalar `values`/`memories` arrays exactly, so VCD,
/// telemetry, and the scalar accessors observe a bit-identical scalar run.
struct BatchState {
    lanes: usize,
    /// Lane-major net values (`net * lanes + lane`).
    values: Vec<u64>,
    /// Lane-major registers (`reg * lanes + lane`).
    regs: Vec<u64>,
    /// Lane-major memory words (`addr * lanes + lane`).
    mems: Vec<Vec<u64>>,
    /// Per-lane non-blocking update buffers.
    pend_nets: Vec<Vec<(u32, u64)>>,
    pend_mems: Vec<Vec<(u32, u64, u64)>>,
    /// First assertion failure per lane this step.
    failures: Vec<Option<String>>,
    /// Scratch worklist of `(pc, lane-mask)` segments for the SIMT step
    /// interpreter (empty between steps).
    work: Vec<(u32, u64)>,
    /// Commit scratch: per-net changed-lane mask plus the list of nets
    /// touched this cycle, so each changed net wakes its readers with
    /// one combined mask instead of one walk per lane (zeroed between
    /// cycles).
    note_net_mask: Vec<u64>,
    note_nets: Vec<u32>,
    note_mem_mask: Vec<u64>,
    note_mems: Vec<u32>,
}

impl BatchState {
    fn build(sim: &Simulator, lanes: usize) -> Box<BatchState> {
        let rep = |xs: &[u64]| -> Vec<u64> {
            let mut out = Vec::with_capacity(xs.len() * lanes);
            for &x in xs {
                out.extend(std::iter::repeat_n(x, lanes));
            }
            out
        };
        Box::new(BatchState {
            lanes,
            values: rep(&sim.values),
            regs: rep(&sim.regs),
            mems: sim.memories.iter().map(|m| rep(m)).collect(),
            pend_nets: vec![Vec::new(); lanes],
            pend_mems: vec![Vec::new(); lanes],
            failures: vec![None; lanes],
            work: Vec::new(),
            note_net_mask: vec![0; sim.values.len()],
            note_nets: Vec::new(),
            note_mem_mask: vec![0; sim.memories.len()],
            note_mems: Vec::new(),
        })
    }
}

/// Vector twin of [`run_settle_range`]: evaluates every lane of each
/// instruction in one contiguous lane-major sweep. Stores compare per
/// lane, mirror lane 0 into the scalar `values`, and report
/// `(net, changed-lane-mask)` pairs.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn run_settle_range_batched_body<const L: usize>(
    tape: &[Insn],
    start: usize,
    end: usize,
    lanes: usize,
    regs: &mut [u64],
    values: &mut [u64],
    scalar_values: &mut [u64],
    mems: &[Vec<u64>],
    changed_out: &mut Vec<(u32, u64)>,
) {
    let l = if L == 0 { lanes } else { L };
    for insn in &tape[start..end] {
        match *insn {
            Insn::LoadNet { dst, net } => {
                let (d, n) = (dst as usize * l, net as usize * l);
                assert!(d + l <= regs.len() && n + l <= values.len());
                regs[d..d + l].copy_from_slice(&values[n..n + l]);
            }
            Insn::MemRead { dst, mem, addr, m } => {
                let (d, a) = (dst as usize * l, addr as usize * l);
                let mm = &mems[mem as usize];
                let depth = mm.len() / l;
                assert!(d + l <= regs.len() && a + l <= regs.len());
                for k in 0..l {
                    let idx = regs[a + k] as usize;
                    regs[d + k] = if idx < depth { mm[idx * l + k] & m } else { 0 };
                }
            }
            Insn::Slice { dst, src, lo, m } => {
                let (d, s) = (dst as usize * l, src as usize * l);
                assert!(d + l <= regs.len() && s + l <= regs.len());
                for k in 0..l {
                    regs[d + k] = (regs[s + k] >> lo) & m;
                }
            }
            Insn::Not { dst, src, m } => {
                let (d, s) = (dst as usize * l, src as usize * l);
                assert!(d + l <= regs.len() && s + l <= regs.len());
                for k in 0..l {
                    regs[d + k] = !regs[s + k] & m;
                }
            }
            Insn::LNot { dst, src } => {
                let (d, s) = (dst as usize * l, src as usize * l);
                assert!(d + l <= regs.len() && s + l <= regs.len());
                for k in 0..l {
                    regs[d + k] = u64::from(regs[s + k] == 0);
                }
            }
            Insn::RedOr { dst, src } => {
                let (d, s) = (dst as usize * l, src as usize * l);
                assert!(d + l <= regs.len() && s + l <= regs.len());
                for k in 0..l {
                    regs[d + k] = u64::from(regs[s + k] != 0);
                }
            }
            Insn::Binary {
                op,
                dst,
                a,
                b,
                aw,
                bw,
                m,
            } => {
                let (d, ra, rb) = (dst as usize * l, a as usize * l, b as usize * l);
                binary_lanes_dense(op, regs, d, ra, rb, l, aw, bw, m);
            }
            Insn::Select {
                dst,
                cond,
                then,
                els,
                m,
            } => {
                let (d, c, t, e) = (
                    dst as usize * l,
                    cond as usize * l,
                    then as usize * l,
                    els as usize * l,
                );
                assert!(
                    d + l <= regs.len()
                        && c + l <= regs.len()
                        && t + l <= regs.len()
                        && e + l <= regs.len()
                );
                for k in 0..l {
                    let v = if regs[c + k] != 0 {
                        regs[t + k]
                    } else {
                        regs[e + k]
                    };
                    regs[d + k] = v & m;
                }
            }
            Insn::ConcatFirst { dst, src, m } => {
                let (d, s) = (dst as usize * l, src as usize * l);
                assert!(d + l <= regs.len() && s + l <= regs.len());
                for k in 0..l {
                    regs[d + k] = regs[s + k] & m;
                }
            }
            Insn::ConcatPush { dst, src, shift, m } => {
                let (d, s) = (dst as usize * l, src as usize * l);
                assert!(d + l <= regs.len() && s + l <= regs.len());
                for k in 0..l {
                    regs[d + k] = (regs[d + k] << shift) | (regs[s + k] & m);
                }
            }
            Insn::MaskReg { dst, m } => {
                let d = dst as usize * l;
                assert!(d + l <= regs.len());
                for k in 0..l {
                    regs[d + k] &= m;
                }
            }
            Insn::SignExtend {
                dst,
                src,
                from,
                fm,
                m,
            } => {
                let (d, s) = (dst as usize * l, src as usize * l);
                assert!(d + l <= regs.len() && s + l <= regs.len());
                for k in 0..l {
                    regs[d + k] = (sign_extend(regs[s + k] & fm, from) as u64) & m;
                }
            }
            Insn::StoreNet { net, src, m } => {
                let (n, s) = (net as usize * l, src as usize * l);
                assert!(n + l <= values.len() && s + l <= regs.len());
                let mut mask_changed = 0u64;
                for k in 0..l {
                    let v = regs[s + k] & m;
                    if values[n + k] != v {
                        values[n + k] = v;
                        mask_changed |= 1u64 << k;
                    }
                }
                scalar_values[net as usize] = values[n];
                if mask_changed != 0 {
                    changed_out.push((net, mask_changed));
                }
            }
            _ => debug_assert!(false, "settle tape holds only pure ops and StoreNet"),
        }
    }
}

/// [`run_settle_range_batched_body`] compiled with AVX2 enabled: the
/// dense per-lane loops auto-vectorize to 256-bit ops. Safety: caller
/// checked the CPU feature at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn run_settle_range_batched_avx2<const L: usize>(
    tape: &[Insn],
    start: usize,
    end: usize,
    lanes: usize,
    regs: &mut [u64],
    values: &mut [u64],
    scalar_values: &mut [u64],
    mems: &[Vec<u64>],
    changed_out: &mut Vec<(u32, u64)>,
) {
    run_settle_range_batched_body::<L>(
        tape,
        start,
        end,
        lanes,
        regs,
        values,
        scalar_values,
        mems,
        changed_out,
    )
}

/// Runtime-dispatching front end for the batched settle interpreter.
/// Dispatches on the CPU's vector features and specializes the common
/// lane counts so the per-lane loops get compile-time trip counts.
#[allow(clippy::too_many_arguments)]
fn run_settle_range_batched(
    tape: &[Insn],
    start: usize,
    end: usize,
    lanes: usize,
    regs: &mut [u64],
    values: &mut [u64],
    scalar_values: &mut [u64],
    mems: &[Vec<u64>],
    changed_out: &mut Vec<(u32, u64)>,
) {
    macro_rules! go {
        ($l:literal) => {{
            #[cfg(target_arch = "x86_64")]
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: feature checked above.
                unsafe {
                    return run_settle_range_batched_avx2::<$l>(
                        tape,
                        start,
                        end,
                        lanes,
                        regs,
                        values,
                        scalar_values,
                        mems,
                        changed_out,
                    );
                }
            }
            run_settle_range_batched_body::<$l>(
                tape,
                start,
                end,
                lanes,
                regs,
                values,
                scalar_values,
                mems,
                changed_out,
            )
        }};
    }
    match lanes {
        64 => go!(64),
        32 => go!(32),
        16 => go!(16),
        8 => go!(8),
        _ => go!(0),
    }
}

/// Dense-lane binary op: the operator match is hoisted out of the lane
/// loop so each arm is a flat, auto-vectorizable sweep over the
/// lane-major rows. Semantics are exactly [`eval_binary`] per lane.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn binary_lanes_dense(
    op: BinOp,
    regs: &mut [u64],
    d: usize,
    ra: usize,
    rb: usize,
    l: usize,
    aw: u32,
    bw: u32,
    m: u64,
) {
    macro_rules! lane_op {
        (|$a:ident, $b:ident| $e:expr) => {{
            assert!(d + l <= regs.len() && ra + l <= regs.len() && rb + l <= regs.len());
            for k in 0..l {
                let $a = regs[ra + k];
                let $b = regs[rb + k];
                regs[d + k] = ($e) & m;
            }
        }};
    }
    match op {
        BinOp::Add => lane_op!(|a, b| a.wrapping_add(b)),
        BinOp::Sub => lane_op!(|a, b| a.wrapping_sub(b)),
        BinOp::Mul => lane_op!(|a, b| a.wrapping_mul(b)),
        BinOp::And => lane_op!(|a, b| a & b),
        BinOp::Or => lane_op!(|a, b| a | b),
        BinOp::Xor => lane_op!(|a, b| a ^ b),
        BinOp::Shl => lane_op!(|a, b| if b >= 64 { 0 } else { a.wrapping_shl(b as u32) }),
        BinOp::LShr => lane_op!(|a, b| if b >= 64 { 0 } else { a.wrapping_shr(b as u32) }),
        BinOp::AShr => lane_op!(|a, b| (sign_extend(a, aw) >> b.min(127) as i32) as u64),
        BinOp::Eq => lane_op!(|a, b| u64::from(a == b)),
        BinOp::Ne => lane_op!(|a, b| u64::from(a != b)),
        BinOp::SLt => lane_op!(|a, b| u64::from(sign_extend(a, aw) < sign_extend(b, bw))),
        BinOp::SLe => lane_op!(|a, b| u64::from(sign_extend(a, aw) <= sign_extend(b, bw))),
        BinOp::SGt => lane_op!(|a, b| u64::from(sign_extend(a, aw) > sign_extend(b, bw))),
        BinOp::SGe => lane_op!(|a, b| u64::from(sign_extend(a, aw) >= sign_extend(b, bw))),
        BinOp::ULt => lane_op!(|a, b| u64::from(a < b)),
        BinOp::ULe => lane_op!(|a, b| u64::from(a <= b)),
    }
}

/// Iterate the active lanes of `mask`: a dense loop when every lane is
/// active (the auto-vectorizable common case) and a set-bit walk otherwise.
#[inline(always)]
fn for_lanes(mask: u64, lanes: usize, full: u64, mut f: impl FnMut(usize)) {
    if mask == full {
        for k in 0..lanes {
            f(k);
        }
    } else {
        let mut m = mask;
        while m != 0 {
            let k = m.trailing_zeros() as usize;
            m &= m - 1;
            f(k);
        }
    }
}

/// Decode-once twin of [`run_tape_lane`]: executes step-tape pcs
/// `[start, end)` for every lane in `mask0` at once over the lane-major
/// state. Control flow is SIMT-style — when a `JumpIfZero` condition
/// differs across active lanes, the taken subset is parked on the `work`
/// list and the fall-through subset continues; each lane still traverses
/// its own path in tape order, so per-lane emission order and
/// first-failure semantics match the one-lane-at-a-time interpreter
/// exactly. Lane 0 emits into the scalar engine's buffers (`lane0_*`),
/// other lanes into their per-lane buffers.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn run_tape_lanes_body<const L: usize>(
    tape: &[Insn],
    start: usize,
    end: usize,
    mask0: u64,
    lanes: usize,
    regs: &mut [u64],
    values: &[u64],
    mems: &[Vec<u64>],
    msgs: &[String],
    lane0_nets: &mut Vec<(u32, u64)>,
    lane0_mems: &mut Vec<(u32, u64, u64)>,
    lane0_failure: &mut Option<String>,
    pend_nets: &mut [Vec<(u32, u64)>],
    pend_mems: &mut [Vec<(u32, u64, u64)>],
    failures: &mut [Option<String>],
    work: &mut Vec<(u32, u64)>,
) {
    let l = if L == 0 { lanes } else { L };
    let full = if l >= 64 { u64::MAX } else { (1u64 << l) - 1 };
    debug_assert!(work.is_empty());
    let mut pc = start;
    let mut mask = mask0 & full;
    loop {
        if mask == 0 || pc >= end {
            match work.pop() {
                Some((p, m)) => {
                    pc = p as usize;
                    mask = m;
                    continue;
                }
                None => break,
            }
        }
        match tape[pc] {
            Insn::LoadNet { dst, net } => {
                let (d, n) = (dst as usize * l, net as usize * l);
                assert!(d + l <= regs.len() && n + l <= values.len());
                for_lanes(mask, l, full, |k| regs[d + k] = values[n + k]);
            }
            Insn::MemRead { dst, mem, addr, m } => {
                let (d, a) = (dst as usize * l, addr as usize * l);
                let mm = &mems[mem as usize];
                let depth = mm.len() / l;
                assert!(d + l <= regs.len() && a + l <= regs.len());
                for_lanes(mask, l, full, |k| {
                    let idx = regs[a + k] as usize;
                    regs[d + k] = if idx < depth { mm[idx * l + k] & m } else { 0 };
                });
            }
            Insn::Slice { dst, src, lo, m } => {
                let (d, sr) = (dst as usize * l, src as usize * l);
                assert!(d + l <= regs.len() && sr + l <= regs.len());
                for_lanes(mask, l, full, |k| regs[d + k] = (regs[sr + k] >> lo) & m);
            }
            Insn::Not { dst, src, m } => {
                let (d, sr) = (dst as usize * l, src as usize * l);
                assert!(d + l <= regs.len() && sr + l <= regs.len());
                for_lanes(mask, l, full, |k| regs[d + k] = !regs[sr + k] & m);
            }
            Insn::LNot { dst, src } => {
                let (d, sr) = (dst as usize * l, src as usize * l);
                assert!(d + l <= regs.len() && sr + l <= regs.len());
                for_lanes(mask, l, full, |k| {
                    regs[d + k] = u64::from(regs[sr + k] == 0);
                });
            }
            Insn::RedOr { dst, src } => {
                let (d, sr) = (dst as usize * l, src as usize * l);
                assert!(d + l <= regs.len() && sr + l <= regs.len());
                for_lanes(mask, l, full, |k| {
                    regs[d + k] = u64::from(regs[sr + k] != 0);
                });
            }
            Insn::Binary {
                op,
                dst,
                a,
                b,
                aw,
                bw,
                m,
            } => {
                let (d, ra, rb) = (dst as usize * l, a as usize * l, b as usize * l);
                if mask == full {
                    binary_lanes_dense(op, regs, d, ra, rb, l, aw, bw, m);
                } else {
                    let mut mm = mask;
                    while mm != 0 {
                        let k = mm.trailing_zeros() as usize;
                        mm &= mm - 1;
                        regs[d + k] = eval_binary(op, regs[ra + k], regs[rb + k], aw, bw) & m;
                    }
                }
            }
            Insn::Select {
                dst,
                cond,
                then,
                els,
                m,
            } => {
                let (d, c, t, e) = (
                    dst as usize * l,
                    cond as usize * l,
                    then as usize * l,
                    els as usize * l,
                );
                assert!(
                    d + l <= regs.len()
                        && c + l <= regs.len()
                        && t + l <= regs.len()
                        && e + l <= regs.len()
                );
                for_lanes(mask, l, full, |k| {
                    let v = if regs[c + k] != 0 {
                        regs[t + k]
                    } else {
                        regs[e + k]
                    };
                    regs[d + k] = v & m;
                });
            }
            Insn::ConcatFirst { dst, src, m } => {
                let (d, sr) = (dst as usize * l, src as usize * l);
                assert!(d + l <= regs.len() && sr + l <= regs.len());
                for_lanes(mask, l, full, |k| regs[d + k] = regs[sr + k] & m);
            }
            Insn::ConcatPush { dst, src, shift, m } => {
                let (d, sr) = (dst as usize * l, src as usize * l);
                assert!(d + l <= regs.len() && sr + l <= regs.len());
                for_lanes(mask, l, full, |k| {
                    regs[d + k] = (regs[d + k] << shift) | (regs[sr + k] & m);
                });
            }
            Insn::MaskReg { dst, m } => {
                let d = dst as usize * l;
                assert!(d + l <= regs.len());
                for_lanes(mask, l, full, |k| regs[d + k] &= m);
            }
            Insn::SignExtend {
                dst,
                src,
                from,
                fm,
                m,
            } => {
                let (d, sr) = (dst as usize * l, src as usize * l);
                assert!(d + l <= regs.len() && sr + l <= regs.len());
                for_lanes(mask, l, full, |k| {
                    regs[d + k] = (sign_extend(regs[sr + k] & fm, from) as u64) & m;
                });
            }
            Insn::StoreNet { .. } => {
                debug_assert!(false, "step tape has no StoreNet");
            }
            Insn::EmitNet { net, src } => {
                let sr = src as usize * l;
                let mut m = mask;
                while m != 0 {
                    let k = m.trailing_zeros() as usize;
                    m &= m - 1;
                    if k == 0 {
                        lane0_nets.push((net, regs[sr]));
                    } else {
                        pend_nets[k].push((net, regs[sr + k]));
                    }
                }
            }
            Insn::EmitMem { mem, addr, src } => {
                let (a, sr) = (addr as usize * l, src as usize * l);
                let mut m = mask;
                while m != 0 {
                    let k = m.trailing_zeros() as usize;
                    m &= m - 1;
                    if k == 0 {
                        lane0_mems.push((mem, regs[a], regs[sr]));
                    } else {
                        pend_mems[k].push((mem, regs[a + k], regs[sr + k]));
                    }
                }
            }
            Insn::Assert { guard, cond, msg } => {
                let (g, c) = (guard as usize * l, cond as usize * l);
                let mut m = mask;
                while m != 0 {
                    let k = m.trailing_zeros() as usize;
                    m &= m - 1;
                    if regs[g + k] != 0 && regs[c + k] == 0 {
                        let slot = if k == 0 {
                            &mut *lane0_failure
                        } else {
                            &mut failures[k]
                        };
                        if slot.is_none() {
                            *slot = Some(msgs[msg as usize].clone());
                        }
                    }
                }
            }
            Insn::Jump { target } => {
                pc = target as usize;
                continue;
            }
            Insn::JumpIfZero { src, target } => {
                let sr = src as usize * l;
                assert!(sr + l <= regs.len());
                let mut taken = 0u64;
                for_lanes(mask, l, full, |k| {
                    taken |= u64::from(regs[sr + k] == 0) << k;
                });
                if taken == mask {
                    pc = target as usize;
                    continue;
                }
                if taken != 0 {
                    work.push((target, taken));
                    mask &= !taken;
                }
            }
        }
        pc += 1;
    }
}

/// [`run_tape_lanes_body`] compiled with AVX2 enabled: the dense lane
/// loops auto-vectorize to 256-bit ops. Safety: caller checked the CPU
/// feature at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn run_tape_lanes_avx2<const L: usize>(
    tape: &[Insn],
    start: usize,
    end: usize,
    mask0: u64,
    lanes: usize,
    regs: &mut [u64],
    values: &[u64],
    mems: &[Vec<u64>],
    msgs: &[String],
    lane0_nets: &mut Vec<(u32, u64)>,
    lane0_mems: &mut Vec<(u32, u64, u64)>,
    lane0_failure: &mut Option<String>,
    pend_nets: &mut [Vec<(u32, u64)>],
    pend_mems: &mut [Vec<(u32, u64, u64)>],
    failures: &mut [Option<String>],
    work: &mut Vec<(u32, u64)>,
) {
    run_tape_lanes_body::<L>(
        tape,
        start,
        end,
        mask0,
        lanes,
        regs,
        values,
        mems,
        msgs,
        lane0_nets,
        lane0_mems,
        lane0_failure,
        pend_nets,
        pend_mems,
        failures,
        work,
    )
}

/// Runtime-dispatching front end for the SIMT step interpreter.
/// Dispatches on the CPU's vector features and specializes the common
/// lane counts so the per-lane loops get compile-time trip counts.
#[allow(clippy::too_many_arguments)]
fn run_tape_lanes(
    tape: &[Insn],
    start: usize,
    end: usize,
    mask0: u64,
    lanes: usize,
    regs: &mut [u64],
    values: &[u64],
    mems: &[Vec<u64>],
    msgs: &[String],
    lane0_nets: &mut Vec<(u32, u64)>,
    lane0_mems: &mut Vec<(u32, u64, u64)>,
    lane0_failure: &mut Option<String>,
    pend_nets: &mut [Vec<(u32, u64)>],
    pend_mems: &mut [Vec<(u32, u64, u64)>],
    failures: &mut [Option<String>],
    work: &mut Vec<(u32, u64)>,
) {
    macro_rules! go {
        ($l:literal) => {{
            #[cfg(target_arch = "x86_64")]
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: feature checked above.
                unsafe {
                    return run_tape_lanes_avx2::<$l>(
                        tape,
                        start,
                        end,
                        mask0,
                        lanes,
                        regs,
                        values,
                        mems,
                        msgs,
                        lane0_nets,
                        lane0_mems,
                        lane0_failure,
                        pend_nets,
                        pend_mems,
                        failures,
                        work,
                    );
                }
            }
            run_tape_lanes_body::<$l>(
                tape,
                start,
                end,
                mask0,
                lanes,
                regs,
                values,
                mems,
                msgs,
                lane0_nets,
                lane0_mems,
                lane0_failure,
                pend_nets,
                pend_mems,
                failures,
                work,
            )
        }};
    }
    match lanes {
        64 => go!(64),
        32 => go!(32),
        16 => go!(16),
        8 => go!(8),
        _ => go!(0),
    }
}

// ------------------------------------------------------------- telemetry

/// Opt-in runtime telemetry state. Lives behind an `Option<Box<_>>` on the
/// simulator so the disabled path costs one pointer check per phase and the
/// original tapes stay byte-identical: counting runs on private clones
/// compiled on demand by [`Simulator::enable_telemetry`].
struct Telemetry {
    /// Settled values at the previous accounting point (end of each step).
    prev: Vec<u64>,
    /// Per-net: cycles in which the net's value changed.
    toggle_cycles: Vec<u64>,
    /// Per-net: total bit flips across all cycles.
    bit_toggles: Vec<u64>,
    /// Per-net: cycles in which the net was non-zero. Maintained lazily:
    /// exact only through the accounting point recorded in `high_since`;
    /// the still-open run of unchanged cycles is credited at report time.
    high_cycles: Vec<u64>,
    /// Per-net: accounting point (1-based `cycles` value) up to which
    /// `high_cycles` has been credited; `prev` has held its value since.
    high_since: Vec<u64>,
    /// Accounting points seen (== steps since telemetry was enabled).
    cycles: u64,
    settle_cones: Vec<Cone>,
    step_cones: Vec<Cone>,
    /// Memories written during the current cycle (cleared each accounting).
    mems_written: Vec<bool>,
    /// Private clones of the tapes, executed by the counting interpreter.
    settle_tape: Vec<Insn>,
    step_tape: Vec<Insn>,
    /// Per-insn counters, indexed by pc in the cloned tapes.
    settle_exec: Vec<u64>,
    settle_changed: Vec<u64>,
    step_exec: Vec<u64>,
    step_changed: Vec<u64>,
    /// Aggregate instruction counts accumulated by the event engine (live
    /// counting on activated cones plus cached steady counts for skipped
    /// ones); added to the per-pc sums at report time so totals stay
    /// byte-identical to the full-tape engines.
    settle_exec_extra: u64,
    settle_changed_extra: u64,
    step_exec_extra: u64,
    step_changed_extra: u64,
    net_masks: Vec<u64>,
    mem_masks: Vec<u64>,
    /// Scratch state for counting under the tree-walk engine: the counting
    /// tape runs here (counts only) while the tree-walk drives the real
    /// state, so both engines report identical numbers.
    scratch_regs: Vec<u64>,
    scratch_values: Vec<u64>,
    scratch_pend_nets: Vec<(u32, u64)>,
    scratch_pend_mems: Vec<(u32, u64, u64)>,
    record_trace: bool,
}

/// Simulator-level share of the sched-stats plane: per-cycle dirty-set
/// occupancy and commit-phase compare outcomes (both engine-independent
/// observation points). The event-engine distributions live in
/// [`EvSchedStats`] because the wake methods run on a detached
/// `EventState`.
struct SchedStats {
    /// Steps observed since the plane was enabled.
    cycles: u64,
    /// Step-cone dirty-set occupancy, sampled once per step before
    /// dispatch (full-tape engines sample the trivially-full count).
    dirty_cones: obs::Histogram,
    /// The same occupancy as a per-cycle series, for `--sim-trace` counter
    /// tracks (4 bytes/cycle).
    dirty_series: Vec<u32>,
    /// Non-blocking commit outcomes: every pending update is compared
    /// against the live state; only actual changes wake readers. A high
    /// compare-to-change ratio is scheduling overhead (spurious wakes).
    commit_net_compares: u64,
    commit_net_changes: u64,
    commit_mem_compares: u64,
    commit_mem_changes: u64,
    /// Full-tape settles observed (bytecode/tree-walk engines only).
    full_settles: u64,
    /// Step-cone count, cached for the trivially-full occupancy sample.
    n_step_cones: usize,
}

/// Wake attribution for one telemetry cone in a [`SchedStatsReport`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchedConeWakes {
    /// Cone name (same partition as [`ConeTelemetry`], so callers can join
    /// wake counts with quiescence/utilization).
    pub cone: String,
    /// Assigns (settle) or always-statements (step) in the cone.
    pub units: u64,
    /// Wake deliveries to the cone's scheduler units (event engines) or
    /// unconditional activations (full-tape engines).
    pub wakes: u64,
}

/// Everything the scheduler-statistics plane measured. All counts are
/// deterministic functions of the stimulus — serialization is
/// byte-identical across runs and thread counts.
#[derive(Clone, Debug, PartialEq)]
pub struct SchedStatsReport {
    /// Engine the stats were collected under (`"bytecode"`, `"treewalk"`,
    /// `"event"`, `"batched"`).
    pub engine: String,
    /// Steps observed since the plane was enabled.
    pub cycles: u64,
    /// Settle scheduler units (assigns) in the design.
    pub settle_units: u64,
    /// Step cones in the design.
    pub step_cone_count: u64,
    /// Settle unit executions (full-tape: units × settles).
    pub settle_runs: u64,
    /// Step cone activations (full-tape: cones × cycles).
    pub step_runs: u64,
    /// Tape instructions dispatched by settle runs.
    pub settle_insns: u64,
    /// Tape instructions dispatched by step runs.
    pub step_insns: u64,
    /// Per-cycle step-cone dirty-set occupancy.
    pub dirty_cones: obs::Histogram,
    /// Reader-list entries walked per net wake.
    pub net_wake_walk: obs::Histogram,
    /// Reader-list entries walked per memory wake.
    pub mem_wake_walk: obs::Histogram,
    /// Units per coalesced settle dispatch.
    pub settle_run_len: obs::Histogram,
    /// Back-to-back chains merged per step-tape interpreter call.
    pub step_run_len: obs::Histogram,
    pub commit_net_compares: u64,
    pub commit_net_changes: u64,
    pub commit_mem_compares: u64,
    pub commit_mem_changes: u64,
    /// Per-cone wake attribution, same partition as the telemetry report.
    pub settle_cones: Vec<SchedConeWakes>,
    pub step_cones: Vec<SchedConeWakes>,
}

impl SchedStatsReport {
    /// Fraction of commit compares that did **not** change the committed
    /// value: pure scheduling overhead (the wake that produced the update
    /// was spurious). 0.0 when nothing was committed.
    pub fn spurious_wake_rate(&self) -> f64 {
        let compares = self.commit_net_compares + self.commit_mem_compares;
        if compares == 0 {
            return 0.0;
        }
        let changes = self.commit_net_changes + self.commit_mem_changes;
        (compares - changes) as f64 / compares as f64
    }

    /// Deterministic cycle-share breakdown of where the engine's time goes,
    /// in fixed per-event cost units: one unit ≈ one dispatched tape
    /// instruction ≈ one reader-list entry walked ≈ one commit compare
    /// (each ~2 ns on the ROADMAP reference machine — this is the model
    /// behind the 16×-instruction-skip vs 5×-wall-clock gap). Returns
    /// `(label, cost units, share)` rows; shares sum to 1. Computed purely
    /// from event counts, never wall clock, so the breakdown is
    /// byte-identical across runs.
    pub fn cycle_share(&self) -> [(&'static str, u64, f64); 3] {
        let interp = self.settle_insns + self.step_insns;
        let walks = self.net_wake_walk.sum() + self.mem_wake_walk.sum();
        let commits = self.commit_net_compares + self.commit_mem_compares;
        let total = (interp + walks + commits).max(1);
        let f = |x: u64| x as f64 / total as f64;
        [
            ("interpreter", interp, f(interp)),
            ("wake_walks", walks, f(walks)),
            ("commit_compares", commits, f(commits)),
        ]
    }

    /// Strict single-line JSON (newline-terminated), parseable by
    /// `obs::json` / `jsonv`. Byte-identical across runs and `--threads`.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str(&format!(
            "{{\"engine\":\"{}\",\"cycles\":{},\"settle_units\":{},\"step_cones\":{}",
            json_escape(&self.engine),
            self.cycles,
            self.settle_units,
            self.step_cone_count
        ));
        s.push_str(&format!(
            ",\"interp\":{{\"settle_runs\":{},\"step_runs\":{},\"settle_insns\":{},\"step_insns\":{}}}",
            self.settle_runs, self.step_runs, self.settle_insns, self.step_insns
        ));
        s.push_str(&format!(",\"dirty_cones\":{}", self.dirty_cones.to_json()));
        s.push_str(&format!(
            ",\"net_wake_walk\":{}",
            self.net_wake_walk.to_json()
        ));
        s.push_str(&format!(
            ",\"mem_wake_walk\":{}",
            self.mem_wake_walk.to_json()
        ));
        s.push_str(&format!(
            ",\"settle_run_len\":{}",
            self.settle_run_len.to_json()
        ));
        s.push_str(&format!(
            ",\"step_run_len\":{}",
            self.step_run_len.to_json()
        ));
        s.push_str(&format!(
            ",\"commit\":{{\"net_compares\":{},\"net_changes\":{},\"mem_compares\":{},\"mem_changes\":{},\"spurious_wake_rate\":{:.6}}}",
            self.commit_net_compares,
            self.commit_net_changes,
            self.commit_mem_compares,
            self.commit_mem_changes,
            self.spurious_wake_rate()
        ));
        s.push_str(",\"cycle_share\":{");
        for (i, (label, units, share)) in self.cycle_share().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\"{label}\":{{\"cost_units\":{units},\"share\":{share:.6}}}"
            ));
        }
        s.push('}');
        let cones = |s: &mut String, key: &str, list: &[SchedConeWakes]| {
            s.push_str(&format!("\"{key}\":["));
            for (i, c) in list.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "{{\"cone\":\"{}\",\"units\":{},\"wakes\":{}}}",
                    json_escape(&c.cone),
                    c.units,
                    c.wakes
                ));
            }
            s.push(']');
        };
        s.push_str(",\"wakes\":{");
        cones(&mut s, "settle", &self.settle_cones);
        s.push(',');
        cones(&mut s, "step", &self.step_cones);
        s.push_str("}}\n");
        s
    }

    /// Human-readable multi-line summary for `--sched-stats` without a
    /// file argument.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "scheduler stats: engine={} cycles={}\n",
            self.engine, self.cycles
        ));
        out.push_str(&format!(
            "  settle: {} units, {} runs, {} insns (run-len mean {} max {})\n",
            self.settle_units,
            self.settle_runs,
            self.settle_insns,
            self.settle_run_len.mean(),
            self.settle_run_len.max()
        ));
        out.push_str(&format!(
            "  step:   {} cones, {} runs, {} insns (merged chains/call mean {} max {})\n",
            self.step_cone_count,
            self.step_runs,
            self.step_insns,
            self.step_run_len.mean(),
            self.step_run_len.max()
        ));
        out.push_str(&format!(
            "  dirty cones/cycle: mean {} max {} (of {})\n",
            self.dirty_cones.mean(),
            self.dirty_cones.max(),
            self.step_cone_count
        ));
        out.push_str(&format!(
            "  wake walks: {} net wakes ({} entries), {} mem wakes ({} entries)\n",
            self.net_wake_walk.count(),
            self.net_wake_walk.sum(),
            self.mem_wake_walk.count(),
            self.mem_wake_walk.sum()
        ));
        out.push_str(&format!(
            "  commits: {} compares, {} changes (spurious wake rate {:.1}%)\n",
            self.commit_net_compares + self.commit_mem_compares,
            self.commit_net_changes + self.commit_mem_changes,
            self.spurious_wake_rate() * 100.0
        ));
        let share = self.cycle_share();
        out.push_str(&format!(
            "  cycle share (2ns/event model): interpreter {:.1}% | wake walks {:.1}% | commit compares {:.1}%\n",
            share[0].2 * 100.0,
            share[1].2 * 100.0,
            share[2].2 * 100.0
        ));
        let mut top: Vec<&SchedConeWakes> = self
            .settle_cones
            .iter()
            .chain(self.step_cones.iter())
            .collect();
        top.sort_by(|a, b| b.wakes.cmp(&a.wakes).then(a.cone.cmp(&b.cone)));
        for c in top.iter().take(4).filter(|c| c.wakes > 0) {
            out.push_str(&format!("  wakes: {:>8}  {}\n", c.wakes, c.cone));
        }
        out
    }
}

/// One static fanin cone: a connected group of settle assigns (or step
/// statements) together with the external inputs whose stability implies
/// the whole group would recompute to its previous result.
struct Cone {
    name: String,
    /// Number of assigns / always-statements grouped into this cone.
    units: u32,
    /// Assign indices (settle) or always-statement indices (step) grouped
    /// into this cone, in tape order. The event scheduler executes exactly
    /// these chains when the cone is activated.
    members: Vec<u32>,
    /// Net ids read by the cone (for settle cones: minus its own outputs).
    inputs: Vec<u32>,
    /// Memory ids whose contents the cone reads.
    mem_inputs: Vec<u32>,
    quiescent_cycles: u64,
    /// Open busy interval start (0-based cycle), when trace recording.
    busy_since: Option<u64>,
    /// Closed busy intervals, half-open `[start, end)` in cycles.
    busy_intervals: Vec<(u64, u64)>,
}

/// Per-net counters in a [`TelemetryReport`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetTelemetry {
    pub name: String,
    pub width: u32,
    /// Cycles in which the value changed.
    pub toggle_cycles: u64,
    /// Total bit flips.
    pub bit_toggles: u64,
    /// Cycles in which the value was non-zero.
    pub high_cycles: u64,
}

/// Per-cone quiescence statistics in a [`TelemetryReport`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConeTelemetry {
    pub name: String,
    /// Assigns (settle) or always-statements (step) in the cone.
    pub units: u64,
    /// Distinct external inputs (nets + memories).
    pub inputs: u64,
    /// Cycles in which every input was unchanged.
    pub quiescent_cycles: u64,
}

impl ConeTelemetry {
    /// Fraction of observed cycles this cone was quiescent.
    pub fn quiescent_fraction(&self, cycles: u64) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            self.quiescent_cycles as f64 / cycles as f64
        }
    }
}

/// Aggregate per-instruction counters for one bytecode tape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InsnTelemetry {
    /// Tape length in instructions.
    pub len: u64,
    /// Total instructions executed.
    pub executed: u64,
    /// Executions that produced a different value than the previous one at
    /// the same destination (register, net, pending slot, or memory word).
    pub changed: u64,
}

/// Measured activity of one scheduled resource unit, joined with the static
/// resource report via its representative net.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnitActivity {
    /// Unit label as reported by the resource estimator (e.g. `arith.mult`).
    pub unit: String,
    /// The net whose activity stands in for the unit.
    pub net: String,
    /// `"toggle"` (datapath: counted when the value changes) or `"high"`
    /// (control: counted when the net is non-zero).
    pub mode: String,
    /// Cycles the unit was active under its mode.
    pub active_cycles: u64,
}

/// Everything the telemetry plane measured, ready for serialization.
#[derive(Clone, Debug, PartialEq)]
pub struct TelemetryReport {
    /// Accounting points observed (steps since telemetry was enabled).
    pub cycles: u64,
    pub nets: Vec<NetTelemetry>,
    pub settle_cones: Vec<ConeTelemetry>,
    pub step_cones: Vec<ConeTelemetry>,
    pub settle_insns: InsnTelemetry,
    pub step_insns: InsnTelemetry,
    /// Filled by callers that hold a resource report (see
    /// `hir_codegen::testbench::Harness::telemetry_report`).
    pub units: Vec<UnitActivity>,
}

impl TelemetryReport {
    /// Fraction of nets (excluding the clock) that toggled at least once.
    pub fn toggle_coverage(&self) -> f64 {
        let eligible: Vec<&NetTelemetry> = self.nets.iter().filter(|n| n.name != "clk").collect();
        if eligible.is_empty() {
            return 1.0;
        }
        let toggled = eligible.iter().filter(|n| n.toggle_cycles > 0).count();
        toggled as f64 / eligible.len() as f64
    }

    /// Mean quiescent fraction across all cones (settle + step).
    pub fn overall_quiescence(&self) -> f64 {
        let cones = self.settle_cones.len() + self.step_cones.len();
        if cones == 0 || self.cycles == 0 {
            return 0.0;
        }
        let quiet: u64 = self
            .settle_cones
            .iter()
            .chain(self.step_cones.iter())
            .map(|c| c.quiescent_cycles)
            .sum();
        quiet as f64 / (cones as u64 * self.cycles) as f64
    }

    /// The least-quiescent cone: `(name, quiescent fraction)`.
    pub fn worst_cone(&self) -> Option<(&str, f64)> {
        self.settle_cones
            .iter()
            .chain(self.step_cones.iter())
            .map(|c| (c.name.as_str(), c.quiescent_fraction(self.cycles)))
            .min_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(b.0)))
    }

    /// Strict JSON document (parseable by `obs::json`), newline-terminated.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"cycles\":{},\"toggle_coverage\":{:.6}",
            self.cycles,
            self.toggle_coverage()
        );
        let _ = write!(
            s,
            ",\"overall_quiescence\":{:.6}",
            self.overall_quiescence()
        );
        for (key, cones) in [
            ("settle_cones", &self.settle_cones),
            ("step_cones", &self.step_cones),
        ] {
            let _ = write!(s, ",\"{key}\":[");
            for (i, c) in cones.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(
                    s,
                    "{{\"name\":\"{}\",\"units\":{},\"inputs\":{},\
                     \"quiescent_cycles\":{},\"quiescent_fraction\":{:.6}}}",
                    json_escape(&c.name),
                    c.units,
                    c.inputs,
                    c.quiescent_cycles,
                    c.quiescent_fraction(self.cycles)
                );
            }
            s.push(']');
        }
        for (key, t) in [
            ("settle_insns", &self.settle_insns),
            ("step_insns", &self.step_insns),
        ] {
            let _ = write!(
                s,
                ",\"{key}\":{{\"len\":{},\"executed\":{},\"changed\":{}}}",
                t.len, t.executed, t.changed
            );
        }
        let _ = write!(s, ",\"units\":[");
        for (i, u) in self.units.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let frac = if self.cycles == 0 {
                0.0
            } else {
                u.active_cycles as f64 / self.cycles as f64
            };
            let _ = write!(
                s,
                "{{\"unit\":\"{}\",\"net\":\"{}\",\"mode\":\"{}\",\
                 \"active_cycles\":{},\"active_fraction\":{:.6}}}",
                json_escape(&u.unit),
                json_escape(&u.net),
                u.mode,
                u.active_cycles,
                frac
            );
        }
        s.push_str("],\"nets\":[");
        for (i, n) in self.nets.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"name\":\"{}\",\"width\":{},\"toggle_cycles\":{},\
                 \"bit_toggles\":{},\"high_cycles\":{}}}",
                json_escape(&n.name),
                n.width,
                n.toggle_cycles,
                n.bit_toggles,
                n.high_cycles
            );
        }
        s.push_str("]}\n");
        s
    }

    /// Short human-readable summary (for `--sim-telemetry` without a file).
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "telemetry: {} cycles, toggle coverage {:.1}%, overall quiescence {:.1}%",
            self.cycles,
            self.toggle_coverage() * 100.0,
            self.overall_quiescence() * 100.0
        );
        if let Some((name, frac)) = self.worst_cone() {
            let _ = writeln!(s, "  busiest cone: {name} ({:.1}% quiescent)", frac * 100.0);
        }
        let _ = writeln!(
            s,
            "  settle tape: {} insns, {} executed, {} changed ({:.1}%)",
            self.settle_insns.len,
            self.settle_insns.executed,
            self.settle_insns.changed,
            pct(self.settle_insns.changed, self.settle_insns.executed)
        );
        let _ = writeln!(
            s,
            "  step tape:   {} insns, {} executed, {} changed ({:.1}%)",
            self.step_insns.len,
            self.step_insns.executed,
            self.step_insns.changed,
            pct(self.step_insns.changed, self.step_insns.executed)
        );
        for u in &self.units {
            let frac = if self.cycles == 0 {
                0.0
            } else {
                u.active_cycles as f64 / self.cycles as f64
            };
            let _ = writeln!(
                s,
                "  unit {:<16} {:>6.1}% active  ({} via {})",
                u.unit,
                frac * 100.0,
                u.mode,
                u.net
            );
        }
        s
    }
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64 * 100.0
    }
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, i: usize) -> usize {
        if self.parent[i] != i {
            let r = self.find(self.parent[i]);
            self.parent[i] = r;
        }
        self.parent[i]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Lower root wins so group order follows first appearance.
            self.parent[ra.max(rb)] = ra.min(rb);
        }
    }

    /// Groups of member indices, ordered by each group's first member.
    fn groups(&mut self, n: usize) -> Vec<Vec<usize>> {
        let mut by_root: HashMap<usize, usize> = HashMap::new();
        let mut out: Vec<Vec<usize>> = Vec::new();
        for i in 0..n {
            let r = self.find(i);
            let g = *by_root.entry(r).or_insert_with(|| {
                out.push(Vec::new());
                out.len() - 1
            });
            out[g].push(i);
        }
        out
    }
}

fn collect_mem_reads_into(e: &CExpr, out: &mut BTreeSet<usize>) {
    match e {
        CExpr::Const { .. } | CExpr::Net { .. } => {}
        CExpr::MemRead { mem, addr, .. } => {
            out.insert(*mem);
            collect_mem_reads_into(addr, out);
        }
        CExpr::Slice { base, .. } => collect_mem_reads_into(base, out),
        CExpr::Unary { arg, .. } => collect_mem_reads_into(arg, out),
        CExpr::Binary { lhs, rhs, .. } => {
            collect_mem_reads_into(lhs, out);
            collect_mem_reads_into(rhs, out);
        }
        CExpr::Ternary {
            cond, then, els, ..
        } => {
            collect_mem_reads_into(cond, out);
            collect_mem_reads_into(then, out);
            collect_mem_reads_into(els, out);
        }
        CExpr::Concat { parts, .. } => {
            for p in parts {
                collect_mem_reads_into(p, out);
            }
        }
        CExpr::SignExtend { arg, .. } => collect_mem_reads_into(arg, out),
    }
}

/// Partition the topo-ordered assigns into connected fanin cones: two
/// assigns share a cone when one reads the other's target. A cone's inputs
/// are the nets it reads but does not produce, plus every memory it reads;
/// if none of those changed over a cycle, re-running the cone would
/// reproduce its previous outputs.
fn partition_settle(assigns: &[(usize, CExpr)], net_names: &[String]) -> Vec<Cone> {
    let n = assigns.len();
    let mut uf = UnionFind::new(n);
    let producer: HashMap<usize, usize> = assigns
        .iter()
        .enumerate()
        .map(|(i, (net, _))| (*net, i))
        .collect();
    let mut deps_per: Vec<Vec<usize>> = Vec::with_capacity(n);
    for (i, (_, e)) in assigns.iter().enumerate() {
        let mut deps = Vec::new();
        collect_deps(e, &mut deps);
        for &d in &deps {
            if let Some(&p) = producer.get(&d) {
                uf.union(i, p);
            }
        }
        deps_per.push(deps);
    }
    let mut cones = Vec::new();
    for members in uf.groups(n) {
        let written: HashSet<usize> = members.iter().map(|&i| assigns[i].0).collect();
        let mut inputs = BTreeSet::new();
        let mut mem_inputs = BTreeSet::new();
        for &i in &members {
            for &d in &deps_per[i] {
                if !written.contains(&d) {
                    inputs.insert(d as u32);
                }
            }
            collect_mem_reads_into(&assigns[i].1, &mut mem_inputs);
        }
        cones.push(Cone {
            name: net_names[assigns[members[0]].0].clone(),
            units: members.len() as u32,
            inputs: inputs.into_iter().collect(),
            mem_inputs: mem_inputs.into_iter().map(|m| m as u32).collect(),
            members: members.into_iter().map(|i| i as u32).collect(),
            quiescent_cycles: 0,
            busy_since: None,
            busy_intervals: Vec::new(),
        });
    }
    cones
}

fn stmt_effects(
    s: &CStmt,
    reads: &mut BTreeSet<usize>,
    writes: &mut BTreeSet<usize>,
    mreads: &mut BTreeSet<usize>,
    mwrites: &mut BTreeSet<usize>,
) {
    let expr = |e: &CExpr, reads: &mut BTreeSet<usize>, mreads: &mut BTreeSet<usize>| {
        let mut deps = Vec::new();
        collect_deps(e, &mut deps);
        reads.extend(deps);
        collect_mem_reads_into(e, mreads);
    };
    match s {
        CStmt::AssignNet { net, rhs } => {
            writes.insert(*net);
            expr(rhs, reads, mreads);
        }
        CStmt::AssignMem { mem, addr, rhs } => {
            mwrites.insert(*mem);
            expr(addr, reads, mreads);
            expr(rhs, reads, mreads);
        }
        CStmt::If { cond, then, els } => {
            expr(cond, reads, mreads);
            for t in then.iter().chain(els.iter()) {
                stmt_effects(t, reads, writes, mreads, mwrites);
            }
        }
        CStmt::Assert { guard, cond, .. } => {
            expr(guard, reads, mreads);
            expr(cond, reads, mreads);
        }
    }
}

/// Partition the always-statements into cones: two statements share a cone
/// when they write the same register or the same memory (so their combined
/// next-state is a function of the union of their reads). A step cone's
/// inputs are everything it reads; registers it updates from their own old
/// value count as inputs too, keeping self-incrementing state "busy".
fn partition_step(always: &[CStmt], net_names: &[String], mem_names: &[String]) -> Vec<Cone> {
    let n = always.len();
    let mut effects = Vec::with_capacity(n);
    for s in always {
        let mut reads = BTreeSet::new();
        let mut writes = BTreeSet::new();
        let mut mreads = BTreeSet::new();
        let mut mwrites = BTreeSet::new();
        stmt_effects(s, &mut reads, &mut writes, &mut mreads, &mut mwrites);
        effects.push((reads, writes, mreads, mwrites));
    }
    let mut uf = UnionFind::new(n);
    let mut net_writer: HashMap<usize, usize> = HashMap::new();
    let mut mem_writer: HashMap<usize, usize> = HashMap::new();
    for (i, (_, writes, _, mwrites)) in effects.iter().enumerate() {
        for &w in writes {
            match net_writer.get(&w) {
                Some(&j) => uf.union(i, j),
                None => {
                    net_writer.insert(w, i);
                }
            }
        }
        for &m in mwrites {
            match mem_writer.get(&m) {
                Some(&j) => uf.union(i, j),
                None => {
                    mem_writer.insert(m, i);
                }
            }
        }
    }
    let mut cones = Vec::new();
    let mut used_names: HashSet<String> = HashSet::new();
    for members in uf.groups(n) {
        let mut inputs = BTreeSet::new();
        let mut mem_inputs = BTreeSet::new();
        for &i in &members {
            let (reads, _, mreads, _) = &effects[i];
            inputs.extend(reads.iter().map(|&r| r as u32));
            mem_inputs.extend(mreads.iter().map(|&m| m as u32));
        }
        let first = &effects[members[0]];
        let mut name = first
            .1
            .iter()
            .next()
            .map(|&w| net_names[w].clone())
            .or_else(|| first.3.iter().next().map(|&m| mem_names[m].clone()))
            .or_else(|| {
                first
                    .0
                    .iter()
                    .next()
                    .map(|&r| format!("assert@{}", net_names[r]))
            })
            .unwrap_or_else(|| "cone".to_string());
        if !used_names.insert(name.clone()) {
            name = format!("{name}#{}", members[0]);
            used_names.insert(name.clone());
        }
        cones.push(Cone {
            name,
            units: members.len() as u32,
            inputs: inputs.into_iter().collect(),
            mem_inputs: mem_inputs.into_iter().collect(),
            members: members.into_iter().map(|i| i as u32).collect(),
            quiescent_cycles: 0,
            busy_since: None,
            busy_intervals: Vec::new(),
        });
    }
    cones
}

/// The counting twin of [`run_tape`]: identical semantics, plus per-insn
/// executed/changed counters. Kept separate so the uninstrumented hot loop
/// pays nothing for telemetry support.
#[allow(clippy::too_many_arguments)]
fn run_tape_counting(
    tape: &[Insn],
    start: usize,
    end: usize,
    regs: &mut [u64],
    values: &mut [u64],
    memories: &[Vec<u64>],
    msgs: &[String],
    pend_nets: &mut Vec<(u32, u64)>,
    pend_mems: &mut Vec<(u32, u64, u64)>,
    failure: &mut Option<String>,
    exec: &mut [u64],
    changed: &mut [u64],
    net_masks: &[u64],
    mem_masks: &[u64],
) -> u64 {
    let mut executed = 0u64;
    let mut pc = start;
    // regs[dst] = v, counting a change when the register held a different
    // value (from the previous cycle, or an earlier conditional path).
    macro_rules! put {
        ($dst:expr, $v:expr) => {{
            let v = $v;
            let d = $dst as usize;
            if regs[d] != v {
                changed[pc] += 1;
            }
            regs[d] = v;
        }};
    }
    while pc < end {
        executed += 1;
        exec[pc] += 1;
        match tape[pc] {
            Insn::LoadNet { dst, net } => put!(dst, values[net as usize]),
            Insn::MemRead { dst, mem, addr, m } => {
                let a = regs[addr as usize] as usize;
                put!(dst, memories[mem as usize].get(a).copied().unwrap_or(0) & m);
            }
            Insn::Slice { dst, src, lo, m } => put!(dst, (regs[src as usize] >> lo) & m),
            Insn::Not { dst, src, m } => put!(dst, !regs[src as usize] & m),
            Insn::LNot { dst, src } => put!(dst, u64::from(regs[src as usize] == 0)),
            Insn::RedOr { dst, src } => put!(dst, u64::from(regs[src as usize] != 0)),
            Insn::Binary {
                op,
                dst,
                a,
                b,
                aw,
                bw,
                m,
            } => put!(
                dst,
                eval_binary(op, regs[a as usize], regs[b as usize], aw, bw) & m
            ),
            Insn::Select {
                dst,
                cond,
                then,
                els,
                m,
            } => {
                let v = if regs[cond as usize] != 0 {
                    regs[then as usize]
                } else {
                    regs[els as usize]
                };
                put!(dst, v & m);
            }
            Insn::ConcatFirst { dst, src, m } => put!(dst, regs[src as usize] & m),
            Insn::ConcatPush { dst, src, shift, m } => {
                put!(
                    dst,
                    (regs[dst as usize] << shift) | (regs[src as usize] & m)
                );
            }
            Insn::MaskReg { dst, m } => put!(dst, regs[dst as usize] & m),
            Insn::SignExtend {
                dst,
                src,
                from,
                fm,
                m,
            } => put!(dst, (sign_extend(regs[src as usize] & fm, from) as u64) & m),
            Insn::StoreNet { net, src, m } => {
                let v = regs[src as usize] & m;
                if values[net as usize] != v {
                    changed[pc] += 1;
                }
                values[net as usize] = v;
            }
            Insn::EmitNet { net, src } => {
                let v = regs[src as usize];
                if (v & net_masks[net as usize]) != values[net as usize] {
                    changed[pc] += 1;
                }
                pend_nets.push((net, v));
            }
            Insn::EmitMem { mem, addr, src } => {
                let a = regs[addr as usize];
                let v = regs[src as usize];
                if let Some(&cur) = memories[mem as usize].get(a as usize) {
                    if (v & mem_masks[mem as usize]) != cur {
                        changed[pc] += 1;
                    }
                }
                pend_mems.push((mem, a, v));
            }
            Insn::Assert { guard, cond, msg } => {
                if failure.is_none() && regs[guard as usize] != 0 && regs[cond as usize] == 0 {
                    *failure = Some(msgs[msg as usize].clone());
                }
            }
            Insn::Jump { target } => {
                pc = target as usize;
                continue;
            }
            Insn::JumpIfZero { src, target } => {
                if regs[src as usize] == 0 {
                    pc = target as usize;
                    continue;
                }
            }
        }
        pc += 1;
    }
    executed
}

impl Simulator {
    /// Turn on the telemetry plane. Idempotent; settles first so counting
    /// starts from a consistent baseline. With `record_trace`, per-cone
    /// busy/quiescent intervals are kept for [`telemetry_trace`].
    ///
    /// Counting runs on private clones of the tapes: the original tapes and
    /// the untelemetered execution path are untouched. When telemetry is
    /// enabled before the first `step`, both engines report identical
    /// counts.
    ///
    /// [`telemetry_trace`]: Self::telemetry_trace
    pub fn enable_telemetry(&mut self, record_trace: bool) {
        if self.telemetry.is_some() {
            return;
        }
        self.settle();
        let settle_tape = self.settle_tape.clone();
        let step_tape = self.step_tape.clone();
        let mut scratch_regs = self.regs.clone();
        let mut scratch_values = self.values.clone();
        // Warm the counting register file: one uncounted run of the settle
        // tape brings it to the state the bytecode engine's file holds
        // after the settle above (a no-op under `Engine::Bytecode`), so
        // `changed` counters start from the same baseline under either
        // engine.
        {
            let mut pn = Vec::new();
            let mut pm = Vec::new();
            let mut f = None;
            run_tape(
                &settle_tape,
                0,
                settle_tape.len(),
                &mut scratch_regs,
                &mut scratch_values,
                &self.memories,
                &self.msgs,
                &mut pn,
                &mut pm,
                &mut f,
            );
        }
        let settle_cones = partition_settle(&self.assigns, &self.net_names);
        let step_cones = partition_step(&self.always, &self.net_names, &self.mem_names);
        self.telemetry = Some(Box::new(Telemetry {
            prev: self.values.clone(),
            toggle_cycles: vec![0; self.values.len()],
            bit_toggles: vec![0; self.values.len()],
            high_cycles: vec![0; self.values.len()],
            high_since: vec![0; self.values.len()],
            cycles: 0,
            settle_cones,
            step_cones,
            mems_written: vec![false; self.memories.len()],
            settle_exec: vec![0; settle_tape.len()],
            settle_changed: vec![0; settle_tape.len()],
            step_exec: vec![0; step_tape.len()],
            step_changed: vec![0; step_tape.len()],
            settle_exec_extra: 0,
            settle_changed_extra: 0,
            step_exec_extra: 0,
            step_changed_extra: 0,
            net_masks: self.net_width.iter().map(|&w| mask(w)).collect(),
            mem_masks: self.mem_width.iter().map(|&w| mask(w)).collect(),
            settle_tape,
            step_tape,
            scratch_regs,
            scratch_values,
            scratch_pend_nets: Vec::new(),
            scratch_pend_mems: Vec::new(),
            record_trace,
        }));
        if let Some(ev) = self.ev.as_deref_mut() {
            ev.track = self.engine == Engine::Event;
            for s in &mut ev.settle_stale {
                *s = true;
            }
            for s in &mut ev.step_stale {
                *s = true;
            }
        }
    }

    /// Whether the telemetry plane is active.
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry.is_some()
    }

    /// Snapshot the telemetry counters (`None` when telemetry is off). The
    /// `units` field is left empty; callers holding a resource report join
    /// it themselves.
    pub fn telemetry_report(&self) -> Option<TelemetryReport> {
        let t = self.telemetry.as_deref()?;
        let nets = (0..self.net_names.len())
            .map(|i| NetTelemetry {
                name: self.net_names[i].clone(),
                width: self.net_width[i],
                toggle_cycles: t.toggle_cycles[i],
                bit_toggles: t.bit_toggles[i],
                // Credit the still-open run of unchanged cycles (lazy high
                // accounting; see `Telemetry::high_since`).
                high_cycles: t.high_cycles[i]
                    + if t.prev[i] != 0 {
                        t.cycles - t.high_since[i]
                    } else {
                        0
                    },
            })
            .collect();
        let cone_report = |cones: &[Cone]| {
            cones
                .iter()
                .map(|c| ConeTelemetry {
                    name: c.name.clone(),
                    units: u64::from(c.units),
                    inputs: (c.inputs.len() + c.mem_inputs.len()) as u64,
                    quiescent_cycles: c.quiescent_cycles,
                })
                .collect()
        };
        let insn_report =
            |tape: &[Insn], exec: &[u64], changed: &[u64], ex: u64, ch: u64| InsnTelemetry {
                len: tape.len() as u64,
                executed: exec.iter().sum::<u64>() + ex,
                changed: changed.iter().sum::<u64>() + ch,
            };
        Some(TelemetryReport {
            cycles: t.cycles,
            nets,
            settle_cones: cone_report(&t.settle_cones),
            step_cones: cone_report(&t.step_cones),
            settle_insns: insn_report(
                &t.settle_tape,
                &t.settle_exec,
                &t.settle_changed,
                t.settle_exec_extra,
                t.settle_changed_extra,
            ),
            step_insns: insn_report(
                &t.step_tape,
                &t.step_exec,
                &t.step_changed,
                t.step_exec_extra,
                t.step_changed_extra,
            ),
            units: Vec::new(),
        })
    }

    /// Chrome-trace JSON of per-cone busy/quiescent periods, one track per
    /// cone, 1 µs per cycle. `None` unless telemetry was enabled with
    /// `record_trace`.
    pub fn telemetry_trace(&self) -> Option<String> {
        let t = self.telemetry.as_deref()?;
        if !t.record_trace {
            return None;
        }
        let mut spans = Vec::new();
        let mut emit = |phase: &str, cones: &[Cone]| {
            for c in cones {
                let track = format!("{phase}/{}", c.name);
                let mut cursor = 0u64;
                let mut intervals = c.busy_intervals.clone();
                if let Some(start) = c.busy_since {
                    intervals.push((start, t.cycles));
                }
                let mut push = |name: &str, s: u64, e: u64| {
                    spans.push(obs::SpanRecord {
                        track: track.clone(),
                        name: name.to_string(),
                        start_ns: s * 1000,
                        dur_ns: (e - s) * 1000,
                        depth: 0,
                        args: vec![
                            ("start_cycle".to_string(), s.to_string()),
                            ("cycles".to_string(), (e - s).to_string()),
                        ],
                        pid_tid: None,
                    });
                };
                for (s, e) in intervals {
                    if s > cursor {
                        push("quiescent", cursor, s);
                    }
                    push("busy", s, e);
                    cursor = e;
                }
                if cursor < t.cycles {
                    push("quiescent", cursor, t.cycles);
                }
            }
        };
        emit("settle", &t.settle_cones);
        emit("step", &t.step_cones);
        // When the sched-stats plane is also on, ride its per-cycle dirty-
        // set occupancy along as a Chrome counter track ("ph":"C").
        let counters: Vec<obs::trace::CounterPoint> = match self.sched.as_deref() {
            Some(sc) => sc
                .dirty_series
                .iter()
                .enumerate()
                .map(|(i, &v)| obs::trace::CounterPoint {
                    track: "sched/dirty_cones".to_string(),
                    ts_ns: i as u64 * 1000,
                    series: vec![("dirty".to_string(), u64::from(v))],
                    pid_tid: None,
                })
                .collect(),
            None => Vec::new(),
        };
        Some(obs::trace::chrome_trace_with_counters(&spans, &counters))
    }

    /// Turn on the scheduler-statistics plane. Idempotent; settles first so
    /// counting starts from a quiescent baseline (the initial full
    /// evaluation is not attributed to any cycle).
    ///
    /// The plane is a pure observer of the *engine*: with it off, every hot
    /// path pays exactly one `Option` check and the tapes are untouched;
    /// with it on, simulation results, VCD output, and telemetry counters
    /// are unchanged. Works under every engine — the full-tape engines
    /// (bytecode, tree-walk) report a trivially-full dirty set and empty
    /// wake-walk histograms, which is exactly what their schedule does.
    pub fn enable_sched_stats(&mut self) {
        if self.sched.is_some() {
            return;
        }
        self.settle();
        let n_step_cones = partition_step(&self.always, &self.net_names, &self.mem_names).len();
        self.sched = Some(Box::new(SchedStats {
            cycles: 0,
            dirty_cones: obs::Histogram::new(),
            dirty_series: Vec::new(),
            commit_net_compares: 0,
            commit_net_changes: 0,
            commit_mem_compares: 0,
            commit_mem_changes: 0,
            full_settles: 0,
            n_step_cones,
        }));
        if let Some(ev) = self.ev.as_deref_mut() {
            ev.sched = Some(EvSchedStats::new(
                ev.settle_chains.len(),
                ev.step_members_off.len() - 1,
            ));
        }
    }

    /// Whether the scheduler-statistics plane is active.
    pub fn sched_stats_enabled(&self) -> bool {
        self.sched.is_some()
    }

    /// Per-step sample for the sched-stats plane: dirty-set occupancy
    /// before dispatch consumes the bitset. Callers check `sched.is_some()`
    /// first, keeping the off path at one branch.
    fn sched_sample_step_entry(&mut self) {
        let occ = match self.ev.as_deref() {
            Some(ev) => ev
                .step_dirty
                .iter()
                .map(|w| u64::from(w.count_ones()))
                .sum::<u64>(),
            // Full-tape engines re-execute every statement each cycle: the
            // dirty set is trivially full.
            None => self.sched.as_deref().map_or(0, |s| s.n_step_cones as u64),
        };
        let sc = self.sched.as_deref_mut().expect("sched checked by caller");
        sc.cycles += 1;
        sc.dirty_cones.record(occ);
        sc.dirty_series.push(occ as u32);
    }

    /// Snapshot the scheduler statistics (`None` when the plane is off).
    ///
    /// Every field is derived from deterministic event counts — never wall
    /// clock — so serializing the report is byte-identical across runs and
    /// `--threads` values for the same stimulus.
    pub fn sched_stats_report(&self) -> Option<SchedStatsReport> {
        let sc = self.sched.as_deref()?;
        let engine = match self.engine {
            Engine::Bytecode => "bytecode",
            Engine::TreeWalk => "treewalk",
            Engine::Event => "event",
            Engine::Batched => "batched",
        };
        let settle_cones = partition_settle(&self.assigns, &self.net_names);
        let step_cones = partition_step(&self.always, &self.net_names, &self.mem_names);
        let n_settle_units = self.assigns.len() as u64;
        let n_step_cones = step_cones.len() as u64;
        let mut rep = SchedStatsReport {
            engine: engine.to_string(),
            cycles: sc.cycles,
            settle_units: n_settle_units,
            step_cone_count: n_step_cones,
            settle_runs: 0,
            step_runs: 0,
            settle_insns: 0,
            step_insns: 0,
            dirty_cones: sc.dirty_cones.clone(),
            net_wake_walk: obs::Histogram::new(),
            mem_wake_walk: obs::Histogram::new(),
            settle_run_len: obs::Histogram::new(),
            step_run_len: obs::Histogram::new(),
            commit_net_compares: sc.commit_net_compares,
            commit_net_changes: sc.commit_net_changes,
            commit_mem_compares: sc.commit_mem_compares,
            commit_mem_changes: sc.commit_mem_changes,
            settle_cones: Vec::new(),
            step_cones: Vec::new(),
        };
        if let Some(ev) = self.ev.as_deref() {
            rep.settle_runs = ev.stat_settle_runs;
            rep.step_runs = ev.stat_step_runs;
            rep.settle_insns = ev.stat_settle_insns;
            rep.step_insns = ev.stat_step_insns;
            if let Some(es) = ev.sched.as_deref() {
                rep.net_wake_walk = es.net_wake_walk.clone();
                rep.mem_wake_walk = es.mem_wake_walk.clone();
                rep.settle_run_len = es.settle_run_len.clone();
                rep.step_run_len = es.step_run_len.clone();
                // Attribute scheduler-unit wakes to the coarse telemetry
                // cones so the report joins with `telemetry_report`.
                let mut cone_wakes = vec![0u64; settle_cones.len()];
                for (u, &w) in es.settle_unit_wakes.iter().enumerate() {
                    cone_wakes[ev.settle_unit_cone[u] as usize] += w;
                }
                rep.settle_cones = settle_cones
                    .iter()
                    .zip(&cone_wakes)
                    .map(|(c, &w)| SchedConeWakes {
                        cone: c.name.clone(),
                        units: u64::from(c.units),
                        wakes: w,
                    })
                    .collect();
                rep.step_cones = step_cones
                    .iter()
                    .zip(&es.step_cone_wakes)
                    .map(|(c, &w)| SchedConeWakes {
                        cone: c.name.clone(),
                        units: u64::from(c.units),
                        wakes: w,
                    })
                    .collect();
            }
        } else {
            // Full-tape engines: synthesize the trivially-full schedule —
            // every unit runs every settle, every cone every cycle, and no
            // wake walks happen at all.
            rep.settle_runs = sc.full_settles * n_settle_units;
            rep.settle_insns = sc.full_settles * self.settle_tape.len() as u64;
            rep.step_runs = sc.cycles * n_step_cones;
            rep.step_insns = sc.cycles * self.step_tape.len() as u64;
            rep.settle_run_len.record_n(n_settle_units, sc.full_settles);
            rep.step_run_len
                .record_n(self.step_chain_starts.len() as u64, sc.cycles);
            rep.settle_cones = settle_cones
                .iter()
                .map(|c| SchedConeWakes {
                    cone: c.name.clone(),
                    units: u64::from(c.units),
                    wakes: sc.full_settles,
                })
                .collect();
            rep.step_cones = step_cones
                .iter()
                .map(|c| SchedConeWakes {
                    cone: c.name.clone(),
                    units: u64::from(c.units),
                    wakes: sc.cycles,
                })
                .collect();
        }
        Some(rep)
    }

    /// Resolve a net name to its index, for allocation-free hot-loop access
    /// via [`get_id`](Self::get_id) / [`set_id`](Self::set_id).
    pub fn net_id(&self, name: &str) -> Option<usize> {
        self.net_index.get(name).copied()
    }

    /// Read a net by pre-resolved id (settling first when needed).
    pub fn get_id(&mut self, id: usize) -> u64 {
        if self.dirty {
            self.settle();
        }
        self.values[id]
    }

    /// Drive a net by pre-resolved id (every lane under
    /// [`Engine::Batched`]). Takes effect at the next settle.
    pub fn set_id(&mut self, id: usize, value: u64) {
        let v = value & mask(self.net_width[id]);
        if let Some(b) = self.batch.as_deref_mut() {
            let l = b.lanes;
            let mut changed = 0u64;
            for k in 0..l {
                if b.values[id * l + k] != v {
                    b.values[id * l + k] = v;
                    changed |= 1u64 << k;
                }
            }
            self.values[id] = v;
            if changed != 0 {
                if let Some(ev) = self.ev.as_deref_mut() {
                    ev.note_net_poked(id, changed);
                }
            }
        } else if self.values[id] != v {
            self.values[id] = v;
            if let Some(ev) = self.ev.as_deref_mut() {
                ev.note_net_poked(id, ALL_LANES);
            }
        }
        self.dirty = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter() -> Design {
        let mut m = VModule::new("counter");
        m.port("clk", Dir::Input, 1);
        m.port("en", Dir::Input, 1);
        m.port("count", Dir::Output, 8);
        m.reg("value", 8);
        m.assign("count", Expr::r("value"));
        m.main_always().stmts.push(Stmt::If {
            cond: Expr::r("en"),
            then: vec![Stmt::NonBlocking {
                lhs: LValue::Net("value".into()),
                rhs: Expr::add(Expr::r("value"), Expr::c(1, 8)),
            }],
            els: vec![],
        });
        let mut d = Design::new();
        d.add(m);
        d
    }

    #[test]
    fn counter_counts() {
        let d = counter();
        let mut sim = Simulator::new(&d, "counter").expect("build");
        sim.set("en", 1);
        sim.run(5).unwrap();
        assert_eq!(sim.get("count"), 5);
        sim.set("en", 0);
        sim.run(3).unwrap();
        assert_eq!(sim.get("count"), 5);
        assert_eq!(sim.cycle(), 8);
    }

    #[test]
    fn counter_wraps_at_width() {
        let d = counter();
        let mut sim = Simulator::new(&d, "counter").expect("build");
        sim.set("en", 1);
        sim.run(256).unwrap();
        assert_eq!(sim.get("count"), 0, "8-bit counter wraps");
    }

    #[test]
    fn chained_comb_assigns_settle_in_order() {
        let mut m = VModule::new("chain");
        m.port("clk", Dir::Input, 1);
        m.port("x", Dir::Input, 8);
        m.port("y", Dir::Output, 8);
        m.wire("a", 8);
        m.wire("b", 8);
        // Declared out of dependency order on purpose.
        m.assign("y", Expr::add(Expr::r("b"), Expr::c(1, 8)));
        m.assign("b", Expr::add(Expr::r("a"), Expr::c(1, 8)));
        m.assign("a", Expr::add(Expr::r("x"), Expr::c(1, 8)));
        let mut d = Design::new();
        d.add(m);
        let mut sim = Simulator::new(&d, "chain").expect("build");
        sim.set("x", 10);
        assert_eq!(sim.get("y"), 13);
    }

    #[test]
    fn combinational_loop_rejected() {
        let mut m = VModule::new("loopy");
        m.port("clk", Dir::Input, 1);
        m.wire("a", 1);
        m.wire("b", 1);
        m.assign("a", Expr::r("b"));
        m.assign("b", Expr::r("a"));
        let mut d = Design::new();
        d.add(m);
        match Simulator::new(&d, "loopy") {
            Err(BuildError::CombinationalLoop(nets)) => {
                assert_eq!(nets.len(), 2);
            }
            Err(other) => panic!("expected loop error, got {other:?}"),
            Ok(_) => panic!("expected loop error, build succeeded"),
        }
    }

    #[test]
    fn memory_write_then_read() {
        let mut m = VModule::new("memtest");
        m.port("clk", Dir::Input, 1);
        m.port("we", Dir::Input, 1);
        m.port("waddr", Dir::Input, 4);
        m.port("wdata", Dir::Input, 32);
        m.port("raddr", Dir::Input, 4);
        m.port("rdata", Dir::Output, 32);
        m.memory("ram", 32, 16, None);
        // Synchronous read register.
        m.reg("rdata_r", 32);
        m.assign("rdata", Expr::r("rdata_r"));
        m.main_always().stmts.push(Stmt::If {
            cond: Expr::r("we"),
            then: vec![Stmt::NonBlocking {
                lhs: LValue::MemElem {
                    mem: "ram".into(),
                    addr: Expr::r("waddr"),
                },
                rhs: Expr::r("wdata"),
            }],
            els: vec![],
        });
        m.main_always().stmts.push(Stmt::NonBlocking {
            lhs: LValue::Net("rdata_r".into()),
            rhs: Expr::MemRead {
                mem: "ram".into(),
                addr: Box::new(Expr::r("raddr")),
            },
        });
        let mut d = Design::new();
        d.add(m);
        let mut sim = Simulator::new(&d, "memtest").expect("build");
        sim.set("we", 1);
        sim.set("waddr", 3);
        sim.set("wdata", 12345);
        sim.step().unwrap();
        sim.set("we", 0);
        sim.set("raddr", 3);
        sim.step().unwrap();
        assert_eq!(sim.get("rdata"), 12345);
        // Read BEFORE the write lands sees the old value (non-blocking).
        assert_eq!(sim.read_mem("ram", 3), 12345);
    }

    #[test]
    fn assertion_fires() {
        let mut m = VModule::new("guarded");
        m.port("clk", Dir::Input, 1);
        m.port("en", Dir::Input, 1);
        m.port("addr", Dir::Input, 8);
        m.main_always().stmts.push(Stmt::Assert {
            guard: Expr::r("en"),
            cond: Expr::bin(BinOp::ULt, Expr::r("addr"), Expr::c(16, 8)),
            message: "address out of bounds".into(),
        });
        let mut d = Design::new();
        d.add(m);
        let mut sim = Simulator::new(&d, "guarded").expect("build");
        sim.set("en", 0);
        sim.set("addr", 200);
        sim.step().expect("guard off: no failure");
        sim.set("en", 1);
        let err = sim.step().unwrap_err();
        assert!(err.message.contains("address out of bounds"), "{err}");
    }

    #[test]
    fn hierarchical_design_simulates() {
        // Reuse the elaborate test structure: two chained incrementers.
        let mut inc = VModule::new("inc");
        inc.port("clk", Dir::Input, 1);
        inc.port("x", Dir::Input, 8);
        inc.port("y", Dir::Output, 8);
        inc.assign("y", Expr::add(Expr::r("x"), Expr::c(1, 8)));
        let mut top = VModule::new("top");
        top.port("clk", Dir::Input, 1);
        top.port("a", Dir::Input, 8);
        top.port("b", Dir::Output, 8);
        top.wire("mid", 8);
        top.instances.push(Instance {
            module: "inc".into(),
            name: "u0".into(),
            connections: vec![
                ("clk".into(), Expr::r("clk")),
                ("x".into(), Expr::r("a")),
                ("y".into(), Expr::r("mid")),
            ],
        });
        top.instances.push(Instance {
            module: "inc".into(),
            name: "u1".into(),
            connections: vec![
                ("clk".into(), Expr::r("clk")),
                ("x".into(), Expr::r("mid")),
                ("y".into(), Expr::r("b")),
            ],
        });
        let mut d = Design::new();
        d.add(inc);
        d.add(top);
        let mut sim = Simulator::new(&d, "top").expect("build");
        sim.set("a", 7);
        assert_eq!(sim.get("b"), 9);
    }

    #[test]
    fn signed_arithmetic() {
        let mut m = VModule::new("s");
        m.port("clk", Dir::Input, 1);
        m.port("a", Dir::Input, 8);
        m.port("b", Dir::Input, 8);
        m.port("lt", Dir::Output, 1);
        m.port("ext", Dir::Output, 16);
        m.assign("lt", Expr::bin(BinOp::SLt, Expr::r("a"), Expr::r("b")));
        m.assign(
            "ext",
            Expr::SignExtend {
                arg: Box::new(Expr::r("a")),
                from: 8,
                to: 16,
            },
        );
        let mut d = Design::new();
        d.add(m);
        let mut sim = Simulator::new(&d, "s").expect("build");
        sim.set("a", 0xFF); // -1
        sim.set("b", 1);
        assert_eq!(sim.get("lt"), 1, "-1 < 1 signed");
        assert_eq!(sim.get("ext"), 0xFFFF, "sign extension");
        assert_eq!(sim.get_signed("ext"), -1);
    }

    #[test]
    fn vcd_dump_records_changes() {
        let d = counter();
        let mut sim = Simulator::new(&d, "counter").expect("build");
        let buf: Vec<u8> = Vec::new();
        let shared = std::rc::Rc::new(std::cell::RefCell::new(buf));
        struct W(std::rc::Rc<std::cell::RefCell<Vec<u8>>>);
        impl std::io::Write for W {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.borrow_mut().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        sim.start_vcd(Box::new(W(shared.clone()))).unwrap();
        sim.set("en", 1);
        sim.run(3).unwrap();
        let text = String::from_utf8(shared.borrow().clone()).unwrap();
        assert!(text.contains("$var wire 8"), "{text}");
        assert!(text.contains("$enddefinitions"), "{text}");
        assert!(text.contains("#3"), "timestep markers: {text}");
        assert!(text.contains("b11 "), "count=3 change: {text}");
    }

    #[test]
    fn step_until_timeout() {
        let d = counter();
        let mut sim = Simulator::new(&d, "counter").expect("build");
        sim.set("en", 0);
        let err = sim.step_until("count", 10).unwrap_err();
        assert!(err.message.contains("did not assert"), "{err}");
    }

    #[test]
    fn engines_agree_on_counter() {
        let d = counter();
        let mut a = Simulator::new(&d, "counter").expect("build");
        let mut b = Simulator::new(&d, "counter").expect("build");
        a.set_engine(Engine::Bytecode);
        b.set_engine(Engine::TreeWalk);
        for cyc in 0..300u64 {
            let en = u64::from(cyc % 3 != 0);
            a.set("en", en);
            b.set("en", en);
            assert_eq!(a.get("count"), b.get("count"), "cycle {cyc}");
            a.step().unwrap();
            b.step().unwrap();
        }
    }

    fn mx_design() -> Design {
        let mut m = VModule::new("mx");
        m.port("clk", Dir::Input, 1);
        m.port("we", Dir::Input, 1);
        m.port("waddr", Dir::Input, 4);
        m.port("wdata", Dir::Input, 16);
        m.port("raddr", Dir::Input, 4);
        m.port("rdata", Dir::Output, 16);
        m.port("sum", Dir::Output, 16);
        m.memory("ram", 16, 16, None);
        m.reg("rdata_r", 16);
        m.assign("rdata", Expr::r("rdata_r"));
        // Exercise ternary, concat, slice, sign-extend in the comb network.
        m.wire("sx", 16);
        m.assign(
            "sx",
            Expr::SignExtend {
                arg: Box::new(Expr::Slice {
                    base: Box::new(Expr::r("wdata")),
                    hi: 7,
                    lo: 0,
                }),
                from: 8,
                to: 16,
            },
        );
        m.assign(
            "sum",
            Expr::Ternary {
                cond: Box::new(Expr::r("we")),
                then: Box::new(Expr::add(Expr::r("sx"), Expr::r("rdata_r"))),
                els: Box::new(Expr::Concat(vec![
                    Expr::Slice {
                        base: Box::new(Expr::r("rdata_r")),
                        hi: 7,
                        lo: 0,
                    },
                    Expr::Slice {
                        base: Box::new(Expr::r("wdata")),
                        hi: 7,
                        lo: 0,
                    },
                ])),
            },
        );
        m.main_always().stmts.push(Stmt::If {
            cond: Expr::r("we"),
            then: vec![Stmt::NonBlocking {
                lhs: LValue::MemElem {
                    mem: "ram".into(),
                    addr: Expr::r("waddr"),
                },
                rhs: Expr::r("wdata"),
            }],
            els: vec![Stmt::NonBlocking {
                lhs: LValue::Net("rdata_r".into()),
                rhs: Expr::MemRead {
                    mem: "ram".into(),
                    addr: Box::new(Expr::r("raddr")),
                },
            }],
        });
        let mut d = Design::new();
        d.add(m);
        d
    }

    #[test]
    fn engines_agree_on_memory_and_assert_design() {
        let d = mx_design();
        let mut a = Simulator::new(&d, "mx").expect("build");
        let mut b = Simulator::new(&d, "mx").expect("build");
        a.set_engine(Engine::Bytecode);
        b.set_engine(Engine::TreeWalk);
        // Deterministic LCG stimulus.
        let mut state = 0x2545F4914F6CDD1Du64;
        for cyc in 0..500u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            for (port, width) in [("we", 1), ("waddr", 4), ("wdata", 16), ("raddr", 4)] {
                let v = (state >> 24) & mask(width);
                a.set(port, v);
                b.set(port, v);
                state = state.rotate_left(17);
            }
            for out in ["rdata", "sum"] {
                assert_eq!(a.get(out), b.get(out), "net {out} at cycle {cyc}");
            }
            a.step().unwrap();
            b.step().unwrap();
        }
        for addr in 0..16 {
            assert_eq!(a.read_mem("ram", addr), b.read_mem("ram", addr));
        }
    }

    #[test]
    fn bytecode_assertion_fires_like_treewalk() {
        let mut m = VModule::new("guarded");
        m.port("clk", Dir::Input, 1);
        m.port("en", Dir::Input, 1);
        m.port("addr", Dir::Input, 8);
        m.main_always().stmts.push(Stmt::Assert {
            guard: Expr::r("en"),
            cond: Expr::bin(BinOp::ULt, Expr::r("addr"), Expr::c(16, 8)),
            message: "address out of bounds".into(),
        });
        let mut d = Design::new();
        d.add(m);
        for engine in [Engine::Bytecode, Engine::TreeWalk] {
            let mut sim = Simulator::new(&d, "guarded").expect("build");
            sim.set_engine(engine);
            sim.set("en", 0);
            sim.set("addr", 200);
            sim.step().expect("guard off: no failure");
            sim.set("en", 1);
            let err = sim.step().unwrap_err();
            assert!(err.message.contains("address out of bounds"), "{err}");
            assert_eq!(err.cycle, 1);
        }
    }

    #[test]
    fn cycle_budget_watchdog_stops_runaway_runs() {
        let d = counter();
        let mut sim = Simulator::new(&d, "counter").expect("build");
        sim.set_cycle_budget(Some(10));
        sim.run(10).unwrap(); // exactly the budget is fine
        let err = sim.step().unwrap_err();
        assert_eq!(err.cycle, 10);
        assert!(err.message.contains("cycle budget"), "{err}");
        // Raising the budget lets the run continue where it stopped.
        sim.set_cycle_budget(Some(12));
        sim.run(2).unwrap();
        assert_eq!(sim.cycle(), 12);
        sim.set_cycle_budget(None);
        sim.run(5).unwrap();
        assert_eq!(sim.cycle(), 17);
    }

    #[test]
    fn telemetry_leaves_tapes_and_results_untouched() {
        let d = counter();
        let mut plain = Simulator::new(&d, "counter").expect("build");
        let mut telem = Simulator::new(&d, "counter").expect("build");
        telem.enable_telemetry(true);
        for cyc in 0..50u64 {
            let en = u64::from(cyc % 3 != 0);
            plain.set("en", en);
            telem.set("en", en);
            assert_eq!(plain.get("count"), telem.get("count"), "cycle {cyc}");
            plain.step().unwrap();
            telem.step().unwrap();
        }
        // The executable tapes are byte-identical: counting runs on clones.
        assert_eq!(plain.settle_tape, telem.settle_tape);
        assert_eq!(plain.step_tape, telem.step_tape);
        assert_eq!(plain.get("count"), telem.get("count"));
    }

    #[test]
    fn sched_stats_is_a_pure_observer() {
        let d = counter();
        let mut plain = Simulator::new(&d, "counter").expect("build");
        let mut stats = Simulator::new(&d, "counter").expect("build");
        plain.set_engine(Engine::Event);
        stats.set_engine(Engine::Event);
        stats.enable_sched_stats();
        for cyc in 0..50u64 {
            let en = u64::from(cyc % 3 != 0);
            plain.set("en", en);
            stats.set("en", en);
            assert_eq!(plain.get("count"), stats.get("count"), "cycle {cyc}");
            plain.step().unwrap();
            stats.step().unwrap();
        }
        assert_eq!(plain.get("count"), stats.get("count"));
        assert_eq!(plain.settle_tape, stats.settle_tape);
        assert_eq!(plain.step_tape, stats.step_tape);
        let r = stats.sched_stats_report().expect("enabled");
        assert_eq!(r.engine, "event");
        assert_eq!(r.cycles, 50);
        assert!(r.commit_net_compares > 0);
        assert!(r.commit_net_changes <= r.commit_net_compares);
        assert!(r.net_wake_walk.count() > 0, "wakes were walked");
        let rate = r.spurious_wake_rate();
        assert!((0.0..=1.0).contains(&rate));
        let shares: f64 = r.cycle_share().iter().map(|s| s.2).sum();
        assert!((shares - 1.0).abs() < 1e-9);
        obs::json::parse(&r.to_json()).expect("strict JSON");
    }

    #[test]
    fn sched_stats_full_tape_reports_trivially_full_dirty_set() {
        let d = counter();
        let mut sim = Simulator::new(&d, "counter").expect("build");
        sim.enable_sched_stats();
        sim.set("en", 1);
        sim.run(10).unwrap();
        let r = sim.sched_stats_report().expect("enabled");
        assert_eq!(r.engine, "bytecode");
        assert_eq!(r.cycles, 10);
        // Full-tape schedule: every cone dirty every cycle, no wake walks.
        assert_eq!(r.dirty_cones.min(), r.step_cone_count);
        assert_eq!(r.dirty_cones.max(), r.step_cone_count);
        assert_eq!(r.dirty_cones.count(), 10);
        assert_eq!(r.net_wake_walk.count(), 0);
        assert_eq!(r.mem_wake_walk.count(), 0);
        assert_eq!(r.step_runs, 10 * r.step_cone_count);
        assert!(r.step_cones.iter().all(|c| c.wakes == 10));
        obs::json::parse(&r.to_json()).expect("strict JSON");
    }

    #[test]
    fn sched_stats_json_is_deterministic_across_runs() {
        let run = |engine: Engine| {
            let d = mx_design();
            let mut sim = Simulator::new(&d, "mx").expect("build");
            sim.set_engine(engine);
            sim.enable_sched_stats();
            for cyc in 0..32u64 {
                sim.set("we", cyc % 2);
                sim.set("waddr", cyc % 16);
                sim.set("wdata", cyc * 3 & 0xffff);
                sim.set("raddr", (cyc + 1) % 16);
                sim.step().unwrap();
            }
            sim.sched_stats_report().expect("enabled").to_json()
        };
        for engine in [Engine::Bytecode, Engine::Event, Engine::Batched] {
            assert_eq!(run(engine), run(engine), "{engine:?}");
        }
        // The event engine's commit plane compares exactly what the
        // full-tape engine commits (same pending updates), so the
        // spurious-wake accounting is engine-comparable.
        let parse = |j: String| obs::json::parse(&j).expect("strict JSON");
        let (b, e) = (parse(run(Engine::Bytecode)), parse(run(Engine::Event)));
        assert_eq!(
            b.get("commit")
                .unwrap()
                .get("net_changes")
                .unwrap()
                .as_f64(),
            e.get("commit")
                .unwrap()
                .get("net_changes")
                .unwrap()
                .as_f64()
        );
    }

    #[test]
    fn telemetry_counts_on_counter_are_exact() {
        let d = counter();
        let mut sim = Simulator::new(&d, "counter").expect("build");
        sim.set("en", 1);
        sim.enable_telemetry(false);
        sim.run(10).unwrap();
        let r = sim.telemetry_report().expect("enabled");
        assert_eq!(r.cycles, 10);
        let net = |name: &str| r.nets.iter().find(|n| n.name == name).unwrap();
        // value increments every cycle, so value and count toggle each cycle.
        assert_eq!(net("value").toggle_cycles, 10);
        assert_eq!(net("count").toggle_cycles, 10);
        // en was driven high before enabling and never changed.
        assert_eq!(net("en").toggle_cycles, 0);
        assert_eq!(net("en").high_cycles, 10);
        assert_eq!(net("clk").toggle_cycles, 0);
        // Coverage excludes clk: en never toggled -> 2 of 3 nets.
        assert!((r.toggle_coverage() - 2.0 / 3.0).abs() < 1e-9);
        // Everything depends on the always-changing value: never quiescent.
        assert!(r
            .settle_cones
            .iter()
            .chain(r.step_cones.iter())
            .all(|c| c.quiescent_cycles == 0));
        // Disabling en freezes the design: every later cycle is quiescent.
        sim.set("en", 0);
        sim.step().unwrap(); // en toggles this cycle
        sim.run(9).unwrap();
        let r2 = sim.telemetry_report().expect("enabled");
        assert_eq!(r2.cycles, 20);
        // Settle cones read only `value`, frozen from the en-toggle cycle on;
        // step cones also read `en`, which changed on that one cycle.
        assert!(r2.settle_cones.iter().all(|c| c.quiescent_cycles == 10));
        assert!(r2.step_cones.iter().all(|c| c.quiescent_cycles == 9));
    }

    #[test]
    fn engines_report_identical_telemetry() {
        let d = mx_design();
        let mut a = Simulator::new(&d, "mx").expect("build");
        let mut b = Simulator::new(&d, "mx").expect("build");
        a.set_engine(Engine::Bytecode);
        b.set_engine(Engine::TreeWalk);
        a.enable_telemetry(true);
        b.enable_telemetry(true);
        let mut state = 0x2545F4914F6CDD1Du64;
        for _ in 0..200u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            for (port, width) in [("we", 1), ("waddr", 4), ("wdata", 16), ("raddr", 4)] {
                let v = (state >> 24) & mask(width);
                a.set(port, v);
                b.set(port, v);
                state = state.rotate_left(17);
            }
            a.step().unwrap();
            b.step().unwrap();
        }
        let ra = a.telemetry_report().expect("enabled");
        let rb = b.telemetry_report().expect("enabled");
        assert_eq!(ra, rb);
        assert_eq!(ra.to_json(), rb.to_json());
        assert_eq!(a.telemetry_trace(), b.telemetry_trace());
        obs::json::parse(&ra.to_json()).expect("telemetry JSON is strict");
    }

    const ALL_ENGINES: [Engine; 4] = [
        Engine::Bytecode,
        Engine::TreeWalk,
        Engine::Event,
        Engine::Batched,
    ];

    #[test]
    fn all_engines_agree_on_counter() {
        let d = counter();
        let mut sims: Vec<Simulator> = ALL_ENGINES
            .iter()
            .map(|&e| {
                let mut s = Simulator::new(&d, "counter").expect("build");
                s.set_engine(e);
                s
            })
            .collect();
        for cyc in 0..300u64 {
            let en = u64::from(cyc % 3 != 0);
            let expect = sims[0].get("count");
            for s in &mut sims {
                s.set("en", en);
                assert_eq!(
                    s.get("count"),
                    expect,
                    "engine {:?} cycle {cyc}",
                    s.engine()
                );
                s.step().unwrap();
            }
        }
    }

    #[test]
    fn all_engines_agree_on_memory_and_assert_design() {
        let d = mx_design();
        let mut sims: Vec<Simulator> = ALL_ENGINES
            .iter()
            .map(|&e| {
                let mut s = Simulator::new(&d, "mx").expect("build");
                s.set_engine(e);
                s
            })
            .collect();
        let mut state = 0x2545F4914F6CDD1Du64;
        for cyc in 0..500u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let mut drive = state;
            for s in &mut sims {
                let mut st = drive;
                for (port, width) in [("we", 1), ("waddr", 4), ("wdata", 16), ("raddr", 4)] {
                    s.set(port, (st >> 24) & mask(width));
                    st = st.rotate_left(17);
                }
                drive = state; // same stimulus for every engine
            }
            state = {
                let mut st = state;
                for _ in 0..4 {
                    st = st.rotate_left(17);
                }
                st
            };
            for out in ["rdata", "sum"] {
                let expect = sims[0].get(out);
                for s in &mut sims {
                    assert_eq!(
                        s.get(out),
                        expect,
                        "{out} engine {:?} cycle {cyc}",
                        s.engine()
                    );
                }
            }
            for s in &mut sims {
                s.step().unwrap();
            }
        }
        for addr in 0..16 {
            let expect = sims[0].read_mem("ram", addr);
            for s in &sims {
                assert_eq!(s.read_mem("ram", addr), expect, "engine {:?}", s.engine());
            }
        }
    }

    #[test]
    fn all_engines_emit_identical_vcd_bytes() {
        let d = mx_design();
        let mut dumps: Vec<String> = Vec::new();
        for &engine in &ALL_ENGINES {
            let mut sim = Simulator::new(&d, "mx").expect("build");
            sim.set_engine(engine);
            let shared = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
            struct W(std::rc::Rc<std::cell::RefCell<Vec<u8>>>);
            impl std::io::Write for W {
                fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                    self.0.borrow_mut().extend_from_slice(b);
                    Ok(b.len())
                }
                fn flush(&mut self) -> std::io::Result<()> {
                    Ok(())
                }
            }
            sim.start_vcd(Box::new(W(shared.clone()))).unwrap();
            let mut state = 0x9E3779B97F4A7C15u64;
            for _ in 0..100u64 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let mut st = state;
                for (port, width) in [("we", 1), ("waddr", 4), ("wdata", 16), ("raddr", 4)] {
                    sim.set(port, (st >> 24) & mask(width));
                    st = st.rotate_left(17);
                }
                sim.step().unwrap();
            }
            drop(sim);
            dumps.push(String::from_utf8(shared.borrow().clone()).unwrap());
        }
        for (i, d) in dumps.iter().enumerate().skip(1) {
            assert_eq!(d, &dumps[0], "VCD of {:?} differs", ALL_ENGINES[i]);
        }
    }

    #[test]
    fn event_and_batched_report_identical_telemetry() {
        let d = mx_design();
        let mut sims: Vec<Simulator> = ALL_ENGINES
            .iter()
            .map(|&e| {
                let mut s = Simulator::new(&d, "mx").expect("build");
                s.set_engine(e);
                s.enable_telemetry(true);
                s
            })
            .collect();
        let mut state = 0x2545F4914F6CDD1Du64;
        for _ in 0..200u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            for s in &mut sims {
                let mut st = state;
                for (port, width) in [("we", 1), ("waddr", 4), ("wdata", 16), ("raddr", 4)] {
                    s.set(port, (st >> 24) & mask(width));
                    st = st.rotate_left(17);
                }
                s.step().unwrap();
            }
        }
        let base = sims[0].telemetry_report().expect("enabled");
        let base_trace = sims[0].telemetry_trace();
        for s in &sims[1..] {
            let r = s.telemetry_report().expect("enabled");
            assert_eq!(r, base, "telemetry of {:?} differs", s.engine());
            assert_eq!(r.to_json(), base.to_json());
            assert_eq!(s.telemetry_trace(), base_trace);
        }
    }

    #[test]
    fn watchdog_fires_identically_in_every_engine() {
        let d = counter();
        for &engine in &ALL_ENGINES {
            let mut sim = Simulator::new(&d, "counter").expect("build");
            sim.set_engine(engine);
            // en = 0: every cone is quiescent, yet skipped cycles still
            // count against the budget.
            sim.set("en", 0);
            sim.set_cycle_budget(Some(10));
            sim.run(10).unwrap();
            let err = sim.step().unwrap_err();
            assert_eq!(err.cycle, 10, "engine {engine:?}");
            assert!(err.message.contains("cycle budget"), "{engine:?}: {err}");
            sim.set_cycle_budget(Some(12));
            sim.run(2).unwrap();
            assert_eq!(sim.cycle(), 12, "engine {engine:?}");
        }
    }

    #[test]
    fn assertion_fires_identically_in_every_engine() {
        let mut m = VModule::new("guarded");
        m.port("clk", Dir::Input, 1);
        m.port("en", Dir::Input, 1);
        m.port("addr", Dir::Input, 8);
        m.main_always().stmts.push(Stmt::Assert {
            guard: Expr::r("en"),
            cond: Expr::bin(BinOp::ULt, Expr::r("addr"), Expr::c(16, 8)),
            message: "address out of bounds".into(),
        });
        let mut d = Design::new();
        d.add(m);
        for &engine in &ALL_ENGINES {
            let mut sim = Simulator::new(&d, "guarded").expect("build");
            sim.set_engine(engine);
            sim.set("en", 0);
            sim.set("addr", 200);
            sim.step().expect("guard off: no failure");
            sim.set("en", 1);
            let err = sim.step().unwrap_err();
            assert!(err.message.contains("address out of bounds"), "{err}");
            assert_eq!(err.cycle, 1, "engine {engine:?}");
            // A failed step does not complete; retrying fails again.
            let err2 = sim.step().unwrap_err();
            assert_eq!(err2.cycle, 1, "engine {engine:?}");
        }
    }

    #[test]
    fn external_pokes_wake_event_cones() {
        let d = counter();
        for engine in [Engine::Bytecode, Engine::Event] {
            let mut sim = Simulator::new(&d, "counter").expect("build");
            sim.set_engine(engine);
            sim.set("en", 1);
            sim.run(3).unwrap();
            assert_eq!(sim.get("count"), 3, "engine {engine:?}");
            // Poke the register net directly: the settle cone producing
            // `count` must recompute, and the next step must increment
            // from the poked value.
            sim.set("value", 40);
            assert_eq!(sim.get("count"), 40, "engine {engine:?}");
            sim.step().unwrap();
            assert_eq!(sim.get("count"), 41, "engine {engine:?}");
            // Memoryless quiescence after freezing still works.
            sim.set("en", 0);
            sim.run(5).unwrap();
            assert_eq!(sim.get("count"), 41, "engine {engine:?}");
        }
    }

    #[test]
    fn write_mem_wakes_event_readers() {
        let d = mx_design();
        for engine in [Engine::Bytecode, Engine::Event, Engine::Batched] {
            let mut sim = Simulator::new(&d, "mx").expect("build");
            sim.set_engine(engine);
            sim.set("we", 0);
            sim.set("raddr", 5);
            sim.run(2).unwrap();
            assert_eq!(sim.get("rdata"), 0, "engine {engine:?}");
            sim.write_mem("ram", 5, 0x1234);
            sim.step().unwrap(); // rdata_r latches the poked word
            assert_eq!(sim.get("rdata"), 0x1234, "engine {engine:?}");
        }
    }

    #[test]
    fn batched_lanes_run_independent_stimuli() {
        let d = counter();
        let mut batched = Simulator::new(&d, "counter").expect("build");
        batched.set_batch_lanes(4);
        batched.set_engine(Engine::Batched);
        assert_eq!(batched.lanes(), 4);
        let mut scalars: Vec<Simulator> = (0..4)
            .map(|_| Simulator::new(&d, "counter").expect("build"))
            .collect();
        for cyc in 0..200u64 {
            for lane in 0..4usize {
                // Divergent per-lane enables.
                let en = u64::from(cyc % (lane as u64 + 2) != 0);
                batched.set_lane("en", lane, en);
                scalars[lane].set("en", en);
            }
            for lane in 0..4usize {
                assert_eq!(
                    batched.get_lane("count", lane),
                    scalars[lane].get("count"),
                    "lane {lane} cycle {cyc}"
                );
            }
            // Lane 0 mirrors the scalar accessors exactly.
            assert_eq!(batched.get("count"), batched.get_lane("count", 0));
            batched.step().unwrap();
            for s in &mut scalars {
                s.step().unwrap();
            }
        }
    }

    #[test]
    fn batched_lanes_run_independent_memory_stimuli() {
        let d = mx_design();
        const L: usize = 3;
        let mut batched = Simulator::new(&d, "mx").expect("build");
        batched.set_batch_lanes(L);
        batched.set_engine(Engine::Batched);
        let mut scalars: Vec<Simulator> = (0..L)
            .map(|_| Simulator::new(&d, "mx").expect("build"))
            .collect();
        let mut state = 0x0123456789ABCDEFu64;
        for cyc in 0..300u64 {
            for (lane, s) in scalars.iter_mut().enumerate() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let mut st = state;
                for (port, width) in [("we", 1), ("waddr", 4), ("wdata", 16), ("raddr", 4)] {
                    let v = (st >> 24) & mask(width);
                    batched.set_lane(port, lane, v);
                    s.set(port, v);
                    st = st.rotate_left(17);
                }
            }
            for out in ["rdata", "sum"] {
                for (lane, s) in scalars.iter_mut().enumerate() {
                    assert_eq!(
                        batched.get_lane(out, lane),
                        s.get(out),
                        "{out} lane {lane} cycle {cyc}"
                    );
                }
            }
            batched.step().unwrap();
            for s in &mut scalars {
                s.step().unwrap();
            }
        }
        for addr in 0..16u64 {
            for (lane, s) in scalars.iter().enumerate() {
                assert_eq!(
                    batched.read_mem_lane("ram", lane, addr),
                    s.read_mem("ram", addr),
                    "ram[{addr}] lane {lane}"
                );
            }
        }
    }

    #[test]
    fn batched_assertion_reports_lowest_failing_lane() {
        let mut m = VModule::new("guarded");
        m.port("clk", Dir::Input, 1);
        m.port("en", Dir::Input, 1);
        m.port("addr", Dir::Input, 8);
        m.main_always().stmts.push(Stmt::Assert {
            guard: Expr::r("en"),
            cond: Expr::bin(BinOp::ULt, Expr::r("addr"), Expr::c(16, 8)),
            message: "address out of bounds".into(),
        });
        let mut d = Design::new();
        d.add(m);
        let mut sim = Simulator::new(&d, "guarded").expect("build");
        sim.set_batch_lanes(4);
        sim.set_engine(Engine::Batched);
        sim.set("en", 1);
        for lane in 0..4usize {
            sim.set_lane("addr", lane, if lane >= 2 { 200 } else { 3 });
        }
        let err = sim.step().unwrap_err();
        assert!(err.message.contains("[lane 2]"), "{err}");
        // Lane-0 failures keep the scalar message verbatim.
        let mut sim0 = Simulator::new(&d, "guarded").expect("build");
        sim0.set_batch_lanes(2);
        sim0.set_engine(Engine::Batched);
        sim0.set("en", 1);
        sim0.set("addr", 77);
        let err0 = sim0.step().unwrap_err();
        assert_eq!(err0.message, "address out of bounds");
    }

    #[test]
    fn engine_switch_mid_run_stays_consistent() {
        let d = mx_design();
        let mut a = Simulator::new(&d, "mx").expect("build");
        let mut b = Simulator::new(&d, "mx").expect("build");
        let mut state = 0xDEADBEEFCAFEF00Du64;
        let mut drive = |s: &mut Simulator, st: u64| {
            let mut st = st;
            for (port, width) in [("we", 1), ("waddr", 4), ("wdata", 16), ("raddr", 4)] {
                s.set(port, (st >> 24) & mask(width));
                st = st.rotate_left(17);
            }
        };
        for cyc in 0..240u64 {
            // b hops engines every 40 cycles; a stays on bytecode.
            if cyc % 40 == 0 {
                let e = ALL_ENGINES[(cyc / 40) as usize % ALL_ENGINES.len()];
                b.set_engine(e);
            }
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            drive(&mut a, state);
            drive(&mut b, state);
            assert_eq!(a.get("sum"), b.get("sum"), "cycle {cyc}");
            assert_eq!(a.get("rdata"), b.get("rdata"), "cycle {cyc}");
            a.step().unwrap();
            b.step().unwrap();
        }
        for addr in 0..16 {
            assert_eq!(a.read_mem("ram", addr), b.read_mem("ram", addr));
        }
    }

    #[test]
    fn telemetry_counts_exact_under_event_engine() {
        // The golden-count scenario from telemetry_counts_on_counter_are_exact,
        // replayed on the event engine: identical numbers while most cones
        // are skipped.
        let d = counter();
        let mut sim = Simulator::new(&d, "counter").expect("build");
        sim.set_engine(Engine::Event);
        sim.set("en", 1);
        sim.enable_telemetry(false);
        sim.run(10).unwrap();
        let r = sim.telemetry_report().expect("enabled");
        let net = |r: &TelemetryReport, name: &str| {
            r.nets.iter().find(|n| n.name == name).cloned().unwrap()
        };
        assert_eq!(net(&r, "value").toggle_cycles, 10);
        assert_eq!(net(&r, "en").high_cycles, 10);
        sim.set("en", 0);
        sim.step().unwrap();
        sim.run(9).unwrap();
        let r2 = sim.telemetry_report().expect("enabled");
        assert_eq!(r2.cycles, 20);
        assert!(r2.settle_cones.iter().all(|c| c.quiescent_cycles == 10));
        assert!(r2.step_cones.iter().all(|c| c.quiescent_cycles == 9));
    }

    #[test]
    fn telemetry_trace_is_chrome_trace_json() {
        let d = counter();
        let mut sim = Simulator::new(&d, "counter").expect("build");
        sim.enable_telemetry(true);
        sim.set("en", 1);
        sim.run(5).unwrap();
        sim.set("en", 0);
        sim.step().unwrap();
        sim.run(4).unwrap();
        let trace = sim.telemetry_trace().expect("trace recording on");
        let doc = obs::json::parse(&trace).expect("trace is strict JSON");
        assert!(doc.get("traceEvents").is_some());
        assert!(trace.contains("\"busy\""));
        assert!(trace.contains("\"quiescent\""));
        // Without record_trace there is no trace, but reports still work.
        let mut plain = Simulator::new(&d, "counter").expect("build");
        plain.enable_telemetry(false);
        plain.run(3).unwrap();
        assert!(plain.telemetry_trace().is_none());
        assert!(plain.telemetry_report().is_some());
    }
}
