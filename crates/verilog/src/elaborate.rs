//! Elaboration: flatten a hierarchical [`Design`] into a single module.
//!
//! Instances are inlined recursively; every net of an instance `u` of module
//! `M` becomes `u__<net>` in the flat module. Input-port connections become
//! continuous assigns into the child's port wire; output-port connections
//! must be plain net references in the parent and become assigns out of the
//! child's port wire.

use crate::ast::*;
use std::collections::HashMap;
use std::fmt;

/// Elaboration failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ElabError(pub String);

impl fmt::Display for ElabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "elaboration error: {}", self.0)
    }
}
impl std::error::Error for ElabError {}

/// Flatten `top` and everything it instantiates into one module.
///
/// # Errors
/// Returns an error on unknown modules/ports or non-net output connections.
pub fn flatten(design: &Design, top: &str) -> Result<VModule, ElabError> {
    let top_module = design
        .find(top)
        .ok_or_else(|| ElabError(format!("no module named '{top}'")))?;
    let mut out = VModule::new(top.to_string());
    out.ports = top_module.ports.clone();
    inline(design, top_module, "", &mut out)?;
    Ok(out)
}

fn prefixed(prefix: &str, name: &str) -> String {
    if prefix.is_empty() {
        name.to_string()
    } else {
        format!("{prefix}__{name}")
    }
}

fn inline(
    design: &Design,
    module: &VModule,
    prefix: &str,
    out: &mut VModule,
) -> Result<(), ElabError> {
    // Locals: nets and memories, renamed.
    for n in &module.nets {
        out.nets.push(NetDecl {
            name: prefixed(prefix, &n.name),
            ..n.clone()
        });
    }
    for m in &module.memories {
        out.memories.push(MemDecl {
            name: prefixed(prefix, &m.name),
            ..m.clone()
        });
    }
    // Non-top ports become wires.
    if !prefix.is_empty() {
        for p in &module.ports {
            out.nets.push(NetDecl {
                name: prefixed(prefix, &p.name),
                kind: NetKind::Wire,
                width: p.width,
                init: None,
            });
        }
    }
    for a in &module.assigns {
        out.assigns.push(Assign {
            lhs: prefixed(prefix, &a.lhs),
            rhs: rename_expr(&a.rhs, prefix),
            comment: a.comment.clone(),
        });
    }
    for blk in &module.always {
        let stmts = blk.stmts.iter().map(|s| rename_stmt(s, prefix)).collect();
        out.always.push(AlwaysBlock { stmts });
    }
    for inst in &module.instances {
        let child = design
            .find(&inst.module)
            .ok_or_else(|| ElabError(format!("instance of unknown module '{}'", inst.module)))?;
        let child_prefix = prefixed(prefix, &inst.name);
        let mut connected: HashMap<&str, ()> = HashMap::new();
        for (port, expr) in &inst.connections {
            let decl = child.find_port(port).ok_or_else(|| {
                ElabError(format!("module '{}' has no port '{port}'", inst.module))
            })?;
            connected.insert(port.as_str(), ());
            let port_net = prefixed(&child_prefix, port);
            match decl.dir {
                Dir::Input => out.assigns.push(Assign {
                    lhs: port_net,
                    rhs: rename_expr(expr, prefix),
                    comment: None,
                }),
                Dir::Output => match expr {
                    Expr::Ref(parent_net) => out.assigns.push(Assign {
                        lhs: prefixed(prefix, parent_net),
                        rhs: Expr::Ref(port_net),
                        comment: None,
                    }),
                    other => {
                        return Err(ElabError(format!(
                            "output port '{port}' of instance '{}' must connect to a net, \
                             got {other:?}",
                            inst.name
                        )))
                    }
                },
            }
        }
        for p in &child.ports {
            if p.dir == Dir::Input && !connected.contains_key(p.name.as_str()) {
                return Err(ElabError(format!(
                    "input port '{}' of instance '{}' is unconnected",
                    p.name, inst.name
                )));
            }
        }
        inline(design, child, &child_prefix, out)?;
    }
    Ok(())
}

fn rename_expr(e: &Expr, prefix: &str) -> Expr {
    match e {
        Expr::Const { .. } => e.clone(),
        Expr::Ref(n) => Expr::Ref(prefixed(prefix, n)),
        Expr::MemRead { mem, addr } => Expr::MemRead {
            mem: prefixed(prefix, mem),
            addr: Box::new(rename_expr(addr, prefix)),
        },
        Expr::Slice { base, hi, lo } => Expr::Slice {
            base: Box::new(rename_expr(base, prefix)),
            hi: *hi,
            lo: *lo,
        },
        Expr::Unary { op, arg } => Expr::Unary {
            op: *op,
            arg: Box::new(rename_expr(arg, prefix)),
        },
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op: *op,
            lhs: Box::new(rename_expr(lhs, prefix)),
            rhs: Box::new(rename_expr(rhs, prefix)),
        },
        Expr::Ternary { cond, then, els } => Expr::Ternary {
            cond: Box::new(rename_expr(cond, prefix)),
            then: Box::new(rename_expr(then, prefix)),
            els: Box::new(rename_expr(els, prefix)),
        },
        Expr::Concat(parts) => Expr::Concat(parts.iter().map(|p| rename_expr(p, prefix)).collect()),
        Expr::SignExtend { arg, from, to } => Expr::SignExtend {
            arg: Box::new(rename_expr(arg, prefix)),
            from: *from,
            to: *to,
        },
    }
}

fn rename_stmt(s: &Stmt, prefix: &str) -> Stmt {
    match s {
        Stmt::NonBlocking { lhs, rhs } => Stmt::NonBlocking {
            lhs: match lhs {
                LValue::Net(n) => LValue::Net(prefixed(prefix, n)),
                LValue::MemElem { mem, addr } => LValue::MemElem {
                    mem: prefixed(prefix, mem),
                    addr: rename_expr(addr, prefix),
                },
            },
            rhs: rename_expr(rhs, prefix),
        },
        Stmt::If { cond, then, els } => Stmt::If {
            cond: rename_expr(cond, prefix),
            then: then.iter().map(|t| rename_stmt(t, prefix)).collect(),
            els: els.iter().map(|t| rename_stmt(t, prefix)).collect(),
        },
        Stmt::Assert {
            guard,
            cond,
            message,
        } => Stmt::Assert {
            guard: rename_expr(guard, prefix),
            cond: rename_expr(cond, prefix),
            message: message.clone(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn child() -> VModule {
        let mut m = VModule::new("inc");
        m.port("clk", Dir::Input, 1);
        m.port("x", Dir::Input, 8);
        m.port("y", Dir::Output, 8);
        m.assign("y", Expr::add(Expr::r("x"), Expr::c(1, 8)));
        m
    }

    fn parent() -> VModule {
        let mut m = VModule::new("top");
        m.port("clk", Dir::Input, 1);
        m.port("a", Dir::Input, 8);
        m.port("b", Dir::Output, 8);
        m.wire("mid", 8);
        m.instances.push(Instance {
            module: "inc".into(),
            name: "u0".into(),
            connections: vec![
                ("clk".into(), Expr::r("clk")),
                ("x".into(), Expr::r("a")),
                ("y".into(), Expr::r("mid")),
            ],
        });
        m.instances.push(Instance {
            module: "inc".into(),
            name: "u1".into(),
            connections: vec![
                ("clk".into(), Expr::r("clk")),
                ("x".into(), Expr::r("mid")),
                ("y".into(), Expr::r("b")),
            ],
        });
        m
    }

    #[test]
    fn flattens_two_levels() {
        let mut d = Design::new();
        d.add(child());
        d.add(parent());
        let flat = flatten(&d, "top").expect("flatten");
        // Child nets prefixed; output port connection produced an assign.
        assert!(flat.nets.iter().any(|n| n.name == "u0__x"));
        assert!(flat.nets.iter().any(|n| n.name == "u1__y"));
        assert!(flat.assigns.iter().any(|a| a.lhs == "mid"));
        assert!(flat.assigns.iter().any(|a| a.lhs == "b"));
        // Two copies of the child's adder logic.
        let adders = flat
            .assigns
            .iter()
            .filter(|a| matches!(&a.rhs, Expr::Binary { op: BinOp::Add, .. }))
            .count();
        assert_eq!(adders, 2);
    }

    #[test]
    fn unknown_module_reported() {
        let mut d = Design::new();
        d.add(parent());
        let err = flatten(&d, "top").unwrap_err();
        assert!(err.0.contains("unknown module 'inc'"), "{err}");
    }

    #[test]
    fn unconnected_input_reported() {
        let mut d = Design::new();
        d.add(child());
        let mut p = VModule::new("top");
        p.port("clk", Dir::Input, 1);
        p.instances.push(Instance {
            module: "inc".into(),
            name: "u0".into(),
            connections: vec![("clk".into(), Expr::r("clk"))],
        });
        d.add(p);
        let err = flatten(&d, "top").unwrap_err();
        assert!(err.0.contains("unconnected"), "{err}");
    }
}
