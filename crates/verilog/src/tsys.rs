//! Word-level transition systems lowered from the simulator's bytecode tapes.
//!
//! The settle/step tapes (see [`crate::sim`]) are a linearized form of the
//! design's combinational and sequential behavior: the settle tape is a
//! topologically ordered sweep of continuous assigns, the step tape the
//! single-clock always blocks with structured `if` regions encoded as
//! `JumpIfZero`/`Jump` pairs. This module reconstructs a cycle-free
//! word-level transition system from those tapes:
//!
//! * every net written by a non-blocking assign becomes a **state variable**
//!   whose `next` function folds the tape's pending updates in program order;
//! * every inferred memory is expanded **word-wise** into one state variable
//!   per word (reads become bounded mux chains, writes per-word conditional
//!   updates), so the system stays pure bit-vector — no array sorts;
//! * input ports become free **inputs**, undriven internal nets become
//!   constants at their reset value;
//! * immediate assertions become **bad** properties (`guard && !cond`).
//!
//! The result can be printed as textual [BTOR2] (`hirc --emit=btor2`) or
//! bit-blasted to CNF by the `bmc` crate for bounded equivalence checking.
//! Both consumers rely on the node list being in topological order and on
//! the printer/lowering being fully deterministic: same design in, byte
//! identical system out, at every thread count.
//!
//! [BTOR2]: https://fmv.jku.at/btor2/ (the word-level model-checking format
//! of Btor2MLIR and btormc)

use crate::ast::{BinOp, Design, Dir};
use crate::elaborate::flatten;
use crate::sim::{self, BuildError, Simulator};
use std::collections::{BTreeMap, HashMap};

/// Index of a node in [`TransitionSystem::nodes`]. Nodes are hash-consed and
/// topologically ordered: a node's operands always have smaller indices.
pub type NodeId = u32;

/// Word-level operators. All operands of a `Binary` node have the node's
/// width, except comparisons whose operands share a width and whose result
/// is 1 bit. Shift amounts are full operand values: `Sll`/`Srl` produce 0
/// and `Sra` produces all-sign once the amount reaches the width (matching
/// both BTOR2 and the simulator's `eval_binary`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TOp {
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Sra,
    Eq,
    Ne,
    Ult,
    Ule,
    Slt,
    Sle,
}

impl TOp {
    fn is_comparison(self) -> bool {
        matches!(
            self,
            TOp::Eq | TOp::Ne | TOp::Ult | TOp::Ule | TOp::Slt | TOp::Sle
        )
    }

    /// The BTOR2 keyword.
    fn btor2(self) -> &'static str {
        match self {
            TOp::Add => "add",
            TOp::Sub => "sub",
            TOp::Mul => "mul",
            TOp::And => "and",
            TOp::Or => "or",
            TOp::Xor => "xor",
            TOp::Sll => "sll",
            TOp::Srl => "srl",
            TOp::Sra => "sra",
            TOp::Eq => "eq",
            TOp::Ne => "neq",
            TOp::Ult => "ult",
            TOp::Ule => "ulte",
            TOp::Slt => "slt",
            TOp::Sle => "slte",
        }
    }
}

/// One node of the word-level DAG. Values are unsigned bit-vectors of an
/// explicit width between 1 and 64.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Node {
    Const {
        value: u64,
        width: u32,
    },
    /// Free input; `index` into [`TransitionSystem::inputs`].
    Input {
        index: u32,
        width: u32,
    },
    /// Current-cycle state value; `index` into [`TransitionSystem::states`].
    State {
        index: u32,
        width: u32,
    },
    /// Bitwise complement.
    Not {
        a: NodeId,
        width: u32,
    },
    /// OR-reduction to 1 bit (`value != 0`).
    RedOr {
        a: NodeId,
    },
    Binary {
        op: TOp,
        a: NodeId,
        b: NodeId,
        width: u32,
    },
    /// `cond` is 1 bit; arms have the node's width.
    Ite {
        cond: NodeId,
        t: NodeId,
        e: NodeId,
        width: u32,
    },
    /// Bits `[hi:lo]` of `a`; width `hi - lo + 1`.
    Slice {
        a: NodeId,
        hi: u32,
        lo: u32,
    },
    /// Zero or sign extension of `a` to `width`.
    Ext {
        a: NodeId,
        width: u32,
        signed: bool,
    },
    /// `{hi, lo}`; width is the sum of the part widths.
    Concat {
        hi: NodeId,
        lo: NodeId,
        width: u32,
    },
}

/// A free input (a top-level input port of the flattened design).
#[derive(Clone, Debug)]
pub struct InputVar {
    pub name: String,
    pub width: u32,
    /// The net's reset value in the simulator — what an environment that
    /// never drives this input would observe.
    pub init: u64,
    pub node: NodeId,
}

/// A state variable: a non-blocking-assigned net, or one word of an
/// inferred memory (named `mem[word]`).
#[derive(Clone, Debug)]
pub struct StateVar {
    pub name: String,
    pub width: u32,
    /// Reset value (net initializers; memories reset to zero).
    pub init: u64,
    /// Next-state function, evaluated over the current cycle's nodes.
    pub next: NodeId,
    pub node: NodeId,
}

/// A word-level transition system. One transition = one clock edge plus the
/// following settle; the clock itself is abstracted away.
#[derive(Clone, Debug, Default)]
pub struct TransitionSystem {
    /// Topologically ordered, hash-consed node DAG.
    pub nodes: Vec<Node>,
    pub inputs: Vec<InputVar>,
    pub states: Vec<StateVar>,
    /// Assertion properties: (sanitized message, 1-bit "violated" node).
    pub bads: Vec<(String, NodeId)>,
    /// Settled value of every named net, for environment models and output
    /// tracing. Deterministically ordered.
    pub nets: BTreeMap<String, NodeId>,
    /// Output ports of the flattened design, in port order.
    pub outputs: Vec<(String, NodeId)>,
}

impl TransitionSystem {
    /// The width of a node's value in bits.
    pub fn width(&self, id: NodeId) -> u32 {
        match &self.nodes[id as usize] {
            Node::Const { width, .. }
            | Node::Input { width, .. }
            | Node::State { width, .. }
            | Node::Not { width, .. }
            | Node::Binary { width, .. }
            | Node::Ite { width, .. }
            | Node::Ext { width, .. }
            | Node::Concat { width, .. } => *width,
            Node::RedOr { .. } => 1,
            Node::Slice { hi, lo, .. } => hi - lo + 1,
        }
    }

    /// Evaluate every node for one cycle. `state` holds the current value of
    /// each state variable (in order), `inputs` the value of each input; the
    /// returned vector is indexed by [`NodeId`]. This is the lowering's
    /// executable semantics — the reference the bit-blaster and the BTOR2
    /// printer must both agree with.
    pub fn eval_nodes(&self, state: &[u64], inputs: &[u64]) -> Vec<u64> {
        let mut vals = vec![0u64; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            vals[i] = match n {
                Node::Const { value, .. } => *value,
                Node::Input { index, width } => inputs[*index as usize] & sim::mask(*width),
                Node::State { index, width } => state[*index as usize] & sim::mask(*width),
                Node::Not { a, width } => !vals[*a as usize] & sim::mask(*width),
                Node::RedOr { a } => u64::from(vals[*a as usize] != 0),
                Node::Binary { op, a, b, width } => {
                    let aw = self.width(*a);
                    fold_binary(*op, vals[*a as usize], vals[*b as usize], aw, *width)
                }
                Node::Ite { cond, t, e, .. } => {
                    if vals[*cond as usize] != 0 {
                        vals[*t as usize]
                    } else {
                        vals[*e as usize]
                    }
                }
                Node::Slice { a, hi, lo } => (vals[*a as usize] >> lo) & sim::mask(hi - lo + 1),
                Node::Ext { a, width, signed } => {
                    let aw = self.width(*a);
                    let v = vals[*a as usize];
                    if *signed && aw < 64 && v & (1 << (aw - 1)) != 0 {
                        (v | !sim::mask(aw)) & sim::mask(*width)
                    } else {
                        v
                    }
                }
                Node::Concat { hi, lo, .. } => {
                    let lw = self.width(*lo);
                    (vals[*hi as usize] << lw) | vals[*lo as usize]
                }
            };
        }
        vals
    }

    /// Advance one cycle: returns the next state vector given this cycle's
    /// evaluated nodes.
    pub fn next_state(&self, vals: &[u64]) -> Vec<u64> {
        self.states.iter().map(|s| vals[s.next as usize]).collect()
    }

    /// Initial state vector.
    pub fn initial_state(&self) -> Vec<u64> {
        self.states.iter().map(|s| s.init).collect()
    }
}

/// Evaluate a binary word operator; `aw` is the operand width (used by
/// comparisons, where the result is 1 bit of width `w`), `w` the result
/// width. Shared by constant folding and [`TransitionSystem::eval_nodes`].
fn fold_binary(op: TOp, a: u64, b: u64, aw: u32, w: u32) -> u64 {
    let m = sim::mask(w);
    let se = |v: u64| -> i128 {
        if aw < 64 && v & (1 << (aw - 1)) != 0 {
            v as i128 - (1i128 << aw)
        } else {
            v as i128
        }
    };
    match op {
        TOp::Add => a.wrapping_add(b) & m,
        TOp::Sub => a.wrapping_sub(b) & m,
        TOp::Mul => a.wrapping_mul(b) & m,
        TOp::And => a & b,
        TOp::Or => a | b,
        TOp::Xor => a ^ b,
        TOp::Sll => {
            if b >= u64::from(w) {
                0
            } else {
                (a << b) & m
            }
        }
        TOp::Srl => {
            if b >= u64::from(w) {
                0
            } else {
                a >> b
            }
        }
        TOp::Sra => {
            let sign = w < 64 && a & (1 << (w - 1)) != 0 || w == 64 && a & (1 << 63) != 0;
            if b >= u64::from(w) {
                if sign {
                    m
                } else {
                    0
                }
            } else {
                let filled = if sign { a | !m } else { a };
                (((filled as i64) >> b) as u64) & m
            }
        }
        TOp::Eq => u64::from(a == b),
        TOp::Ne => u64::from(a != b),
        TOp::Ult => u64::from(a < b),
        TOp::Ule => u64::from(a <= b),
        TOp::Slt => u64::from(se(a) < se(b)),
        TOp::Sle => u64::from(se(a) <= se(b)),
    }
}

// --------------------------------------------------------------- builder

/// Hash-consing node builder with constant folding.
#[derive(Default)]
struct Builder {
    nodes: Vec<Node>,
    cons: HashMap<Node, NodeId>,
}

impl Builder {
    fn push(&mut self, n: Node) -> NodeId {
        if let Some(&id) = self.cons.get(&n) {
            return id;
        }
        let id = self.nodes.len() as NodeId;
        self.nodes.push(n.clone());
        self.cons.insert(n, id);
        id
    }

    fn width(&self, id: NodeId) -> u32 {
        match &self.nodes[id as usize] {
            Node::Const { width, .. }
            | Node::Input { width, .. }
            | Node::State { width, .. }
            | Node::Not { width, .. }
            | Node::Binary { width, .. }
            | Node::Ite { width, .. }
            | Node::Ext { width, .. }
            | Node::Concat { width, .. } => *width,
            Node::RedOr { .. } => 1,
            Node::Slice { hi, lo, .. } => hi - lo + 1,
        }
    }

    fn const_value(&self, id: NodeId) -> Option<u64> {
        match self.nodes[id as usize] {
            Node::Const { value, .. } => Some(value),
            _ => None,
        }
    }

    fn konst(&mut self, value: u64, width: u32) -> NodeId {
        debug_assert!((1..=64).contains(&width));
        self.push(Node::Const {
            value: value & sim::mask(width),
            width,
        })
    }

    fn not(&mut self, a: NodeId) -> NodeId {
        let w = self.width(a);
        if let Some(v) = self.const_value(a) {
            return self.konst(!v, w);
        }
        // ¬¬x = x.
        if let Node::Not { a: inner, .. } = self.nodes[a as usize] {
            return inner;
        }
        self.push(Node::Not { a, width: w })
    }

    fn redor(&mut self, a: NodeId) -> NodeId {
        if self.width(a) == 1 {
            return a;
        }
        if let Some(v) = self.const_value(a) {
            return self.konst(u64::from(v != 0), 1);
        }
        self.push(Node::RedOr { a })
    }

    fn binary(&mut self, op: TOp, a: NodeId, b: NodeId) -> NodeId {
        let aw = self.width(a);
        debug_assert_eq!(aw, self.width(b), "binary operand widths must match");
        let w = if op.is_comparison() { 1 } else { aw };
        if let (Some(av), Some(bv)) = (self.const_value(a), self.const_value(b)) {
            return self.konst(fold_binary(op, av, bv, aw, w), w);
        }
        // Cheap neutral-element folds keep guard chains readable.
        match op {
            TOp::And => {
                if self.const_value(a) == Some(sim::mask(aw)) {
                    return b;
                }
                if self.const_value(b) == Some(sim::mask(aw)) {
                    return a;
                }
                if self.const_value(a) == Some(0) || self.const_value(b) == Some(0) {
                    return self.konst(0, w);
                }
                if a == b {
                    return a;
                }
            }
            TOp::Or => {
                if self.const_value(a) == Some(0) {
                    return b;
                }
                if self.const_value(b) == Some(0) {
                    return a;
                }
                if a == b {
                    return a;
                }
            }
            _ => {}
        }
        self.push(Node::Binary { op, a, b, width: w })
    }

    fn ite(&mut self, cond: NodeId, t: NodeId, e: NodeId) -> NodeId {
        debug_assert_eq!(self.width(cond), 1);
        let w = self.width(t);
        debug_assert_eq!(w, self.width(e));
        if let Some(c) = self.const_value(cond) {
            return if c != 0 { t } else { e };
        }
        if t == e {
            return t;
        }
        self.push(Node::Ite {
            cond,
            t,
            e,
            width: w,
        })
    }

    fn slice(&mut self, a: NodeId, hi: u32, lo: u32) -> NodeId {
        let w = self.width(a);
        debug_assert!(lo <= hi && hi < w);
        if lo == 0 && hi == w - 1 {
            return a;
        }
        if let Some(v) = self.const_value(a) {
            return self.konst(v >> lo, hi - lo + 1);
        }
        self.push(Node::Slice { a, hi, lo })
    }

    fn ext(&mut self, a: NodeId, width: u32, signed: bool) -> NodeId {
        let aw = self.width(a);
        debug_assert!(width >= aw);
        if width == aw {
            return a;
        }
        if let Some(v) = self.const_value(a) {
            let filled = if signed && v & (1 << (aw - 1)) != 0 {
                v | !sim::mask(aw)
            } else {
                v
            };
            return self.konst(filled, width);
        }
        self.push(Node::Ext { a, width, signed })
    }

    /// Truncate or zero-extend to exactly `w` bits.
    fn fit(&mut self, a: NodeId, w: u32) -> NodeId {
        let aw = self.width(a);
        if aw == w {
            a
        } else if aw > w {
            self.slice(a, w - 1, 0)
        } else {
            self.ext(a, w, false)
        }
    }

    fn and1(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.binary(TOp::And, a, b)
    }
}

/// Width of a contiguous low-bit mask as produced by `sim::mask`.
fn mask_width(m: u64) -> u32 {
    debug_assert!(
        m != 0 && (m & m.wrapping_add(1)) == 0,
        "mask {m:#x} not contiguous"
    );
    64 - m.leading_zeros()
}

// -------------------------------------------------------------- lowering

/// Lower the design's behavior (as compiled into the simulator's bytecode
/// tapes) into a [`TransitionSystem`] for module `top`.
///
/// # Errors
/// Fails when the design does not elaborate or uses a construct outside the
/// lowering's fragment (e.g. a net driven by both an assign and an always).
pub fn lower(design: &Design, top: &str) -> Result<TransitionSystem, BuildError> {
    let simulator = Simulator::new(design, top)?;
    let flat = flatten(design, top)?;
    Lowering::new(&simulator, &flat.ports).run()
}

/// Per-memory word-state bookkeeping.
struct MemWords {
    /// State index of each word.
    state_index: Vec<u32>,
    width: u32,
}

struct Lowering<'a> {
    view: sim::TapeView<'a>,
    b: Builder,
    inputs: Vec<InputVar>,
    states: Vec<StateVar>,
    bads: Vec<(String, NodeId)>,
    /// Settled value node per net (filled for combinational nets during the
    /// settle sweep).
    net_node: Vec<Option<NodeId>>,
    /// State index of each register net (`None` for non-state nets).
    net_state: Vec<Option<u32>>,
    mems: Vec<MemWords>,
    /// Symbolic register file of the tape walk.
    regs: HashMap<u32, NodeId>,
    ports: &'a [crate::ast::PortDecl],
}

/// An open structured-`if` region during the step-tape walk.
struct Region {
    cond: NodeId,
    sense: bool,
    /// Tape pc one past the region's last insn.
    end: u32,
}

impl<'a> Lowering<'a> {
    fn new(simulator: &'a Simulator, ports: &'a [crate::ast::PortDecl]) -> Self {
        Lowering {
            view: simulator.tape_view(),
            b: Builder::default(),
            inputs: Vec::new(),
            states: Vec::new(),
            bads: Vec::new(),
            net_node: Vec::new(),
            net_state: Vec::new(),
            mems: Vec::new(),
            regs: HashMap::new(),
            ports,
        }
    }

    fn unsupported(what: impl Into<String>) -> BuildError {
        BuildError::Unsupported(what.into())
    }

    fn run(mut self) -> Result<TransitionSystem, BuildError> {
        use sim::Insn;
        let nets = self.view.net_names.len();
        self.net_node = vec![None; nets];
        self.net_state = vec![None; nets];

        // Classify nets: non-blocking targets are states, assign targets are
        // combinational, input ports are free, the rest are constants.
        let mut emitted = vec![false; nets];
        let mut stored = vec![false; nets];
        for insn in self.view.step_tape {
            if let Insn::EmitNet { net, .. } = insn {
                emitted[*net as usize] = true;
            }
        }
        for insn in self.view.settle_tape {
            if let Insn::StoreNet { net, .. } = insn {
                stored[*net as usize] = true;
            }
        }
        let input_ports: HashMap<&str, u32> = self
            .ports
            .iter()
            .filter(|p| p.dir == Dir::Input)
            .map(|p| (p.name.as_str(), p.width))
            .collect();

        for i in 0..nets {
            let name = &self.view.net_names[i];
            let width = self.view.net_width[i].max(1);
            let is_input = input_ports.contains_key(name.as_str());
            match (is_input, emitted[i], stored[i]) {
                (true, false, false) => {
                    let index = self.inputs.len() as u32;
                    let node = self.b.push(Node::Input { index, width });
                    self.inputs.push(InputVar {
                        name: name.clone(),
                        width,
                        init: self.view.values[i],
                        node,
                    });
                    self.net_node[i] = Some(node);
                }
                (false, true, false) => {
                    let index = self.states.len() as u32;
                    let node = self.b.push(Node::State { index, width });
                    self.states.push(StateVar {
                        name: name.clone(),
                        width,
                        init: self.view.values[i],
                        next: node, // overwritten after the step walk
                        node,
                    });
                    self.net_state[i] = Some(index);
                    self.net_node[i] = Some(node);
                }
                (false, false, true) => {} // filled by the settle sweep
                (false, false, false) => {
                    self.net_node[i] = Some(self.b.konst(self.view.values[i], width));
                }
                _ => {
                    return Err(Self::unsupported(format!(
                        "net '{name}' has conflicting drivers (input={is_input}, \
                         always={}, assign={})",
                        emitted[i], stored[i]
                    )))
                }
            }
        }

        // Memories: one state variable per word, reset to the simulator's
        // initial contents (zero).
        for (mi, words) in self.view.memories.iter().enumerate() {
            let width = self.view.mem_width[mi].max(1);
            let mut state_index = Vec::with_capacity(words.len());
            for (wi, &init) in words.iter().enumerate() {
                let index = self.states.len() as u32;
                let node = self.b.push(Node::State { index, width });
                self.states.push(StateVar {
                    name: format!("{}[{wi}]", self.view.mem_names[mi]),
                    width,
                    init,
                    next: node,
                    node,
                });
                state_index.push(index);
            }
            self.mems.push(MemWords { state_index, width });
        }

        // Settle sweep: symbolically execute the topologically ordered
        // assign tape, defining every combinational net.
        let settle_tape = self.view.settle_tape;
        for (pc, insn) in settle_tape.iter().enumerate() {
            match insn {
                Insn::StoreNet { net, src, m } => {
                    let v = self.reg(*src);
                    let v = self.b.fit(v, mask_width(*m));
                    let v = self.b.fit(v, self.view.net_width[*net as usize].max(1));
                    self.net_node[*net as usize] = Some(v);
                }
                Insn::EmitNet { .. }
                | Insn::EmitMem { .. }
                | Insn::Assert { .. }
                | Insn::Jump { .. }
                | Insn::JumpIfZero { .. } => {
                    return Err(Self::unsupported(format!(
                        "settle tape contains a sequential insn at pc {pc}"
                    )))
                }
                other => self.pure(other)?,
            }
        }

        // Step walk: reconstruct the structured if regions from the jump
        // pattern (`JumpIfZero cond, else; ...then...; Jump end; ...else...`)
        // and collect guarded pending updates in program order.
        let mut regions: Vec<Region> = Vec::new();
        let mut pend_nets: Vec<(u32, Option<NodeId>, NodeId)> = Vec::new();
        let mut pend_mems: Vec<(u32, Option<NodeId>, NodeId, NodeId)> = Vec::new();
        let step_tape = self.view.step_tape;
        for (pc, insn) in step_tape.iter().enumerate() {
            let pc = pc as u32;
            while regions.last().is_some_and(|r| r.end <= pc) {
                regions.pop();
            }
            match insn {
                Insn::JumpIfZero { src, target } => {
                    let c = self.reg(*src);
                    let cond = self.b.redor(c);
                    regions.push(Region {
                        cond,
                        sense: true,
                        end: *target,
                    });
                }
                Insn::Jump { target } => {
                    // Terminator of a then branch: the innermost region ends
                    // right here; its complement covers the else branch.
                    let Some(then_region) = regions.pop() else {
                        return Err(Self::unsupported(format!(
                            "unstructured jump at step pc {pc}"
                        )));
                    };
                    if then_region.end != pc + 1 || !then_region.sense {
                        return Err(Self::unsupported(format!(
                            "unstructured jump at step pc {pc}"
                        )));
                    }
                    regions.push(Region {
                        cond: then_region.cond,
                        sense: false,
                        end: *target,
                    });
                }
                Insn::EmitNet { net, src } => {
                    let guard = self.guard(&regions);
                    let v = self.reg(*src);
                    pend_nets.push((*net, guard, v));
                }
                Insn::EmitMem { mem, addr, src } => {
                    let guard = self.guard(&regions);
                    let a = self.reg(*addr);
                    let v = self.reg(*src);
                    pend_mems.push((*mem, guard, a, v));
                }
                Insn::Assert { guard, cond, msg } => {
                    let region = self.guard(&regions);
                    let g = self.reg(*guard);
                    let g = self.b.redor(g);
                    let c = self.reg(*cond);
                    let c = self.b.redor(c);
                    let nc = self.b.not(c);
                    let mut fail = self.b.and1(g, nc);
                    if let Some(r) = region {
                        fail = self.b.and1(r, fail);
                    }
                    self.bads
                        .push((self.view.msgs[*msg as usize].clone(), fail));
                }
                Insn::StoreNet { .. } => {
                    return Err(Self::unsupported(format!(
                        "blocking net store in step tape at pc {pc}"
                    )))
                }
                other => self.pure(other)?,
            }
        }

        // Fold the pending non-blocking net updates, in program order (the
        // simulator applies them sequentially, so a later write wins).
        for si in 0..self.states.len() {
            // Memory words are handled below; register nets first.
            let Some(net) = (0..nets).find(|&n| self.net_state[n] == Some(si as u32)) else {
                continue;
            };
            let width = self.states[si].width;
            let mut next = self.states[si].node;
            for &(pnet, guard, v) in &pend_nets {
                if pnet as usize != net {
                    continue;
                }
                let v = self.b.fit(v, width);
                next = match guard {
                    Some(g) => self.b.ite(g, v, next),
                    None => v,
                };
            }
            self.states[si].next = next;
        }

        // Memory words: a write lands on word `w` when its address selects
        // `w` and its guard holds; writes apply in program order.
        for mi in 0..self.mems.len() {
            let width = self.mems[mi].width;
            for wi in 0..self.mems[mi].state_index.len() {
                let si = self.mems[mi].state_index[wi] as usize;
                let mut next = self.states[si].node;
                for &(pmem, guard, addr, v) in &pend_mems {
                    if pmem as usize != mi {
                        continue;
                    }
                    let aw = self.b.width(addr);
                    if aw < 64 && (wi as u64) >= (1u64 << aw) {
                        continue; // word index not representable: never hit
                    }
                    let widx = self.b.konst(wi as u64, aw);
                    let mut sel = self.b.binary(TOp::Eq, addr, widx);
                    if let Some(g) = guard {
                        sel = self.b.and1(g, sel);
                    }
                    let v = self.b.fit(v, width);
                    next = self.b.ite(sel, v, next);
                }
                self.states[si].next = next;
            }
        }

        let mut nets_map = BTreeMap::new();
        for i in 0..nets {
            let node = self.net_node[i].ok_or_else(|| {
                Self::unsupported(format!(
                    "net '{}' has no settled definition",
                    self.view.net_names[i]
                ))
            })?;
            nets_map.insert(self.view.net_names[i].clone(), node);
        }
        let mut outputs = Vec::new();
        for p in self.ports.iter().filter(|p| p.dir == Dir::Output) {
            if let Some(&n) = nets_map.get(&p.name) {
                outputs.push((p.name.clone(), n));
            }
        }

        Ok(TransitionSystem {
            nodes: self.b.nodes,
            inputs: self.inputs,
            states: self.states,
            bads: self.bads,
            nets: nets_map,
            outputs,
        })
    }

    /// Conjunction of the open region guards (None when unconditional).
    fn guard(&mut self, regions: &[Region]) -> Option<NodeId> {
        let mut acc: Option<NodeId> = None;
        for r in regions {
            let lit = if r.sense { r.cond } else { self.b.not(r.cond) };
            acc = Some(match acc {
                Some(a) => self.b.and1(a, lit),
                None => lit,
            });
        }
        acc
    }

    /// Node for a tape register: defined earlier in the walk, or a constant
    /// preloaded at simulator build time.
    fn reg(&mut self, r: u32) -> NodeId {
        if let Some(&n) = self.regs.get(&r) {
            return n;
        }
        let n = self.b.konst(self.view.regs[r as usize], 64);
        self.regs.insert(r, n);
        n
    }

    /// Execute one pure (register-defining) insn symbolically.
    fn pure(&mut self, insn: &sim::Insn) -> Result<(), BuildError> {
        use sim::Insn;
        match *insn {
            Insn::LoadNet { dst, net } => {
                let n = self.net_node[net as usize].ok_or_else(|| {
                    Self::unsupported(format!(
                        "load of net '{}' before its definition",
                        self.view.net_names[net as usize]
                    ))
                })?;
                self.regs.insert(dst, n);
            }
            Insn::MemRead { dst, mem, addr, m } => {
                let a = self.reg(addr);
                let n = self.mem_read(mem as usize, a, m);
                self.regs.insert(dst, n);
            }
            Insn::Slice { dst, src, lo, m } => {
                let s = self.reg(src);
                let wm = mask_width(m);
                let sw = self.b.width(s);
                let n = if lo >= sw {
                    self.b.konst(0, wm)
                } else {
                    let hi = (lo + wm - 1).min(sw - 1);
                    let part = self.b.slice(s, hi, lo);
                    self.b.fit(part, wm)
                };
                self.regs.insert(dst, n);
            }
            Insn::Not { dst, src, m } => {
                let s = self.reg(src);
                let s = self.b.fit(s, mask_width(m));
                let n = self.b.not(s);
                self.regs.insert(dst, n);
            }
            Insn::LNot { dst, src } => {
                let s = self.reg(src);
                let r = self.b.redor(s);
                let n = self.b.not(r);
                self.regs.insert(dst, n);
            }
            Insn::RedOr { dst, src } => {
                let s = self.reg(src);
                let n = self.b.redor(s);
                self.regs.insert(dst, n);
            }
            Insn::Binary {
                op,
                dst,
                a,
                b,
                aw,
                bw,
                m,
            } => {
                let an = self.reg(a);
                let bn = self.reg(b);
                let n = self.lower_binary(op, an, bn, aw, bw, m);
                self.regs.insert(dst, n);
            }
            Insn::Select {
                dst,
                cond,
                then,
                els,
                m,
            } => {
                let c = self.reg(cond);
                let c = self.b.redor(c);
                let wm = mask_width(m);
                let t = self.reg(then);
                let t = self.b.fit(t, wm);
                let e = self.reg(els);
                let e = self.b.fit(e, wm);
                let n = self.b.ite(c, t, e);
                self.regs.insert(dst, n);
            }
            Insn::ConcatFirst { dst, src, m } => {
                let s = self.reg(src);
                let n = self.b.fit(s, mask_width(m));
                self.regs.insert(dst, n);
            }
            Insn::ConcatPush { dst, src, shift, m } => {
                let acc = self.reg(dst);
                let part = self.reg(src);
                let part = self.b.fit(part, mask_width(m));
                let part = self.b.fit(part, shift.max(1));
                let aw = self.b.width(acc);
                let n = if shift == 0 {
                    acc
                } else if aw + shift > 64 {
                    return Err(Self::unsupported(format!(
                        "concat wider than 64 bits ({} + {shift})",
                        aw
                    )));
                } else {
                    self.b.push(Node::Concat {
                        hi: acc,
                        lo: part,
                        width: aw + shift,
                    })
                };
                self.regs.insert(dst, n);
            }
            Insn::MaskReg { dst, m } => {
                let v = self.reg(dst);
                let n = self.b.fit(v, mask_width(m));
                self.regs.insert(dst, n);
            }
            Insn::SignExtend {
                dst,
                src,
                from,
                fm,
                m,
            } => {
                let s = self.reg(src);
                let s = self.b.fit(s, mask_width(fm));
                let s = self.b.fit(s, from.max(1));
                let wm = mask_width(m);
                let n = if wm <= from {
                    self.b.fit(s, wm)
                } else {
                    self.b.ext(s, wm, true)
                };
                self.regs.insert(dst, n);
            }
            _ => {
                return Err(Self::unsupported(format!(
                    "non-pure insn in expression position: {insn:?}"
                )))
            }
        }
        Ok(())
    }

    /// Bounded mux chain over the memory's word states; out-of-range
    /// addresses read 0, exactly like the simulator.
    fn mem_read(&mut self, mem: usize, addr: NodeId, m: u64) -> NodeId {
        let width = self.mems[mem].width;
        let aw = self.b.width(addr);
        let depth = self.mems[mem].state_index.len() as u64;
        let reachable = if aw >= 63 {
            depth
        } else {
            depth.min(1u64 << aw)
        };
        let mut val = self.b.konst(0, width);
        for wi in (0..reachable).rev() {
            let widx = self.b.konst(wi, aw);
            let sel = self.b.binary(TOp::Eq, addr, widx);
            let word = self.states[self.mems[mem].state_index[wi as usize] as usize].node;
            val = self.b.ite(sel, word, val);
        }
        self.b.fit(val, mask_width(m))
    }

    /// Lower a tape binary op to width-normalized word nodes, preserving
    /// `eval_binary`'s exact semantics (`aw`/`bw` are the declared operand
    /// widths, `m` the result mask).
    fn lower_binary(
        &mut self,
        op: BinOp,
        a: NodeId,
        b: NodeId,
        aw: u32,
        bw: u32,
        m: u64,
    ) -> NodeId {
        let wm = mask_width(m);
        let aw = aw.max(1);
        let bw = bw.max(1);
        match op {
            // Modular arithmetic and bitwise ops only depend on the low
            // result-width bits of each operand.
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor => {
                let top = match op {
                    BinOp::Add => TOp::Add,
                    BinOp::Sub => TOp::Sub,
                    BinOp::Mul => TOp::Mul,
                    BinOp::And => TOp::And,
                    BinOp::Or => TOp::Or,
                    _ => TOp::Xor,
                };
                let x = self.b.fit(a, wm);
                let y = self.b.fit(b, wm);
                self.b.binary(top, x, y)
            }
            // Shifts: compute at a width covering both operands and the
            // result so amount saturation matches the 64-bit semantics.
            BinOp::Shl | BinOp::LShr | BinOp::AShr => {
                let w = wm.max(aw).max(bw);
                let x = self.b.fit(a, aw);
                let x = if op == BinOp::AShr {
                    self.b.ext(x, w, true)
                } else {
                    self.b.fit(x, w)
                };
                let y = self.b.fit(b, w);
                let top = match op {
                    BinOp::Shl => TOp::Sll,
                    BinOp::LShr => TOp::Srl,
                    _ => TOp::Sra,
                };
                let r = self.b.binary(top, x, y);
                self.b.fit(r, wm)
            }
            BinOp::Eq | BinOp::Ne | BinOp::ULt | BinOp::ULe => {
                let w = aw.max(bw);
                let x = self.b.fit(a, w);
                let y = self.b.fit(b, w);
                let top = match op {
                    BinOp::Eq => TOp::Eq,
                    BinOp::Ne => TOp::Ne,
                    BinOp::ULt => TOp::Ult,
                    _ => TOp::Ule,
                };
                self.b.binary(top, x, y)
            }
            BinOp::SLt | BinOp::SLe | BinOp::SGt | BinOp::SGe => {
                let w = aw.max(bw);
                let x = self.b.fit(a, aw);
                let x = self.b.ext(x, w, true);
                let y = self.b.fit(b, bw);
                let y = self.b.ext(y, w, true);
                // a > b == b < a; a >= b == b <= a.
                let (top, x, y) = match op {
                    BinOp::SLt => (TOp::Slt, x, y),
                    BinOp::SLe => (TOp::Sle, x, y),
                    BinOp::SGt => (TOp::Slt, y, x),
                    _ => (TOp::Sle, y, x),
                };
                self.b.binary(top, x, y)
            }
        }
    }
}

// ---------------------------------------------------------- BTOR2 export

/// Replace characters BTOR2 symbols cannot carry (whitespace) and keep the
/// output printable.
fn symbol(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_graphic() { c } else { '_' })
        .collect()
}

/// Print the transition system in textual BTOR2 format. Deterministic:
/// byte-identical output for identical systems.
pub fn to_btor2(ts: &TransitionSystem) -> String {
    let mut out = String::with_capacity(ts.nodes.len() * 24);
    let mut next_id: u32 = 1;
    let mut sorts: HashMap<u32, u32> = HashMap::new();
    let mut node_id: Vec<u32> = vec![0; ts.nodes.len()];
    let mut emit = |out: &mut String, s: String| -> u32 {
        let id = next_id;
        next_id += 1;
        out.push_str(&format!("{id} {s}\n"));
        id
    };

    for (i, n) in ts.nodes.iter().enumerate() {
        let w = ts.width(i as NodeId);
        let s = {
            if let Some(&s) = sorts.get(&w) {
                s
            } else {
                let id = emit(&mut out, format!("sort bitvec {w}"));
                sorts.insert(w, id);
                id
            }
        };
        let line = match n {
            Node::Const { value, .. } => format!("constd {s} {value}"),
            Node::Input { index, .. } => {
                format!("input {s} {}", symbol(&ts.inputs[*index as usize].name))
            }
            Node::State { index, .. } => {
                format!("state {s} {}", symbol(&ts.states[*index as usize].name))
            }
            Node::Not { a, .. } => format!("not {s} {}", node_id[*a as usize]),
            Node::RedOr { a } => format!("redor {s} {}", node_id[*a as usize]),
            Node::Binary { op, a, b, .. } => format!(
                "{} {s} {} {}",
                op.btor2(),
                node_id[*a as usize],
                node_id[*b as usize]
            ),
            Node::Ite { cond, t, e, .. } => format!(
                "ite {s} {} {} {}",
                node_id[*cond as usize], node_id[*t as usize], node_id[*e as usize]
            ),
            Node::Slice { a, hi, lo } => {
                format!("slice {s} {} {hi} {lo}", node_id[*a as usize])
            }
            Node::Ext { a, width, signed } => {
                let n = width - ts.width(*a);
                let kw = if *signed { "sext" } else { "uext" };
                format!("{kw} {s} {} {n}", node_id[*a as usize])
            }
            Node::Concat { hi, lo, .. } => format!(
                "concat {s} {} {}",
                node_id[*hi as usize], node_id[*lo as usize]
            ),
        };
        node_id[i] = emit(&mut out, line);
    }

    // init / next per state, then properties and outputs.
    for st in &ts.states {
        let w = st.width;
        let s = *sorts.get(&w).expect("state sort emitted with its node");
        let cid = {
            // Reuse an existing constant node when the DAG has one.
            let key = Node::Const {
                value: st.init & sim::mask(w),
                width: w,
            };
            match ts.nodes.iter().position(|n| *n == key) {
                Some(i) => node_id[i],
                None => emit(&mut out, format!("constd {s} {}", st.init & sim::mask(w))),
            }
        };
        let state_btor = node_id[st.node as usize];
        emit(&mut out, format!("init {s} {state_btor} {cid}"));
        emit(
            &mut out,
            format!("next {s} {state_btor} {}", node_id[st.next as usize]),
        );
    }
    for (name, n) in &ts.bads {
        emit(
            &mut out,
            format!("bad {} {}", node_id[*n as usize], symbol(name)),
        );
    }
    for (name, n) in &ts.outputs {
        emit(
            &mut out,
            format!("output {} {}", node_id[*n as usize], symbol(name)),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Expr, Stmt, VModule};

    /// An 8-bit wrap-around counter with an enable input and a rollover
    /// flag: one state, one input.
    fn counter_design() -> Design {
        let mut m = VModule::new("counter8");
        m.port("clk", Dir::Input, 1);
        m.port("en", Dir::Input, 1);
        m.port("count", Dir::Output, 8);
        m.port("wrapped", Dir::Output, 1);
        m.reg("cnt", 8);
        m.assign("count", Expr::r("cnt"));
        m.assign(
            "wrapped",
            Expr::bin(BinOp::Eq, Expr::r("cnt"), Expr::c(0xFF, 8)),
        );
        m.main_always().stmts.push(Stmt::If {
            cond: Expr::r("en"),
            then: vec![Stmt::NonBlocking {
                lhs: crate::ast::LValue::Net("cnt".into()),
                rhs: Expr::bin(BinOp::Add, Expr::r("cnt"), Expr::c(1, 8)),
            }],
            els: vec![],
        });
        let mut d = Design::new();
        d.add(m);
        d
    }

    #[test]
    fn counter_lowering_matches_simulator() {
        let d = counter_design();
        let ts = lower(&d, "counter8").expect("lower");
        let mut sim = Simulator::new(&d, "counter8").expect("sim");

        let en_index = ts
            .inputs
            .iter()
            .position(|i| i.name == "en")
            .expect("en input");
        let mut inputs = vec![0u64; ts.inputs.len()];
        let mut state = ts.initial_state();
        for cycle in 0..300u64 {
            let en = u64::from(cycle % 3 != 0);
            inputs[en_index] = en;
            sim.set("en", en);
            let vals = ts.eval_nodes(&state, &inputs);
            let count = ts.nets["count"];
            let wrapped = ts.nets["wrapped"];
            assert_eq!(vals[count as usize], sim.get("count"), "cycle {cycle}");
            assert_eq!(vals[wrapped as usize], sim.get("wrapped"), "cycle {cycle}");
            state = ts.next_state(&vals);
            sim.step().expect("step");
        }
    }

    #[test]
    fn btor2_export_is_deterministic_and_structured() {
        let d = counter_design();
        let a = to_btor2(&lower(&d, "counter8").expect("lower"));
        let b = to_btor2(&lower(&d, "counter8").expect("lower"));
        assert_eq!(a, b, "export must be byte-identical across runs");
        assert!(a.contains("sort bitvec 8"), "{a}");
        assert!(a.contains(" state "), "{a}");
        assert!(a.contains(" next "), "{a}");
        assert!(a.contains(" input "), "{a}");
        // Every line is "<id> <op> ...." with strictly increasing ids.
        let mut last = 0u32;
        for line in a.lines() {
            let id: u32 = line
                .split_whitespace()
                .next()
                .and_then(|t| t.parse().ok())
                .unwrap_or_else(|| panic!("bad line: {line}"));
            assert!(id > last, "ids must increase: {line}");
            last = id;
        }
    }

    /// Memory writes/reads and if/else regions survive the round trip
    /// through tape reconstruction.
    #[test]
    fn memory_design_matches_simulator() {
        let mut m = VModule::new("memdut");
        m.port("clk", Dir::Input, 1);
        m.port("we", Dir::Input, 1);
        m.port("waddr", Dir::Input, 3);
        m.port("raddr", Dir::Input, 3);
        m.port("wdata", Dir::Input, 16);
        m.port("rdata", Dir::Output, 16);
        m.memory("scratch", 16, 6, None);
        m.reg("acc", 16);
        let read = Expr::MemRead {
            mem: "scratch".into(),
            addr: Box::new(Expr::r("raddr")),
        };
        m.assign("rdata", read.clone());
        m.main_always().stmts.push(Stmt::If {
            cond: Expr::r("we"),
            then: vec![Stmt::NonBlocking {
                lhs: crate::ast::LValue::MemElem {
                    mem: "scratch".into(),
                    addr: Expr::r("waddr"),
                },
                rhs: Expr::r("wdata"),
            }],
            els: vec![Stmt::NonBlocking {
                lhs: crate::ast::LValue::Net("acc".into()),
                rhs: Expr::bin(BinOp::Add, Expr::r("acc"), read),
            }],
        });
        let mut d = Design::new();
        d.add(m);

        let ts = lower(&d, "memdut").expect("lower");
        let mut sim = Simulator::new(&d, "memdut").expect("sim");
        let idx: HashMap<&str, usize> = ts
            .inputs
            .iter()
            .enumerate()
            .map(|(i, v)| (v.name.as_str(), i))
            .collect();
        let mut inputs = vec![0u64; ts.inputs.len()];
        let mut state = ts.initial_state();
        // A little deterministic driver that writes, reads back (including
        // the out-of-range addresses 6 and 7) and accumulates.
        for cycle in 0..200u64 {
            let stim = [
                ("we", cycle % 2),
                ("waddr", cycle % 8),
                ("raddr", (cycle / 2) % 8),
                ("wdata", (cycle * 37) % 65536),
            ];
            for (name, v) in stim {
                inputs[idx[name]] = v;
                sim.set(name, v);
            }
            let vals = ts.eval_nodes(&state, &inputs);
            assert_eq!(
                vals[ts.nets["rdata"] as usize],
                sim.get("rdata"),
                "cycle {cycle}"
            );
            state = ts.next_state(&vals);
            sim.step().expect("step");
        }
        // Final state agrees word for word.
        for (si, st) in ts.states.iter().enumerate() {
            if let Some(word) = st.name.strip_prefix("scratch[") {
                let wi: u64 = word.trim_end_matches(']').parse().unwrap();
                assert_eq!(state[si], sim.read_mem("scratch", wi), "{}", st.name);
            }
        }
    }
}
