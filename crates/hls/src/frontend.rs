//! Frontend passes over the kernel IR: full loop unrolling and constant
//! folding (the "LLVM-style" cleanup a commercial HLS frontend performs
//! before scheduling).

use crate::ast::{KExpr, KOp, KStmt, Kernel};
use std::collections::HashMap;

/// Run the frontend: expand `unroll` loops and fold constants.
pub fn run_frontend(kernel: &Kernel) -> Kernel {
    let mut out = kernel.clone();
    let env = HashMap::new();
    out.body = expand_stmts(&kernel.body, &env);
    out
}

fn expand_stmts(stmts: &[KStmt], env: &HashMap<String, i64>) -> Vec<KStmt> {
    let mut out = Vec::new();
    for s in stmts {
        match s {
            KStmt::Assign { var, expr } => {
                out.push(KStmt::Assign {
                    var: var.clone(),
                    expr: subst_fold(expr, env),
                });
            }
            KStmt::Store {
                array,
                indices,
                value,
            } => out.push(KStmt::Store {
                array: array.clone(),
                indices: indices.iter().map(|e| subst_fold(e, env)).collect(),
                value: subst_fold(value, env),
            }),
            KStmt::For {
                var,
                lb,
                ub,
                step,
                pragmas,
                body,
            } => {
                if pragmas.unroll {
                    let mut i = *lb;
                    while i < *ub {
                        let mut env2 = env.clone();
                        env2.insert(var.clone(), i);
                        out.extend(expand_stmts(body, &env2));
                        i += step;
                    }
                } else {
                    out.push(KStmt::For {
                        var: var.clone(),
                        lb: *lb,
                        ub: *ub,
                        step: *step,
                        pragmas: *pragmas,
                        body: expand_stmts(body, env),
                    });
                }
            }
            KStmt::If { cond, then, els } => out.push(KStmt::If {
                cond: subst_fold(cond, env),
                then: expand_stmts(then, env),
                els: expand_stmts(els, env),
            }),
        }
    }
    out
}

/// Substitute unrolled loop variables and fold constant subexpressions.
pub fn subst_fold(e: &KExpr, env: &HashMap<String, i64>) -> KExpr {
    match e {
        KExpr::Const(..) => e.clone(),
        KExpr::Var(name) => match env.get(name) {
            Some(&v) => KExpr::Const(v, 32),
            None => e.clone(),
        },
        KExpr::ArrayRead { array, indices } => KExpr::ArrayRead {
            array: array.clone(),
            indices: indices.iter().map(|x| subst_fold(x, env)).collect(),
        },
        KExpr::Bin { op, lhs, rhs } => {
            let l = subst_fold(lhs, env);
            let r = subst_fold(rhs, env);
            if let (KExpr::Const(a, wa), KExpr::Const(b, wb)) = (&l, &r) {
                if let Some(v) = fold(*op, *a, *b) {
                    return KExpr::Const(v, (*wa).max(*wb));
                }
            }
            KExpr::Bin {
                op: *op,
                lhs: Box::new(l),
                rhs: Box::new(r),
            }
        }
        KExpr::Select { cond, then, els } => {
            let c = subst_fold(cond, env);
            if let KExpr::Const(v, _) = c {
                return if v != 0 {
                    subst_fold(then, env)
                } else {
                    subst_fold(els, env)
                };
            }
            KExpr::Select {
                cond: Box::new(c),
                then: Box::new(subst_fold(then, env)),
                els: Box::new(subst_fold(els, env)),
            }
        }
    }
}

fn fold(op: KOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        KOp::Add => a.checked_add(b)?,
        KOp::Sub => a.checked_sub(b)?,
        KOp::Mul => a.checked_mul(b)?,
        KOp::And => a & b,
        KOp::Or => a | b,
        KOp::Xor => a ^ b,
        KOp::Shl => a.checked_shl(u32::try_from(b).ok()?)?,
        KOp::Shr => a >> b.clamp(0, 63),
        KOp::Eq => i64::from(a == b),
        KOp::Ne => i64::from(a != b),
        KOp::Lt => i64::from(a < b),
        KOp::Le => i64::from(a <= b),
        KOp::Gt => i64::from(a > b),
        KOp::Ge => i64::from(a >= b),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::LoopPragmas;

    #[test]
    fn unrolls_and_folds() {
        let mut k = Kernel::new("u");
        k.out_array("o", 32, &[4]);
        k.body = vec![KStmt::For {
            var: "i".into(),
            lb: 0,
            ub: 4,
            step: 1,
            pragmas: LoopPragmas {
                pipeline_ii: None,
                unroll: true,
            },
            body: vec![KStmt::Store {
                array: "o".into(),
                indices: vec![KExpr::var("i")],
                value: KExpr::mul(KExpr::var("i"), KExpr::c(3, 32)),
            }],
        }];
        let out = run_frontend(&k);
        assert_eq!(out.body.len(), 4, "four replicas");
        match &out.body[2] {
            KStmt::Store { indices, value, .. } => {
                assert!(matches!(indices[0], KExpr::Const(2, _)));
                assert!(matches!(value, KExpr::Const(6, _)), "2*3 folded");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nested_unroll() {
        let mut k = Kernel::new("u2");
        k.out_array("o", 32, &[2, 2]);
        k.body = vec![KStmt::For {
            var: "i".into(),
            lb: 0,
            ub: 2,
            step: 1,
            pragmas: LoopPragmas {
                pipeline_ii: None,
                unroll: true,
            },
            body: vec![KStmt::For {
                var: "j".into(),
                lb: 0,
                ub: 2,
                step: 1,
                pragmas: LoopPragmas {
                    pipeline_ii: None,
                    unroll: true,
                },
                body: vec![KStmt::Store {
                    array: "o".into(),
                    indices: vec![KExpr::var("i"), KExpr::var("j")],
                    value: KExpr::c(1, 32),
                }],
            }],
        }];
        let out = run_frontend(&k);
        assert_eq!(out.body.len(), 4);
    }
}
