//! # `hls` — a baseline high-level synthesis compiler (Vivado HLS stand-in)
//!
//! The paper evaluates HIR against Xilinx Vivado HLS 2019.1, which is
//! proprietary and unavailable here. This crate substitutes a from-scratch
//! HLS compiler that performs the same *kind* of work:
//!
//! 1. a C-like kernel IR with `pipeline`/`unroll`/`array_partition`
//!    pragmas ([`ast`]);
//! 2. frontend cleanup: full unrolling and constant folding ([`frontend`]);
//! 3. **automatic scheduling**: data-flow graph construction, operator
//!    chaining under a target clock period, and iterative modulo
//!    scheduling with memory-port reservation tables and loop-carried
//!    dependence checks ([`schedule`]) — the searches that dominate HLS
//!    compile time (paper Table 6);
//! 4. emission of the found schedule as explicitly-scheduled HIR
//!    ([`emit`]), then RTL through `hir-codegen` — realizing the paper's
//!    §9.2 vision of HLS compilers using HIR as their backend IR.
//!
//! Characteristic HLS resource overheads appear naturally in the output:
//! 32-bit default loop counters, per-stage registering of every value, and
//! conservative chaining — which is what the paper's Tables 4 and 5 measure
//! against hand-scheduled HIR.

pub mod ast;
pub mod emit;
pub mod frontend;
pub mod schedule;

pub use ast::{ArrayDecl, ArrayDir, KExpr, KOp, KStmt, Kernel, LoopPragmas, ScalarDecl};
pub use emit::{array_memkind, emit_kernel, CompileStats};
pub use frontend::run_frontend;
pub use hir_codegen::testbench::{HarnessArg, HarnessReport};
pub use schedule::{SchedOptions, ScheduleError};

use std::time::{Duration, Instant};

/// Run a generated design under the RTL testbench harness, optionally
/// dumping a VCD waveform of the entire run (this is the crate's doorway to
/// [`verilog::Simulator::start_vcd`] for examples and evaluation scripts).
///
/// `func` is the HIR function name (not the Verilog module name).
///
/// # Errors
/// Fails when the function is missing, the design does not elaborate, the
/// VCD file cannot be created, or the run does not quiesce in `max_cycles`.
pub fn simulate_with_vcd(
    module: &ir::Module,
    design: &verilog::Design,
    func: &str,
    args: &[HarnessArg],
    max_cycles: u64,
    vcd: Option<&std::path::Path>,
) -> Result<HarnessReport, ScheduleError> {
    let table = ir::SymbolTable::build(module);
    let op = table
        .lookup(func)
        .ok_or_else(|| ScheduleError(format!("no function @{func} in module")))?;
    let f = hir::ops::FuncOp::wrap(module, op)
        .ok_or_else(|| ScheduleError(format!("@{func} is not a hir.func")))?;
    let mut h = hir_codegen::testbench::Harness::new(design, module, f, args)
        .map_err(|e| ScheduleError(e.to_string()))?;
    if let Some(path) = vcd {
        h.dump_vcd(path).map_err(|e| ScheduleError(e.to_string()))?;
    }
    h.run(max_cycles).map_err(|e| ScheduleError(e.to_string()))
}

/// Run N independent stimulus sets through one batched (bit-parallel) RTL
/// simulation — one lane per stimulus set, all lanes sharing the clock —
/// and return one report per lane. Lane 0 is bit-identical to a scalar
/// [`simulate_with_vcd`] run with the same arguments.
///
/// # Errors
/// Same failure modes as [`simulate_with_vcd`], plus lane-shape mismatches;
/// an RTL assertion failure in any lane aborts the whole batch.
pub fn simulate_batched(
    module: &ir::Module,
    design: &verilog::Design,
    func: &str,
    lane_args: &[Vec<HarnessArg>],
    max_cycles: u64,
) -> Result<Vec<HarnessReport>, ScheduleError> {
    let table = ir::SymbolTable::build(module);
    let op = table
        .lookup(func)
        .ok_or_else(|| ScheduleError(format!("no function @{func} in module")))?;
    let f = hir::ops::FuncOp::wrap(module, op)
        .ok_or_else(|| ScheduleError(format!("@{func} is not a hir.func")))?;
    let mut h = hir_codegen::testbench::Harness::new_batched(design, module, f, lane_args)
        .map_err(|e| ScheduleError(e.to_string()))?;
    h.run_batched(max_cycles)
        .map_err(|e| ScheduleError(e.to_string()))
}

/// Everything a telemetry-instrumented RTL run produces.
#[derive(Debug)]
pub struct TelemetryRun {
    /// Functional results of the run (same as [`simulate_with_vcd`]).
    pub report: HarnessReport,
    /// Runtime counters: toggles, cone quiescence, per-unit utilization.
    pub telemetry: verilog::TelemetryReport,
    /// Chrome-trace JSON of per-cone busy/quiescent periods, when requested.
    pub trace: Option<String>,
    /// Scheduler statistics (dirty-set occupancy, wake walks, commit
    /// compares), when requested.
    pub sched: Option<verilog::SchedStatsReport>,
}

/// Like [`simulate_with_vcd`], but with the simulator's telemetry plane
/// enabled: the returned [`verilog::TelemetryReport`] carries toggle and
/// activity counters, per-cone quiescence, and — joined through the
/// function's static resource tally — dynamic utilization per scheduled
/// unit. With `record_trace`, a Chrome-trace JSON of busy/quiescent periods
/// per cone is also produced. With `sched_stats`, the simulator's
/// scheduler-statistics plane is enabled too and its report returned.
///
/// # Errors
/// Same failure modes as [`simulate_with_vcd`].
pub fn simulate_with_telemetry(
    module: &ir::Module,
    design: &verilog::Design,
    func: &str,
    args: &[HarnessArg],
    max_cycles: u64,
    record_trace: bool,
    sched_stats: bool,
) -> Result<TelemetryRun, ScheduleError> {
    let table = ir::SymbolTable::build(module);
    let op = table
        .lookup(func)
        .ok_or_else(|| ScheduleError(format!("no function @{func} in module")))?;
    let f = hir::ops::FuncOp::wrap(module, op)
        .ok_or_else(|| ScheduleError(format!("@{func} is not a hir.func")))?;
    let resources = hir_codegen::generate_func_with_resources(
        module,
        f,
        &hir_codegen::CodegenOptions::default(),
    )
    .map(|(_, r)| r)
    .map_err(|e| ScheduleError(e.to_string()))?;
    let mut h = hir_codegen::testbench::Harness::new(design, module, f, args)
        .map_err(|e| ScheduleError(e.to_string()))?;
    h.enable_telemetry(record_trace);
    if sched_stats {
        h.enable_sched_stats();
    }
    let report = h
        .run(max_cycles)
        .map_err(|e| ScheduleError(e.to_string()))?;
    let telemetry = h
        .telemetry_report(Some(&resources))
        .expect("telemetry was enabled");
    let trace = h.telemetry_trace();
    let sched = h.sched_stats_report();
    Ok(TelemetryRun {
        report,
        telemetry,
        trace,
        sched,
    })
}

/// A compiled kernel: the scheduled HIR, the generated RTL, and statistics.
#[derive(Debug)]
pub struct Compiled {
    /// The kernel lowered to explicitly-scheduled HIR.
    pub hir_module: ir::Module,
    /// The generated Verilog design.
    pub design: verilog::Design,
    /// Name of the top Verilog module.
    pub top: String,
    /// Scheduling/binding statistics.
    pub stats: CompileStats,
    /// Wall-clock compile time (frontend + scheduling + RTL).
    pub elapsed: Duration,
}

/// Compile a kernel end to end.
///
/// # Errors
/// Fails on unsupported constructs, infeasible schedules, or codegen errors.
pub fn compile(kernel: &Kernel, opts: &SchedOptions) -> Result<Compiled, ScheduleError> {
    let start = Instant::now();
    let expanded = frontend::run_frontend(kernel);
    let (hir_module, stats) = emit::emit_kernel(&expanded, opts)?;
    // The emitted schedule must be sound by construction; verifying it here
    // is the equivalent of an HLS tool validating its own scheduler.
    let mut diags = ir::DiagnosticEngine::new();
    hir_verify::verify_schedule(&hir_module, &mut diags).map_err(|_| {
        ScheduleError(format!(
            "internal: emitted schedule is invalid:\n{}",
            diags.render()
        ))
    })?;
    let design = hir_codegen::generate_design(&hir_module, &hir_codegen::CodegenOptions::default())
        .map_err(|e| ScheduleError(format!("RTL generation failed: {e}")))?;
    let top = hir_codegen::module_name(&format!("hls_{}", kernel.name));
    Ok(Compiled {
        hir_module,
        design,
        top,
        stats,
        elapsed: start.elapsed(),
    })
}

impl Compiled {
    /// RTL-simulate this compiled kernel, optionally dumping a VCD waveform.
    ///
    /// # Errors
    /// Same failure modes as [`simulate_with_vcd`].
    pub fn simulate_with_vcd(
        &self,
        args: &[HarnessArg],
        max_cycles: u64,
        vcd: Option<&std::path::Path>,
    ) -> Result<HarnessReport, ScheduleError> {
        let func = self.top.strip_prefix("hir_").unwrap_or(&self.top);
        simulate_with_vcd(&self.hir_module, &self.design, func, args, max_cycles, vcd)
    }

    /// RTL-simulate N independent stimulus sets in one batched pass (one
    /// bit-parallel lane per set).
    ///
    /// # Errors
    /// Same failure modes as [`simulate_batched`].
    pub fn simulate_batched(
        &self,
        lane_args: &[Vec<HarnessArg>],
        max_cycles: u64,
    ) -> Result<Vec<HarnessReport>, ScheduleError> {
        let func = self.top.strip_prefix("hir_").unwrap_or(&self.top);
        simulate_batched(&self.hir_module, &self.design, func, lane_args, max_cycles)
    }

    /// RTL-simulate this compiled kernel with runtime telemetry enabled.
    ///
    /// # Errors
    /// Same failure modes as [`simulate_with_telemetry`].
    pub fn simulate_with_telemetry(
        &self,
        args: &[HarnessArg],
        max_cycles: u64,
        record_trace: bool,
        sched_stats: bool,
    ) -> Result<TelemetryRun, ScheduleError> {
        let func = self.top.strip_prefix("hir_").unwrap_or(&self.top);
        simulate_with_telemetry(
            &self.hir_module,
            &self.design,
            func,
            args,
            max_cycles,
            record_trace,
            sched_stats,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hir::interp::{ArgValue, Interpreter};

    /// C-style vector add with a pipeline pragma.
    fn vadd_kernel(n: u64) -> Kernel {
        let mut k = Kernel::new("vadd");
        k.in_array("a", 32, &[n])
            .in_array("b", 32, &[n])
            .out_array("c", 32, &[n]);
        k.body = vec![KStmt::For {
            var: "i".into(),
            lb: 0,
            ub: n as i64,
            step: 1,
            pragmas: LoopPragmas {
                pipeline_ii: Some(1),
                unroll: false,
            },
            body: vec![KStmt::Store {
                array: "c".into(),
                indices: vec![KExpr::var("i")],
                value: KExpr::add(
                    KExpr::read("a", vec![KExpr::var("i")]),
                    KExpr::read("b", vec![KExpr::var("i")]),
                ),
            }],
        }];
        k
    }

    #[test]
    fn vadd_compiles_and_is_functionally_correct() {
        let k = vadd_kernel(16);
        let c = compile(&k, &SchedOptions::default()).expect("compile");
        assert_eq!(c.stats.loops, 1);
        assert_eq!(c.stats.achieved_iis, vec![1]);

        // Run the emitted HIR through the interpreter.
        let interp = Interpreter::new(&c.hir_module);
        let a: Vec<i128> = (0..16).collect();
        let b: Vec<i128> = (0..16).map(|x| 100 - x).collect();
        let r = interp
            .run(
                "hls_vadd",
                &[
                    ArgValue::tensor_from(&a),
                    ArgValue::tensor_from(&b),
                    ArgValue::uninit_tensor(16),
                ],
            )
            .expect("simulate");
        assert!(r.tensors[&2].iter().all(|&v| v == Some(100)));
    }

    #[test]
    fn nested_loops_compile() {
        // 2-d copy with pipelined inner loop.
        let mut k = Kernel::new("copy2d");
        k.in_array("a", 32, &[4, 4]).out_array("c", 32, &[4, 4]);
        k.body = vec![KStmt::For {
            var: "i".into(),
            lb: 0,
            ub: 4,
            step: 1,
            pragmas: LoopPragmas::default(),
            body: vec![KStmt::For {
                var: "j".into(),
                lb: 0,
                ub: 4,
                step: 1,
                pragmas: LoopPragmas {
                    pipeline_ii: Some(1),
                    unroll: false,
                },
                body: vec![KStmt::Store {
                    array: "c".into(),
                    indices: vec![KExpr::var("i"), KExpr::var("j")],
                    value: KExpr::read("a", vec![KExpr::var("i"), KExpr::var("j")]),
                }],
            }],
        }];
        let c = compile(&k, &SchedOptions::default()).expect("compile");
        let interp = Interpreter::new(&c.hir_module);
        let data: Vec<i128> = (0..16).collect();
        let r = interp
            .run(
                "hls_copy2d",
                &[ArgValue::tensor_from(&data), ArgValue::uninit_tensor(16)],
            )
            .expect("simulate");
        let out: Vec<i128> = r.tensors[&1].iter().map(|v| v.unwrap()).collect();
        assert_eq!(out, data);
    }

    #[test]
    fn histogram_style_rmw_gets_conservative_ii() {
        let mut k = Kernel::new("hist");
        k.in_array("x", 8, &[32]);
        k.out_array("histo", 32, &[16]);
        k.local_array("acc", 32, &[16], &[]);
        k.body = vec![
            // Zero the accumulator.
            KStmt::For {
                var: "z".into(),
                lb: 0,
                ub: 16,
                step: 1,
                pragmas: LoopPragmas {
                    pipeline_ii: Some(1),
                    unroll: false,
                },
                body: vec![KStmt::Store {
                    array: "acc".into(),
                    indices: vec![KExpr::var("z")],
                    value: KExpr::c(0, 32),
                }],
            },
            // acc[x[i]]++.
            KStmt::For {
                var: "i".into(),
                lb: 0,
                ub: 32,
                step: 1,
                pragmas: LoopPragmas {
                    pipeline_ii: Some(1),
                    unroll: false,
                },
                body: vec![KStmt::Store {
                    array: "acc".into(),
                    indices: vec![KExpr::read("x", vec![KExpr::var("i")])],
                    value: KExpr::add(
                        KExpr::read("acc", vec![KExpr::read("x", vec![KExpr::var("i")])]),
                        KExpr::c(1, 32),
                    ),
                }],
            },
            // Copy out.
            KStmt::For {
                var: "o".into(),
                lb: 0,
                ub: 16,
                step: 1,
                pragmas: LoopPragmas {
                    pipeline_ii: Some(1),
                    unroll: false,
                },
                body: vec![KStmt::Store {
                    array: "histo".into(),
                    indices: vec![KExpr::var("o")],
                    value: KExpr::read("acc", vec![KExpr::var("o")]),
                }],
            },
        ];
        let c = compile(&k, &SchedOptions::default()).expect("compile");
        // The RMW loop cannot reach II=1 with a 1-cycle-latency RAM.
        assert!(
            c.stats.achieved_iis.iter().any(|&ii| ii >= 2),
            "{:?}",
            c.stats.achieved_iis
        );

        // Functional check: all-same input.
        let interp = Interpreter::new(&c.hir_module);
        let x: Vec<i128> = (0..32).map(|i| i % 4).collect();
        let r = interp
            .run(
                "hls_hist",
                &[ArgValue::tensor_from(&x), ArgValue::uninit_tensor(16)],
            )
            .expect("simulate");
        let out: Vec<i128> = r.tensors[&1].iter().map(|v| v.unwrap()).collect();
        assert_eq!(&out[..4], &[8, 8, 8, 8]);
        assert!(out[4..].iter().all(|&v| v == 0));
    }

    #[test]
    fn hls_uses_wide_counters_by_default() {
        // The Table 4 effect: the default counter width is 32 bits, so the
        // HLS design carries more FFs than a width-optimized one.
        let k = vadd_kernel(16);
        let c_default = compile(&k, &SchedOptions::default()).expect("compile");
        let mut k_manual = vadd_kernel(16);
        k_manual.loop_var_width = 5; // the paper's "manual opt"
        let c_manual = compile(&k_manual, &SchedOptions::default()).expect("compile");

        let model = synth::CostModel::default();
        let r_default = synth::estimate_design(&c_default.design, &c_default.top, &model);
        let r_manual = synth::estimate_design(&c_manual.design, &c_manual.top, &model);
        assert!(
            r_default.ff > r_manual.ff,
            "default {} FF should exceed manual {} FF",
            r_default.ff,
            r_manual.ff
        );
    }

    #[test]
    fn rtl_of_compiled_kernel_simulates() {
        use hir::ops::FuncOp;
        use hir_codegen::testbench::{Harness, HarnessArg};
        let k = vadd_kernel(8);
        let c = compile(&k, &SchedOptions::default()).expect("compile");
        let func = FuncOp::wrap(&c.hir_module, c.hir_module.top_ops()[0]).unwrap();
        let a: Vec<i128> = (0..8).collect();
        let b: Vec<i128> = (0..8).map(|x| 50 - x).collect();
        let mut h = Harness::new(
            &c.design,
            &c.hir_module,
            func,
            &[
                HarnessArg::mem_from(&a),
                HarnessArg::mem_from(&b),
                HarnessArg::zero_mem(8),
            ],
        )
        .expect("harness");
        let r = h.run(10_000).expect("RTL sim");
        assert!(r.mems[&2].iter().all(|&v| v == 50), "{:?}", r.mems[&2]);
    }

    #[test]
    fn batched_lanes_match_scalar_runs() {
        let k = vadd_kernel(8);
        let c = compile(&k, &SchedOptions::default()).expect("compile");
        // Three stimulus sets, one lane each.
        let lane_args: Vec<Vec<HarnessArg>> = (0..3)
            .map(|lane| {
                let a: Vec<i128> = (0..8).map(|x| x + lane as i128 * 10).collect();
                let b: Vec<i128> = (0..8).map(|x| 50 - x * (lane as i128 + 1)).collect();
                vec![
                    HarnessArg::mem_from(&a),
                    HarnessArg::mem_from(&b),
                    HarnessArg::zero_mem(8),
                ]
            })
            .collect();
        let batched = c.simulate_batched(&lane_args, 10_000).expect("batched sim");
        assert_eq!(batched.len(), 3);
        for (lane, args) in lane_args.iter().enumerate() {
            let scalar = c.simulate_with_vcd(args, 10_000, None).expect("scalar sim");
            assert_eq!(batched[lane].cycles, scalar.cycles, "lane {lane} latency");
            assert_eq!(batched[lane].results, scalar.results, "lane {lane}");
            assert_eq!(batched[lane].mems, scalar.mems, "lane {lane} memories");
        }
    }

    #[test]
    fn telemetry_run_reports_unit_utilization() {
        let k = vadd_kernel(8);
        let c = compile(&k, &SchedOptions::default()).expect("compile");
        let a: Vec<i128> = (0..8).collect();
        let b: Vec<i128> = (0..8).map(|x| 50 - x).collect();
        let run = c
            .simulate_with_telemetry(
                &[
                    HarnessArg::mem_from(&a),
                    HarnessArg::mem_from(&b),
                    HarnessArg::zero_mem(8),
                ],
                10_000,
                true,
                true,
            )
            .expect("telemetry sim");
        // Telemetry must not disturb the functional result.
        assert!(run.report.mems[&2].iter().all(|&v| v == 50));
        assert!(run.telemetry.cycles > 0);
        let sched = run.sched.expect("sched stats were requested");
        assert!(sched.cycles > 0);
        obs::json::parse(&sched.to_json()).expect("strict sched-stats JSON");
        assert!(
            run.telemetry
                .units
                .iter()
                .any(|u| u.unit.starts_with("arith.")),
            "unit utilization should include the adder: {:?}",
            run.telemetry.units
        );
        obs::json::parse(&run.telemetry.to_json()).expect("strict telemetry JSON");
        let trace = run.trace.expect("trace was requested");
        obs::json::parse(&trace).expect("strict trace JSON");
    }
}
