//! The HLS scheduler: data-flow graph construction, operator chaining under
//! a clock period, and iterative modulo scheduling with port reservation
//! tables — the compile-time-dominant analyses a commercial HLS tool runs
//! (and the work the paper's Table 6 measures against HIR's
//! schedule-is-given code generation).

use crate::ast::{ArrayDecl, KExpr, KOp, KStmt, Kernel};
use std::collections::HashMap;
use std::fmt;

/// Scheduling failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduleError(pub String);

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "schedule error: {}", self.0)
    }
}
impl std::error::Error for ScheduleError {}

/// Combinational delay model (ns) for chaining decisions.
pub fn op_delay_ns(op: KOp) -> f64 {
    match op {
        KOp::Add | KOp::Sub => 1.8,
        KOp::Mul => 4.2,
        KOp::And | KOp::Or | KOp::Xor => 0.7,
        KOp::Shl | KOp::Shr => 0.6,
        KOp::Eq | KOp::Ne | KOp::Lt | KOp::Le | KOp::Gt | KOp::Ge => 1.2,
    }
}

/// Node id within one body DFG.
pub type NodeId = usize;

/// A DFG node of a straight-line body.
#[derive(Clone, Debug)]
pub enum DfgNode {
    /// Integer constant.
    Const(i64, u32),
    /// Loop induction variable of an enclosing loop.
    LoopVar(String),
    /// Scalar kernel argument.
    ScalarArg(String),
    /// Array element load.
    Load {
        array: String,
        bank: Option<u64>,
        indices: Vec<NodeId>,
    },
    /// Binary op.
    Bin { op: KOp, lhs: NodeId, rhs: NodeId },
    /// 2:1 select.
    Select {
        cond: NodeId,
        then: NodeId,
        els: NodeId,
    },
    /// Array element store (side effect; no value).
    Store {
        array: String,
        bank: Option<u64>,
        indices: Vec<NodeId>,
        value: NodeId,
    },
}

/// A scheduled node: issue stage and (for values) availability stage.
#[derive(Clone, Copy, Debug, Default)]
pub struct Slot {
    /// Stage at which the op issues (memory ops occupy their port here).
    pub issue: u32,
    /// Stage at which the value is available.
    pub avail: u32,
    /// Chaining position within the avail stage (ns consumed).
    pub ready_ns: f64,
}

/// One straight-line body with its schedule.
#[derive(Clone, Debug)]
pub struct ScheduledDfg {
    pub nodes: Vec<DfgNode>,
    pub slots: Vec<Slot>,
    /// Total schedule length (stages).
    pub length: u32,
    /// Achieved initiation interval (None = not pipelined).
    pub ii: Option<u32>,
    /// Number of schedule attempts before success (tool-effort metric).
    pub attempts: u32,
    /// Total schedule slack found by the SDC legalization solve.
    pub sdc_slack: i64,
}

/// Properties of the memory an array maps to (set by the compiler driver).
#[derive(Clone, Copy, Debug)]
pub struct ArrayBinding {
    /// Read latency in cycles (0 = registers, 1 = RAM).
    pub read_latency: u32,
    /// Read-port and write-port count per bank.
    pub read_ports: u32,
    pub write_ports: u32,
}

/// Build the DFG of a straight-line statement list.
///
/// # Errors
/// Fails on loop-carried scalar locals and nested control flow (the driver
/// handles loops; `if` is not supported by this baseline).
pub fn build_dfg(
    kernel: &Kernel,
    stmts: &[KStmt],
    loop_vars: &[String],
) -> Result<Vec<DfgNode>, ScheduleError> {
    let mut cx = DfgCx {
        nodes: Vec::new(),
        locals: HashMap::new(),
        cse: HashMap::new(),
        store_epoch: HashMap::new(),
    };
    for s in stmts {
        match s {
            KStmt::Assign { var, expr } => {
                let id = lower_expr(kernel, expr, loop_vars, &mut cx)?;
                cx.locals.insert(var.clone(), id);
            }
            KStmt::Store {
                array,
                indices,
                value,
            } => {
                let idx: Vec<NodeId> = indices
                    .iter()
                    .map(|e| lower_expr(kernel, e, loop_vars, &mut cx))
                    .collect::<Result<_, _>>()?;
                let v = lower_expr(kernel, value, loop_vars, &mut cx)?;
                let decl = kernel
                    .array(array)
                    .ok_or_else(|| ScheduleError(format!("unknown array '{array}'")))?;
                let bank = static_bank(decl, indices, &cx.nodes, &idx);
                cx.nodes.push(DfgNode::Store {
                    array: array.clone(),
                    bank,
                    indices: idx,
                    value: v,
                });
                // Loads of this array can no longer be reused.
                *cx.store_epoch.entry(array.clone()).or_default() += 1;
            }
            KStmt::For { .. } => {
                return Err(ScheduleError(
                    "nested loop inside a straight-line block (driver bug)".into(),
                ))
            }
            KStmt::If { .. } => {
                return Err(ScheduleError(
                    "the HLS baseline does not support data-dependent control flow".into(),
                ))
            }
        }
    }
    Ok(cx.nodes)
}

/// DFG construction context with hash-consing (the value numbering an
/// LLVM-based HLS frontend performs — without it, the unrolled GEMM would
/// issue 16 identical `a_buf[i][k]` loads instead of one broadcast).
struct DfgCx {
    nodes: Vec<DfgNode>,
    locals: HashMap<String, NodeId>,
    cse: HashMap<String, NodeId>,
    /// Bumped at every store; loads key on it so a load never floats across
    /// a store to the same array.
    store_epoch: HashMap<String, u64>,
}

impl DfgCx {
    fn intern(&mut self, key: String, node: DfgNode) -> NodeId {
        if let Some(&id) = self.cse.get(&key) {
            return id;
        }
        self.nodes.push(node);
        let id = self.nodes.len() - 1;
        self.cse.insert(key, id);
        id
    }
}

fn lower_expr(
    kernel: &Kernel,
    e: &KExpr,
    loop_vars: &[String],
    cx: &mut DfgCx,
) -> Result<NodeId, ScheduleError> {
    let id = match e {
        KExpr::Const(v, w) => cx.intern(format!("c{v}:{w}"), DfgNode::Const(*v, *w)),
        KExpr::Var(name) => {
            if let Some(&id) = cx.locals.get(name) {
                return Ok(id);
            }
            if loop_vars.contains(name) {
                cx.intern(format!("lv{name}"), DfgNode::LoopVar(name.clone()))
            } else if kernel.scalars.iter().any(|s| s.name == *name) {
                cx.intern(format!("sa{name}"), DfgNode::ScalarArg(name.clone()))
            } else {
                return Err(ScheduleError(format!(
                    "use of '{name}' before assignment (loop-carried scalars must be arrays)"
                )));
            }
        }
        KExpr::ArrayRead { array, indices } => {
            let idx: Vec<NodeId> = indices
                .iter()
                .map(|x| lower_expr(kernel, x, loop_vars, cx))
                .collect::<Result<_, _>>()?;
            let decl = kernel
                .array(array)
                .ok_or_else(|| ScheduleError(format!("unknown array '{array}'")))?;
            let bank = static_bank(decl, indices, &cx.nodes, &idx);
            let epoch = cx.store_epoch.get(array.as_str()).copied().unwrap_or(0);
            cx.intern(
                format!("ld{array}@{epoch}[{idx:?}]"),
                DfgNode::Load {
                    array: array.clone(),
                    bank,
                    indices: idx,
                },
            )
        }
        KExpr::Bin { op, lhs, rhs } => {
            let l = lower_expr(kernel, lhs, loop_vars, cx)?;
            let r = lower_expr(kernel, rhs, loop_vars, cx)?;
            cx.intern(
                format!("b{op:?}({l},{r})"),
                DfgNode::Bin {
                    op: *op,
                    lhs: l,
                    rhs: r,
                },
            )
        }
        KExpr::Select { cond, then, els } => {
            let c = lower_expr(kernel, cond, loop_vars, cx)?;
            let t = lower_expr(kernel, then, loop_vars, cx)?;
            let x = lower_expr(kernel, els, loop_vars, cx)?;
            cx.intern(
                format!("s({c},{t},{x})"),
                DfgNode::Select {
                    cond: c,
                    then: t,
                    els: x,
                },
            )
        }
    };
    Ok(id)
}

/// Static bank index if the partition-dimension indices are constants.
fn static_bank(
    decl: &ArrayDecl,
    _raw_indices: &[KExpr],
    nodes: &[DfgNode],
    idx_nodes: &[NodeId],
) -> Option<u64> {
    if decl.partition_dims.is_empty() {
        return Some(0);
    }
    let mut bank: u64 = 0;
    for &d in &decl.partition_dims {
        match nodes.get(idx_nodes[d]) {
            Some(DfgNode::Const(v, _)) if *v >= 0 && (*v as u64) < decl.dims[d] => {
                bank = bank * decl.dims[d] + *v as u64;
            }
            _ => return None, // dynamic bank selection
        }
    }
    Some(bank)
}

/// Scheduler configuration.
#[derive(Clone, Debug)]
pub struct SchedOptions {
    /// Clock period for operator chaining (5.0 ns = 200 MHz, as the paper).
    pub clock_ns: f64,
    /// Bound on the II search (guards against pathological kernels).
    pub max_ii: u32,
}

impl Default for SchedOptions {
    fn default() -> Self {
        SchedOptions {
            clock_ns: 5.0,
            max_ii: 256,
        }
    }
}

/// Schedule a straight-line DFG sequentially (no overlap).
pub fn schedule_sequential(
    nodes: Vec<DfgNode>,
    bindings: &HashMap<String, ArrayBinding>,
    opts: &SchedOptions,
) -> Result<ScheduledDfg, ScheduleError> {
    try_schedule(nodes, bindings, opts, None).map(|mut s| {
        s.ii = None;
        s
    })
}

/// Iterative modulo scheduling: find the smallest feasible II.
pub fn schedule_pipelined(
    nodes: Vec<DfgNode>,
    bindings: &HashMap<String, ArrayBinding>,
    opts: &SchedOptions,
    requested_ii: u32,
) -> Result<ScheduledDfg, ScheduleError> {
    let res_mii = resource_mii(&nodes, bindings);
    let mut attempts = 0;
    let mut ii = requested_ii.max(res_mii).max(1);
    loop {
        attempts += 1;
        if ii > opts.max_ii {
            return Err(ScheduleError(format!(
                "no feasible initiation interval up to {}",
                opts.max_ii
            )));
        }
        match try_schedule(nodes.clone(), bindings, opts, Some(ii)) {
            Ok(mut s) => {
                s.ii = Some(ii);
                s.attempts = attempts;
                return Ok(s);
            }
            Err(_) => {
                ii += 1;
            }
        }
    }
}

/// Lower bound on II from port pressure.
pub fn resource_mii(nodes: &[DfgNode], bindings: &HashMap<String, ArrayBinding>) -> u32 {
    let mut reads: HashMap<(String, Option<u64>), u32> = HashMap::new();
    let mut writes: HashMap<(String, Option<u64>), u32> = HashMap::new();
    for n in nodes {
        match n {
            DfgNode::Load { array, bank, .. } => {
                *reads.entry((array.clone(), *bank)).or_default() += 1;
            }
            DfgNode::Store { array, bank, .. } => {
                *writes.entry((array.clone(), *bank)).or_default() += 1;
            }
            _ => {}
        }
    }
    let mut mii = 1;
    for ((array, _), count) in reads {
        let ports = bindings.get(&array).map_or(1, |b| b.read_ports).max(1);
        mii = mii.max(count.div_ceil(ports));
    }
    for ((array, _), count) in writes {
        let ports = bindings.get(&array).map_or(1, |b| b.write_ports).max(1);
        mii = mii.max(count.div_ceil(ports));
    }
    mii
}

/// List scheduling with chaining; with `Some(ii)`, apply modulo reservation
/// tables and verify distance-1 loop-carried memory dependences.
fn try_schedule(
    nodes: Vec<DfgNode>,
    bindings: &HashMap<String, ArrayBinding>,
    opts: &SchedOptions,
    ii: Option<u32>,
) -> Result<ScheduledDfg, ScheduleError> {
    let mut slots: Vec<Slot> = vec![Slot::default(); nodes.len()];
    // (array, bank, is_write) -> modulo reservation table (slot -> count).
    let mut reservations: HashMap<(String, Option<u64>, bool), HashMap<u32, u32>> = HashMap::new();
    // Last store issue stage for intra-iteration RAW ordering, tracked per
    // bank: stores to one register/RAM bank do not order loads from another.
    let mut last_store_bank: HashMap<(String, u64), u32> = HashMap::new();
    let mut last_store_dyn: HashMap<String, u32> = HashMap::new();
    let mut last_store_any: HashMap<String, u32> = HashMap::new();

    for i in 0..nodes.len() {
        let node = nodes[i].clone();
        match node {
            DfgNode::Const(..) | DfgNode::LoopVar(_) | DfgNode::ScalarArg(_) => {
                slots[i] = Slot {
                    issue: 0,
                    avail: 0,
                    ready_ns: 0.0,
                };
            }
            DfgNode::Bin { op, lhs, rhs } => {
                let d = op_delay_ns(op);
                slots[i] = chain(&[slots[lhs], slots[rhs]], d, opts.clock_ns);
            }
            DfgNode::Select { cond, then, els } => {
                slots[i] = chain(&[slots[cond], slots[then], slots[els]], 0.9, opts.clock_ns);
            }
            DfgNode::Load {
                ref array,
                bank,
                ref indices,
            } => {
                let binding = bindings.get(array).copied().unwrap_or(ArrayBinding {
                    read_latency: 1,
                    read_ports: 1,
                    write_ports: 1,
                });
                let addr_ready =
                    indices
                        .iter()
                        .map(|&x| slots[x])
                        .fold(Slot::default(), |acc, s| Slot {
                            issue: acc.issue.max(s.avail),
                            avail: acc.avail.max(s.avail),
                            ready_ns: if s.avail >= acc.avail {
                                s.ready_ns.max(acc.ready_ns)
                            } else {
                                acc.ready_ns
                            },
                        });
                // Addresses computed late in a stage push the access out.
                let mut issue = if addr_ready.ready_ns > 2.5 {
                    addr_ready.avail + 1
                } else {
                    addr_ready.avail
                };
                // Intra-iteration RAW: a read after an earlier store to an
                // aliasing bank sees the new value only a cycle later.
                let raw_cap = match bank {
                    Some(b) => last_store_dyn
                        .get(array.as_str())
                        .copied()
                        .into_iter()
                        .chain(last_store_bank.get(&(array.clone(), b)).copied())
                        .max(),
                    None => last_store_any.get(array.as_str()).copied(),
                };
                if let Some(st) = raw_cap {
                    issue = issue.max(st + 1);
                }
                issue = reserve(
                    &mut reservations,
                    (array.clone(), bank, false),
                    issue,
                    binding.read_ports,
                    ii,
                )?;
                slots[i] = Slot {
                    issue,
                    avail: issue + binding.read_latency,
                    ready_ns: if binding.read_latency == 0 { 1.5 } else { 0.0 },
                };
            }
            DfgNode::Store {
                ref array,
                bank,
                ref indices,
                value,
            } => {
                let binding = bindings.get(array).copied().unwrap_or(ArrayBinding {
                    read_latency: 1,
                    read_ports: 1,
                    write_ports: 1,
                });
                let mut ready = slots[value].avail;
                let mut ready_ns = slots[value].ready_ns;
                for &x in indices {
                    if slots[x].avail > ready {
                        ready = slots[x].avail;
                        ready_ns = slots[x].ready_ns;
                    } else if slots[x].avail == ready {
                        ready_ns = ready_ns.max(slots[x].ready_ns);
                    }
                }
                let mut issue = if ready_ns > 3.0 { ready + 1 } else { ready };
                issue = reserve(
                    &mut reservations,
                    (array.clone(), bank, true),
                    issue,
                    binding.write_ports,
                    ii,
                )?;
                slots[i] = Slot {
                    issue,
                    avail: issue,
                    ready_ns: 0.0,
                };
                match bank {
                    Some(b) => {
                        let e = last_store_bank.entry((array.clone(), b)).or_insert(issue);
                        *e = (*e).max(issue);
                    }
                    None => {
                        let e = last_store_dyn.entry(array.clone()).or_insert(issue);
                        *e = (*e).max(issue);
                    }
                }
                let e = last_store_any.entry(array.clone()).or_insert(issue);
                *e = (*e).max(issue);
            }
        }
    }

    // Retiming: zero-latency (register-file) loads are free to move later;
    // issue each at its earliest consumer so read-modify-write recurrences
    // close within one stage (what a commercial scheduler achieves through
    // backtracking).
    for i in 0..nodes.len() {
        let DfgNode::Load { array, .. } = &nodes[i] else {
            continue;
        };
        let lat = bindings.get(array).map_or(1, |b| b.read_latency);
        if lat != 0 {
            continue;
        }
        let mut earliest_consumer: Option<u32> = None;
        for (j, n2) in nodes.iter().enumerate() {
            let uses = match n2 {
                DfgNode::Bin { lhs, rhs, .. } => *lhs == i || *rhs == i,
                DfgNode::Select { cond, then, els } => *cond == i || *then == i || *els == i,
                DfgNode::Load { indices, .. } => indices.contains(&i),
                DfgNode::Store { indices, value, .. } => indices.contains(&i) || *value == i,
                _ => false,
            };
            if uses {
                let stage = match n2 {
                    DfgNode::Store { .. } | DfgNode::Load { .. } => slots[j].issue,
                    _ => slots[j].avail,
                };
                earliest_consumer = Some(earliest_consumer.map_or(stage, |e: u32| e.min(stage)));
            }
        }
        // A later (program-order) store to an aliasing bank caps the move:
        // the load must still observe the PRE-store value (read-first RAM
        // allows equality).
        let mut cap: Option<u32> = None;
        let (larray, lbank) = match &nodes[i] {
            DfgNode::Load { array, bank, .. } => (array.clone(), *bank),
            _ => unreachable!(),
        };
        for (j, n2) in nodes.iter().enumerate().skip(i + 1) {
            if let DfgNode::Store {
                array: a2,
                bank: b2,
                ..
            } = n2
            {
                let alias = a2 == &larray
                    && match (lbank, b2) {
                        (Some(x), Some(y)) => x == *y,
                        _ => true,
                    };
                if alias {
                    cap = Some(cap.map_or(slots[j].issue, |c: u32| c.min(slots[j].issue)));
                }
            }
        }
        if let Some(mut s) = earliest_consumer {
            if let Some(c) = cap {
                s = s.min(c);
            }
            if s > slots[i].issue {
                slots[i].issue = s;
                slots[i].avail = s;
            }
        }
    }

    // Loop-carried (distance-1) memory dependences under pipelining. Only
    // accesses whose banks can alias are paired.
    if let Some(ii) = ii {
        for (i, n) in nodes.iter().enumerate() {
            let DfgNode::Store {
                array, bank: sb, ..
            } = n
            else {
                continue;
            };
            for (j, n2) in nodes.iter().enumerate() {
                let DfgNode::Load {
                    array: a2,
                    bank: lb,
                    ..
                } = n2
                else {
                    continue;
                };
                if a2 != array {
                    continue;
                }
                let may_alias = match (sb, lb) {
                    (Some(x), Some(y)) => x == y,
                    _ => true,
                };
                if !may_alias {
                    continue;
                }
                // Next iteration's load must see this iteration's store.
                let store_visible = slots[i].issue + 1;
                let next_load = slots[j].issue + ii;
                if store_visible > next_load {
                    return Err(ScheduleError(format!(
                        "loop-carried dependence on '{array}' violated at II={ii}"
                    )));
                }
            }
        }
    }

    // SDC legalization: re-derive the minimal feasible schedule from the
    // full difference-constraint system (Bellman-Ford longest paths) and
    // confirm the list schedule satisfies it — the LP-based validation step
    // of production schedulers. The accumulated slack is reported in the
    // compile statistics.
    let sdc_slack = sdc_legalize(&nodes, &slots, bindings)?;

    let length = slots
        .iter()
        .zip(&nodes)
        .map(|(s, n)| match n {
            DfgNode::Store { .. } => s.issue + 1,
            DfgNode::Load { .. } => s.avail,
            _ => s.avail,
        })
        .max()
        .unwrap_or(0)
        .max(1);
    Ok(ScheduledDfg {
        nodes,
        slots,
        length,
        ii,
        attempts: 1,
        sdc_slack,
    })
}

/// Build the dependence difference-constraint graph and solve it with
/// Bellman-Ford longest paths (the SDC formulation of HLS scheduling).
/// Returns the total slack of the list schedule over the SDC optimum.
///
/// # Errors
/// Fails if the list schedule violates any dependence constraint — a
/// scheduler bug, surfaced the way a commercial tool's internal checker
/// would.
fn sdc_legalize(
    nodes: &[DfgNode],
    slots: &[Slot],
    bindings: &HashMap<String, ArrayBinding>,
) -> Result<i64, ScheduleError> {
    // Edges u -> v with weight w mean: start(v) >= start(u) + w, where w is
    // the producer's latency (loads deliver data `read_latency` cycles
    // after they issue).
    let lat = |u: usize| -> i64 {
        match &nodes[u] {
            DfgNode::Load { array, .. } => bindings.get(array).map_or(1, |b| b.read_latency) as i64,
            _ => 0,
        }
    };
    let mut edges: Vec<(usize, usize, i64)> = Vec::new();
    for (v, n) in nodes.iter().enumerate() {
        let mut dep = |u: usize| edges.push((u, v, lat(u)));
        match n {
            DfgNode::Const(..) | DfgNode::LoopVar(_) | DfgNode::ScalarArg(_) => {}
            DfgNode::Bin { lhs, rhs, .. } => {
                dep(*lhs);
                dep(*rhs);
            }
            DfgNode::Select { cond, then, els } => {
                dep(*cond);
                dep(*then);
                dep(*els);
            }
            DfgNode::Load { indices, .. } => {
                for &i in indices {
                    dep(i);
                }
            }
            DfgNode::Store { indices, value, .. } => {
                for &i in indices {
                    dep(i);
                }
                dep(*value);
            }
        }
    }
    // Longest path from sources (Bellman-Ford over all edges).
    let mut dist = vec![0i64; nodes.len()];
    for _ in 0..nodes.len().max(1) {
        let mut changed = false;
        for &(u, v, w) in &edges {
            if dist[u] + w > dist[v] {
                dist[v] = dist[u] + w;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // The list schedule must dominate the SDC lower bound.
    let mut slack = 0i64;
    for (v, d) in dist.iter().enumerate() {
        let actual = match nodes[v] {
            DfgNode::Store { .. } | DfgNode::Load { .. } => slots[v].issue as i64,
            _ => slots[v].avail as i64,
        };
        if actual < *d {
            return Err(ScheduleError(format!(
                "internal: list schedule places node {v} at {actual}, below its SDC bound {d}"
            )));
        }
        slack += actual - d;
    }
    Ok(slack)
}

fn chain(preds: &[Slot], delay: f64, clock: f64) -> Slot {
    let stage = preds.iter().map(|p| p.avail).max().unwrap_or(0);
    let start_ns = preds
        .iter()
        .filter(|p| p.avail == stage)
        .map(|p| p.ready_ns)
        .fold(0.0f64, f64::max);
    if start_ns + delay > clock {
        Slot {
            issue: stage + 1,
            avail: stage + 1,
            ready_ns: delay,
        }
    } else {
        Slot {
            issue: stage,
            avail: stage,
            ready_ns: start_ns + delay,
        }
    }
}

/// Find the first stage >= `earliest` with a free port slot and book it.
fn reserve(
    reservations: &mut HashMap<(String, Option<u64>, bool), HashMap<u32, u32>>,
    key: (String, Option<u64>, bool),
    earliest: u32,
    ports: u32,
    ii: Option<u32>,
) -> Result<u32, ScheduleError> {
    let table = reservations.entry(key).or_default();
    let mut stage = earliest;
    for _ in 0..4096 {
        let slot = match ii {
            Some(ii) => stage % ii,
            None => stage,
        };
        let used = table.get(&slot).copied().unwrap_or(0);
        if used < ports.max(1) {
            *table.entry(slot).or_default() += 1;
            return Ok(stage);
        }
        stage += 1;
        if let Some(ii) = ii {
            // With a full modulo table there is no free slot at this II.
            if stage - earliest >= ii {
                return Err(ScheduleError("modulo reservation table full".into()));
            }
        }
    }
    Err(ScheduleError("no free port slot found".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Kernel;

    fn bram() -> ArrayBinding {
        ArrayBinding {
            read_latency: 1,
            read_ports: 1,
            write_ports: 1,
        }
    }

    fn vadd_body(kernel: &mut Kernel) -> Vec<KStmt> {
        kernel
            .in_array("a", 32, &[64])
            .in_array("b", 32, &[64])
            .out_array("c", 32, &[64]);
        vec![KStmt::Store {
            array: "c".into(),
            indices: vec![KExpr::var("i")],
            value: KExpr::add(
                KExpr::read("a", vec![KExpr::var("i")]),
                KExpr::read("b", vec![KExpr::var("i")]),
            ),
        }]
    }

    #[test]
    fn vadd_pipelines_at_ii_1() {
        let mut k = Kernel::new("vadd");
        let body = vadd_body(&mut k);
        let nodes = build_dfg(&k, &body, &["i".into()]).expect("dfg");
        let mut b = HashMap::new();
        for n in ["a", "b", "c"] {
            b.insert(n.to_string(), bram());
        }
        let s = schedule_pipelined(nodes, &b, &SchedOptions::default(), 1).expect("schedule");
        assert_eq!(s.ii, Some(1));
        // read at 0, data at 1, add chains at 1, store at 1 -> length 2.
        assert!(s.length >= 2 && s.length <= 3, "length {}", s.length);
    }

    #[test]
    fn same_port_reads_force_ii_2() {
        // Two reads of the same single-port array every iteration.
        let mut k = Kernel::new("two_reads");
        k.in_array("a", 32, &[64]).out_array("c", 32, &[64]);
        let body = vec![KStmt::Store {
            array: "c".into(),
            indices: vec![KExpr::var("i")],
            value: KExpr::add(
                KExpr::read("a", vec![KExpr::var("i")]),
                KExpr::read("a", vec![KExpr::add(KExpr::var("i"), KExpr::c(1, 32))]),
            ),
        }];
        let nodes = build_dfg(&k, &body, &["i".into()]).expect("dfg");
        let mut b = HashMap::new();
        b.insert("a".to_string(), bram());
        b.insert("c".to_string(), bram());
        let s = schedule_pipelined(nodes, &b, &SchedOptions::default(), 1).expect("schedule");
        assert_eq!(s.ii, Some(2), "single read port forces II=2");
    }

    #[test]
    fn read_modify_write_recurrence_bounds_ii() {
        // hist[x] = hist[x] + 1 with a 1-cycle-read RAM: II must cover
        // load (1 cycle) + store visibility.
        let mut k = Kernel::new("hist");
        k.in_array("x", 32, &[64]);
        k.local_array("hist", 32, &[256], &[]);
        let body = vec![KStmt::Store {
            array: "hist".into(),
            indices: vec![KExpr::read("x", vec![KExpr::var("i")])],
            value: KExpr::add(
                KExpr::read("hist", vec![KExpr::read("x", vec![KExpr::var("i")])]),
                KExpr::c(1, 32),
            ),
        }];
        let nodes = build_dfg(&k, &body, &["i".into()]).expect("dfg");
        let mut b = HashMap::new();
        // Two read ports on x so port pressure does NOT force the II; the
        // recurrence alone must drive the search.
        b.insert(
            "x".to_string(),
            ArrayBinding {
                read_latency: 1,
                read_ports: 2,
                write_ports: 1,
            },
        );
        b.insert(
            "hist".to_string(),
            ArrayBinding {
                read_latency: 1,
                read_ports: 1,
                write_ports: 1,
            },
        );
        let s = schedule_pipelined(nodes, &b, &SchedOptions::default(), 1).expect("schedule");
        assert!(
            s.ii.unwrap() >= 2,
            "RMW recurrence needs II>=2, got {:?}",
            s.ii
        );
        assert!(s.attempts >= 2, "II search must have iterated");
    }

    #[test]
    fn multiply_gets_its_own_stage() {
        // mul (5.2ns) cannot chain with add (1.8ns) at a 5ns clock.
        let mut k = Kernel::new("mac");
        k.scalar_arg("a", 32)
            .scalar_arg("b", 32)
            .scalar_arg("c", 32);
        k.out_array("o", 32, &[1]);
        let body = vec![KStmt::Store {
            array: "o".into(),
            indices: vec![KExpr::c(0, 1)],
            value: KExpr::add(
                KExpr::mul(KExpr::var("a"), KExpr::var("b")),
                KExpr::var("c"),
            ),
        }];
        let nodes = build_dfg(&k, &body, &[]).expect("dfg");
        let mut b = HashMap::new();
        b.insert("o".to_string(), bram());
        let s = schedule_sequential(nodes, &b, &SchedOptions::default()).expect("schedule");
        // mul at stage 1 (own stage), add chains after it in stage 2.
        assert!(s.length >= 2, "length {}", s.length);
    }

    #[test]
    fn loop_carried_scalar_rejected() {
        let mut k = Kernel::new("acc");
        k.local("sum", 32);
        let body = vec![KStmt::Assign {
            var: "sum".into(),
            expr: KExpr::add(KExpr::var("sum"), KExpr::c(1, 32)),
        }];
        let err = build_dfg(&k, &body, &[]).unwrap_err();
        assert!(err.0.contains("before assignment"), "{err}");
    }

    #[test]
    fn partitioned_array_banks_resolved_statically() {
        let mut k = Kernel::new("p");
        k.local_array("w", 32, &[4, 8], &[0]);
        let body = vec![KStmt::Store {
            array: "w".into(),
            indices: vec![KExpr::c(2, 32), KExpr::var("i")],
            value: KExpr::c(5, 32),
        }];
        let nodes = build_dfg(&k, &body, &["i".into()]).expect("dfg");
        let store = nodes
            .iter()
            .find(|n| matches!(n, DfgNode::Store { .. }))
            .unwrap();
        match store {
            DfgNode::Store { bank, .. } => assert_eq!(*bank, Some(2)),
            _ => unreachable!(),
        }
    }
}
