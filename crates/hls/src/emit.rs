//! Lowering a scheduled kernel to HIR.
//!
//! The baseline HLS compiler emits HIR with *explicit* schedules (exactly
//! the target role the paper's §9.2 proposes for HLS compilers) and then
//! reuses `hir-codegen` for RTL. All the characteristic resource overheads
//! of an HLS flow appear naturally:
//!
//! * loop counters default to the C `int` width (32 bits),
//! * every value crossing a schedule stage boundary gets pipeline
//!   registers (`hir.delay`), the "more aggressive pipelining" the paper
//!   observes in HLS register counts,
//! * conservative operator chaining stretches schedules.

use crate::ast::{ArrayDir, KOp, KStmt, Kernel};
use crate::schedule::{
    build_dfg, schedule_pipelined, schedule_sequential, ArrayBinding, DfgNode, SchedOptions,
    ScheduleError, ScheduledDfg,
};
use hir::types::{Dim, MemKind, MemrefInfo, Port};
use hir::{CmpPredicate, HirBuilder};
use ir::{Type, ValueId};
use std::collections::HashMap;

/// Statistics describing the compilation effort and outcome.
#[derive(Clone, Debug, Default)]
pub struct CompileStats {
    /// Loops scheduled.
    pub loops: usize,
    /// Total II-search attempts across all pipelined loops.
    pub schedule_attempts: u32,
    /// Achieved initiation intervals per pipelined loop.
    pub achieved_iis: Vec<u32>,
    /// DFG nodes scheduled in total.
    pub nodes_scheduled: usize,
    /// Functional units after binding and mux inputs added by sharing.
    pub shared_multipliers: u32,
    pub mux_inputs: u32,
    /// Total slack reported by the SDC legalization solves.
    pub sdc_slack: i64,
}

struct ArrayPorts {
    read: Option<ValueId>,
    write: Option<ValueId>,
}

/// Where the schedule currently stands: `offset` cycles after `root`.
#[derive(Clone, Copy, Debug)]
struct TimePos {
    root: ValueId,
    offset: i64,
}

/// Memory kind chosen for an array, mirroring Vivado's defaults: interface
/// arrays are BRAM; completely-partitioned locals are registers; small
/// locals are LUTRAM.
pub fn array_memkind(decl: &crate::ast::ArrayDecl) -> MemKind {
    if decl.is_arg {
        MemKind::BlockRam
    } else if decl.bank_size() == 1 {
        MemKind::Reg
    } else if decl.bank_size() <= 64 {
        MemKind::LutRam
    } else {
        MemKind::BlockRam
    }
}

fn binding_for(kind: MemKind) -> ArrayBinding {
    match kind {
        MemKind::Reg => ArrayBinding {
            read_latency: 0,
            read_ports: 1 << 16,
            write_ports: 1,
        },
        MemKind::LutRam | MemKind::BlockRam => ArrayBinding {
            read_latency: 1,
            read_ports: 1,
            write_ports: 1,
        },
    }
}

fn memref_dims(decl: &crate::ast::ArrayDecl) -> Vec<Dim> {
    decl.dims
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            if decl.partition_dims.contains(&i) {
                Dim::Distributed(n)
            } else {
                Dim::Packed(n)
            }
        })
        .collect()
}

/// Lower `kernel` (already through the frontend) to an HIR module.
///
/// # Errors
/// Fails on unsupported constructs or infeasible schedules.
pub fn emit_kernel(
    kernel: &Kernel,
    opts: &SchedOptions,
) -> Result<(ir::Module, CompileStats), ScheduleError> {
    let mut hb = HirBuilder::new();

    // Function signature: scalars then interface arrays.
    let mut arg_decls: Vec<(String, Type)> = Vec::new();
    for s in &kernel.scalars {
        arg_decls.push((s.name.clone(), Type::int(s.width)));
    }
    for a in kernel.arrays.iter().filter(|a| a.is_arg) {
        let port = match a.dir {
            ArrayDir::In => Port::Read,
            ArrayDir::Out => Port::Write,
            ArrayDir::InOut => Port::ReadWrite,
        };
        let info = MemrefInfo::new(
            memref_dims(a),
            Type::int(a.elem_width),
            port,
            array_memkind(a),
        );
        arg_decls.push((a.name.clone(), info.to_type()));
    }
    let named: Vec<(&str, Type)> = arg_decls
        .iter()
        .map(|(n, t)| (n.as_str(), t.clone()))
        .collect();
    let func = hb.func(&format!("hls_{}", kernel.name), &named, &[]);
    let t = func.time_var(hb.module());
    let func_args = func.args(hb.module());

    let mut em = Emitter {
        kernel,
        opts: opts.clone(),
        arrays: HashMap::new(),
        bindings: HashMap::new(),
        loop_vars: HashMap::new(),
        loop_var_names: Vec::new(),
        scalar_args: HashMap::new(),
        stats: CompileStats::default(),
    };

    // Bind argument values and bindings.
    let mut ai = 0;
    for s in &kernel.scalars {
        em.scalar_args.insert(s.name.clone(), func_args[ai]);
        ai += 1;
    }
    for a in kernel.arrays.iter().filter(|a| a.is_arg) {
        let v = func_args[ai];
        ai += 1;
        let ports = match a.dir {
            ArrayDir::In => ArrayPorts {
                read: Some(v),
                write: None,
            },
            ArrayDir::Out => ArrayPorts {
                read: None,
                write: Some(v),
            },
            ArrayDir::InOut => ArrayPorts {
                read: Some(v),
                write: Some(v),
            },
        };
        em.arrays.insert(a.name.clone(), ports);
        em.bindings
            .insert(a.name.clone(), binding_for(array_memkind(a)));
    }
    // Local buffers.
    for a in kernel.arrays.iter().filter(|a| !a.is_arg) {
        let kind = array_memkind(a);
        let ports = hb.alloc(
            &memref_dims(a),
            Type::int(a.elem_width),
            kind,
            &[Port::Read, Port::Write],
        );
        em.arrays.insert(
            a.name.clone(),
            ArrayPorts {
                read: Some(ports[0]),
                write: Some(ports[1]),
            },
        );
        em.bindings.insert(a.name.clone(), binding_for(kind));
    }

    // Body, starting one cycle after the call.
    em.emit_stmts(&mut hb, &kernel.body, TimePos { root: t, offset: 1 })?;
    hb.return_(&[]);
    Ok((hb.finish(), em.stats))
}

struct Emitter<'k> {
    kernel: &'k Kernel,
    opts: SchedOptions,
    arrays: HashMap<String, ArrayPorts>,
    bindings: HashMap<String, ArrayBinding>,
    loop_vars: HashMap<String, ValueId>,
    loop_var_names: Vec<String>,
    scalar_args: HashMap<String, ValueId>,
    stats: CompileStats,
}

impl Emitter<'_> {
    /// Emit a statement list starting at `pos`; returns the position after.
    fn emit_stmts(
        &mut self,
        hb: &mut HirBuilder,
        stmts: &[KStmt],
        mut pos: TimePos,
    ) -> Result<TimePos, ScheduleError> {
        let mut group: Vec<KStmt> = Vec::new();
        for s in stmts {
            match s {
                KStmt::For { .. } => {
                    if !group.is_empty() {
                        pos = self.emit_group(hb, &std::mem::take(&mut group), pos, None)?;
                    }
                    pos = self.emit_for(hb, s, pos)?;
                }
                KStmt::If { .. } => {
                    return Err(ScheduleError(
                        "the HLS baseline does not support data-dependent control flow".into(),
                    ))
                }
                other => group.push(other.clone()),
            }
        }
        if !group.is_empty() {
            pos = self.emit_group(hb, &group, pos, None)?;
        }
        Ok(pos)
    }

    fn emit_for(
        &mut self,
        hb: &mut HirBuilder,
        stmt: &KStmt,
        pos: TimePos,
    ) -> Result<TimePos, ScheduleError> {
        let KStmt::For {
            var,
            lb,
            ub,
            step,
            pragmas,
            body,
        } = stmt
        else {
            unreachable!()
        };
        self.stats.loops += 1;
        let iv_w = self.kernel.loop_var_width;
        let lbv = hb.const_val(*lb);
        let ubv = hb.const_val(*ub);
        let stepv = hb.const_val(*step);
        let lp = hb.for_loop(lbv, ubv, stepv, pos.root, pos.offset, Type::int(iv_w));
        let iv = lp.induction_var(hb.module());
        let ti = lp.iter_time(hb.module());
        self.loop_vars.insert(var.clone(), iv);
        self.loop_var_names.push(var.clone());

        let straight_line = body
            .iter()
            .all(|s| !matches!(s, KStmt::For { .. } | KStmt::If { .. }));
        let mut result: Result<(), ScheduleError> = Ok(());
        // Cycles of in-flight work still draining when the loop's `%tf`
        // fires (pipelined loops issue their last iteration II cycles after
        // the previous one, but its body takes `length` cycles).
        let mut drain: i64 = 0;
        if straight_line {
            let pipeline = pragmas.pipeline_ii;
            let body_clone = body.clone();
            hb.in_loop(lp, |hb, _iv, ti_inner| {
                debug_assert_eq!(ti_inner, ti);
                match self.emit_group_inner(
                    hb,
                    &body_clone,
                    TimePos {
                        root: ti,
                        offset: 0,
                    },
                    pipeline,
                ) {
                    Ok((end, ii)) => {
                        let length = end.offset.max(1);
                        let yoff = match ii {
                            Some(ii) => ii as i64,
                            None => length,
                        };
                        drain = (length - yoff).max(0);
                        hb.yield_at(ti, yoff);
                    }
                    Err(e) => {
                        // Still terminate the body so the IR stays valid.
                        hb.yield_at(ti, 1);
                        result = Err(e);
                    }
                }
            });
        } else {
            let body_clone = body.clone();
            hb.in_loop(lp, |hb, _iv, ti_inner| {
                match self.emit_stmts(
                    hb,
                    &body_clone,
                    TimePos {
                        root: ti_inner,
                        offset: 0,
                    },
                ) {
                    Ok(end) => {
                        hb.yield_at(end.root, end.offset.max(1));
                    }
                    Err(e) => {
                        hb.yield_at(ti_inner, 1);
                        result = Err(e);
                    }
                }
            });
        }
        result?;
        self.loop_var_names.pop();
        self.loop_vars.remove(var);
        Ok(TimePos {
            root: lp.result_time(hb.module()),
            offset: drain.max(1),
        })
    }

    /// Schedule and emit one straight-line group; returns the end position.
    fn emit_group(
        &mut self,
        hb: &mut HirBuilder,
        stmts: &[KStmt],
        pos: TimePos,
        pipeline: Option<u32>,
    ) -> Result<TimePos, ScheduleError> {
        let (end, _) = self.emit_group_inner(hb, stmts, pos, pipeline)?;
        Ok(end)
    }

    fn emit_group_inner(
        &mut self,
        hb: &mut HirBuilder,
        stmts: &[KStmt],
        pos: TimePos,
        pipeline: Option<u32>,
    ) -> Result<(TimePos, Option<u32>), ScheduleError> {
        let nodes = build_dfg(self.kernel, stmts, &self.loop_var_names)?;
        self.stats.nodes_scheduled += nodes.len();
        let sched = match pipeline {
            Some(req) => schedule_pipelined(nodes, &self.bindings, &self.opts, req)?,
            None => schedule_sequential(nodes, &self.bindings, &self.opts)?,
        };
        self.stats.schedule_attempts += sched.attempts;
        self.stats.sdc_slack += sched.sdc_slack;
        if let Some(ii) = sched.ii {
            self.stats.achieved_iis.push(ii);
        }
        self.bind_stats(&sched);
        self.emit_scheduled(hb, &sched, pos)?;
        Ok((
            TimePos {
                root: pos.root,
                offset: pos.offset + sched.length as i64,
            },
            sched.ii,
        ))
    }

    /// Post-scheduling binding: count shared multipliers and the mux inputs
    /// resource sharing would add (reported as compiler-effort statistics).
    fn bind_stats(&mut self, sched: &ScheduledDfg) {
        let mut mult_stages: HashMap<u32, u32> = HashMap::new();
        let modulo = sched.ii.unwrap_or(u32::MAX);
        for (i, n) in sched.nodes.iter().enumerate() {
            if let DfgNode::Bin { op: KOp::Mul, .. } = n {
                let slot = if modulo == u32::MAX {
                    sched.slots[i].avail
                } else {
                    sched.slots[i].avail % modulo
                };
                *mult_stages.entry(slot).or_default() += 1;
            }
        }
        let concurrent = mult_stages.values().copied().max().unwrap_or(0);
        let total: u32 = mult_stages.values().sum();
        self.stats.shared_multipliers += concurrent;
        if total > concurrent {
            self.stats.mux_inputs += (total - concurrent) * 2;
        }
    }

    /// Emit a scheduled DFG at `pos`. Value stages are tracked as
    /// *absolute* offsets from `pos.root` so that function-scope values
    /// (valid at offset 0) delay correctly into later schedule stages.
    fn emit_scheduled(
        &mut self,
        hb: &mut HirBuilder,
        sched: &ScheduledDfg,
        pos: TimePos,
    ) -> Result<(), ScheduleError> {
        let mut table = ValueTable {
            values: vec![None; sched.nodes.len()],
            delayed: HashMap::new(),
            root: pos.root,
        };
        let abs = |s: u32| pos.offset + s as i64;

        for (i, node) in sched.nodes.iter().enumerate() {
            let slot = sched.slots[i];
            match node {
                DfgNode::Const(v, w) => {
                    let val = hb.typed_const(*v, Type::int(*w));
                    table.values[i] = Some((val, VStage::Always));
                }
                DfgNode::LoopVar(name) => {
                    let v = *self.loop_vars.get(name).ok_or_else(|| {
                        ScheduleError(format!("loop variable '{name}' not in scope"))
                    })?;
                    table.values[i] = Some((v, VStage::At(0)));
                }
                DfgNode::ScalarArg(name) => {
                    let v = *self
                        .scalar_args
                        .get(name)
                        .ok_or_else(|| ScheduleError(format!("scalar '{name}' not found")))?;
                    table.values[i] = Some((v, VStage::At(0)));
                }
                DfgNode::Bin { op, lhs, rhs } => {
                    let s = abs(slot.avail);
                    let a = table.at(hb, *lhs, s);
                    let b = table.at(hb, *rhs, s);
                    let v = match op {
                        KOp::Add => hb.add(a, b),
                        KOp::Sub => hb.sub(a, b),
                        KOp::Mul => hb.mult(a, b),
                        KOp::And => hb.and(a, b),
                        KOp::Or => hb.or(a, b),
                        KOp::Xor => hb.xor(a, b),
                        KOp::Shl => hb.shl(a, b),
                        KOp::Shr => hb.shr(a, b),
                        KOp::Eq => hb.cmp(CmpPredicate::Eq, a, b),
                        KOp::Ne => hb.cmp(CmpPredicate::Ne, a, b),
                        KOp::Lt => hb.cmp(CmpPredicate::Lt, a, b),
                        KOp::Le => hb.cmp(CmpPredicate::Le, a, b),
                        KOp::Gt => hb.cmp(CmpPredicate::Gt, a, b),
                        KOp::Ge => hb.cmp(CmpPredicate::Ge, a, b),
                    };
                    table.values[i] = Some((v, VStage::At(s)));
                }
                DfgNode::Select { cond, then, els } => {
                    let s = abs(slot.avail);
                    let c = table.at(hb, *cond, s);
                    let a = table.at(hb, *then, s);
                    let b = table.at(hb, *els, s);
                    let v = hb.select(c, a, b);
                    table.values[i] = Some((v, VStage::At(s)));
                }
                DfgNode::Load { array, indices, .. } => {
                    let issue = abs(slot.issue);
                    let avail = abs(slot.avail);
                    let v =
                        self.emit_load(hb, sched, &mut table, array, indices, issue, avail, pos)?;
                    table.values[i] = Some((v, VStage::At(avail)));
                }
                DfgNode::Store {
                    array,
                    indices,
                    value,
                    ..
                } => {
                    let issue = abs(slot.issue);
                    let data = table.at(hb, *value, issue);
                    self.emit_store(hb, sched, &mut table, array, indices, data, issue, pos)?;
                    table.values[i] = Some((data, VStage::At(issue)));
                }
            }
        }
        Ok(())
    }

    /// The per-dimension access plan: constant bank index, dynamic bank
    /// index (needs decode hardware), or a packed (address) index.
    fn index_plan(
        &self,
        sched: &ScheduledDfg,
        array: &str,
        indices: &[usize],
    ) -> Result<Vec<IndexPlan>, ScheduleError> {
        let decl = self
            .kernel
            .array(array)
            .ok_or_else(|| ScheduleError(format!("unknown array '{array}'")))?;
        let mut out = Vec::with_capacity(indices.len());
        for (d, &n) in indices.iter().enumerate() {
            if decl.partition_dims.contains(&d) {
                match &sched.nodes[n] {
                    DfgNode::Const(v, _) => out.push(IndexPlan::ConstBank(*v)),
                    _ => out.push(IndexPlan::DynamicBank {
                        node: n,
                        size: decl.dims[d],
                    }),
                }
            } else {
                out.push(IndexPlan::Packed(n));
            }
        }
        Ok(out)
    }

    /// Enumerate all bank combinations of the dynamic distributed dims.
    fn bank_combos(plan: &[IndexPlan]) -> Vec<Vec<i64>> {
        let mut combos: Vec<Vec<i64>> = vec![vec![]];
        for p in plan {
            if let IndexPlan::DynamicBank { size, .. } = p {
                let mut next = Vec::new();
                for c in &combos {
                    for b in 0..*size as i64 {
                        let mut c2 = c.clone();
                        c2.push(b);
                        next.push(c2);
                    }
                }
                combos = next;
            }
        }
        combos
    }

    /// A load; dynamic partitioned dims become a read-all-banks +
    /// select-tree decode (the banking mux a real HLS tool infers).
    #[allow(clippy::too_many_arguments)]
    fn emit_load(
        &mut self,
        hb: &mut HirBuilder,
        sched: &ScheduledDfg,
        table: &mut ValueTable,
        array: &str,
        indices: &[usize],
        issue: i64,
        avail: i64,
        pos: TimePos,
    ) -> Result<ValueId, ScheduleError> {
        let plan = self.index_plan(sched, array, indices)?;
        let port = self
            .arrays
            .get(array)
            .and_then(|p| p.read)
            .ok_or_else(|| ScheduleError(format!("array '{array}' is not readable")))?;
        let combos = Self::bank_combos(&plan);
        if combos.len() == 1 {
            // All banks static: a single access.
            let mut idx = Vec::new();
            for p in &plan {
                match p {
                    IndexPlan::ConstBank(v) => idx.push(hb.const_val(*v)),
                    IndexPlan::Packed(n) => idx.push(table.at(hb, *n, issue)),
                    IndexPlan::DynamicBank { .. } => unreachable!(),
                }
            }
            return Ok(hb.mem_read(port, &idx, pos.root, issue));
        }
        // Read every candidate bank and select by the dynamic indices.
        let mut selected: Option<ValueId> = None;
        for combo in combos {
            let mut idx = Vec::new();
            let mut ci = 0;
            let mut hit: Option<ValueId> = None;
            for p in &plan {
                match p {
                    IndexPlan::ConstBank(v) => idx.push(hb.const_val(*v)),
                    IndexPlan::Packed(n) => idx.push(table.at(hb, *n, issue)),
                    IndexPlan::DynamicBank { node, .. } => {
                        let b = combo[ci];
                        ci += 1;
                        idx.push(hb.const_val(b));
                        let sel_idx = table.at(hb, *node, avail);
                        let cb = hb.const_val(b);
                        let eq = hb.cmp(hir::CmpPredicate::Eq, sel_idx, cb);
                        hit = Some(match hit {
                            None => eq,
                            Some(prev) => hb.and(prev, eq),
                        });
                    }
                }
            }
            let v = hb.mem_read(port, &idx, pos.root, issue);
            selected = Some(match selected {
                None => v,
                Some(prev) => hb.select(hit.expect("dynamic dim present"), v, prev),
            });
        }
        Ok(selected.expect("at least one bank"))
    }

    /// A store; dynamic partitioned dims become per-bank predicated writes.
    #[allow(clippy::too_many_arguments)]
    fn emit_store(
        &mut self,
        hb: &mut HirBuilder,
        sched: &ScheduledDfg,
        table: &mut ValueTable,
        array: &str,
        indices: &[usize],
        data: ValueId,
        issue: i64,
        pos: TimePos,
    ) -> Result<(), ScheduleError> {
        let plan = self.index_plan(sched, array, indices)?;
        let port = self
            .arrays
            .get(array)
            .and_then(|p| p.write)
            .ok_or_else(|| ScheduleError(format!("array '{array}' is not writable")))?;
        let combos = Self::bank_combos(&plan);
        if combos.len() == 1 {
            let mut idx = Vec::new();
            for p in &plan {
                match p {
                    IndexPlan::ConstBank(v) => idx.push(hb.const_val(*v)),
                    IndexPlan::Packed(n) => idx.push(table.at(hb, *n, issue)),
                    IndexPlan::DynamicBank { .. } => unreachable!(),
                }
            }
            hb.mem_write(data, port, &idx, pos.root, issue);
            return Ok(());
        }
        for combo in combos {
            let mut idx = Vec::new();
            let mut ci = 0;
            let mut hit: Option<ValueId> = None;
            for p in &plan {
                match p {
                    IndexPlan::ConstBank(v) => idx.push(hb.const_val(*v)),
                    IndexPlan::Packed(n) => idx.push(table.at(hb, *n, issue)),
                    IndexPlan::DynamicBank { node, .. } => {
                        let b = combo[ci];
                        ci += 1;
                        idx.push(hb.const_val(b));
                        let sel_idx = table.at(hb, *node, issue);
                        let cb = hb.const_val(b);
                        let eq = hb.cmp(hir::CmpPredicate::Eq, sel_idx, cb);
                        hit = Some(match hit {
                            None => eq,
                            Some(prev) => hb.and(prev, eq),
                        });
                    }
                }
            }
            let g = hb.if_op(hit.expect("dynamic dim present"), pos.root, issue, false);
            hb.in_then(g, |hb| hb.mem_write(data, port, &idx, pos.root, issue));
        }
        Ok(())
    }
}

/// How one memref dimension is indexed by an access.
#[derive(Clone, Copy, Debug)]
enum IndexPlan {
    /// Distributed dim with a compile-time-constant index.
    ConstBank(i64),
    /// Distributed dim indexed dynamically: decode hardware required.
    DynamicBank { node: usize, size: u64 },
    /// Packed dim (part of the in-bank address).
    Packed(usize),
}

/// When a DFG value is valid.
#[derive(Clone, Copy, Debug)]
enum VStage {
    /// Constants: valid at every instant.
    Always,
    /// Valid at this absolute offset from the group\'s root.
    At(i64),
}

struct ValueTable {
    values: Vec<Option<(ValueId, VStage)>>,
    /// Delay cache: (node, target offset) -> delayed value.
    delayed: HashMap<(usize, i64), ValueId>,
    root: ValueId,
}

impl ValueTable {
    /// The value of node `n` at absolute offset `target`, delaying if
    /// needed (the per-stage registering characteristic of HLS output).
    fn at(&mut self, hb: &mut HirBuilder, n: usize, target: i64) -> ValueId {
        let (v, stage) = self.values[n].expect("DFG is topologically ordered");
        match stage {
            VStage::Always => v,
            VStage::At(def) if def == target => v,
            VStage::At(def) => {
                assert!(target > def, "consumer scheduled before producer");
                let root = self.root;
                *self
                    .delayed
                    .entry((n, target))
                    .or_insert_with(|| hb.delay(v, target - def, root, def))
            }
        }
    }
}
