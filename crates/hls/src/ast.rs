//! The C-like kernel IR accepted by the HLS baseline compiler.
//!
//! Mirrors the subset of C that Vivado HLS kernels in the paper's evaluation
//! use: scalar locals, multidimensional arrays, counted `for` loops with
//! `#pragma HLS pipeline II=n` / `unroll` / `array_partition` equivalents,
//! conditionals, and integer arithmetic.

use std::fmt;

/// Direction of an array interface.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArrayDir {
    In,
    Out,
    InOut,
}

/// An array declaration (argument or local buffer).
#[derive(Clone, Debug)]
pub struct ArrayDecl {
    pub name: String,
    pub elem_width: u32,
    pub dims: Vec<u64>,
    /// Dimensions completely partitioned into banks
    /// (`#pragma HLS array_partition complete dim=k`, 0-based here).
    pub partition_dims: Vec<usize>,
    /// Interface arrays are ports; locals become on-chip RAM.
    pub is_arg: bool,
    pub dir: ArrayDir,
}

impl ArrayDecl {
    /// Number of banks after partitioning.
    pub fn num_banks(&self) -> u64 {
        self.partition_dims.iter().map(|&d| self.dims[d]).product()
    }

    /// Elements per bank.
    pub fn bank_size(&self) -> u64 {
        let total: u64 = self.dims.iter().product();
        total / self.num_banks()
    }

    /// Total number of elements.
    pub fn num_elements(&self) -> u64 {
        self.dims.iter().product()
    }
}

/// A scalar argument or local variable.
#[derive(Clone, Debug)]
pub struct ScalarDecl {
    pub name: String,
    pub width: u32,
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KOp {
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl KOp {
    /// Whether this is a comparison (1-bit result).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            KOp::Eq | KOp::Ne | KOp::Lt | KOp::Le | KOp::Gt | KOp::Ge
        )
    }
}

/// Expressions.
#[derive(Clone, Debug)]
pub enum KExpr {
    /// Integer literal with a width.
    Const(i64, u32),
    /// Scalar variable or loop counter reference.
    Var(String),
    /// `a[i][j]` read.
    ArrayRead { array: String, indices: Vec<KExpr> },
    /// Binary operation.
    Bin {
        op: KOp,
        lhs: Box<KExpr>,
        rhs: Box<KExpr>,
    },
    /// `cond ? a : b`.
    Select {
        cond: Box<KExpr>,
        then: Box<KExpr>,
        els: Box<KExpr>,
    },
}

#[allow(clippy::should_implement_trait)] // `add`/`mul` are expression constructors
impl KExpr {
    pub fn c(v: i64, w: u32) -> KExpr {
        KExpr::Const(v, w)
    }
    pub fn var(name: impl Into<String>) -> KExpr {
        KExpr::Var(name.into())
    }
    pub fn read(array: impl Into<String>, indices: Vec<KExpr>) -> KExpr {
        KExpr::ArrayRead {
            array: array.into(),
            indices,
        }
    }
    pub fn bin(op: KOp, lhs: KExpr, rhs: KExpr) -> KExpr {
        KExpr::Bin {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }
    pub fn add(lhs: KExpr, rhs: KExpr) -> KExpr {
        KExpr::bin(KOp::Add, lhs, rhs)
    }
    pub fn mul(lhs: KExpr, rhs: KExpr) -> KExpr {
        KExpr::bin(KOp::Mul, lhs, rhs)
    }
}

/// Loop pragmas (`#pragma HLS ...`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoopPragmas {
    /// Pipeline with a *requested* initiation interval; the scheduler may
    /// settle for a larger feasible II (exactly like Vivado HLS).
    pub pipeline_ii: Option<u32>,
    /// Fully unroll the loop.
    pub unroll: bool,
}

/// Statements.
#[derive(Clone, Debug)]
pub enum KStmt {
    /// `var = expr;` (scalar local, single assignment per iteration).
    Assign { var: String, expr: KExpr },
    /// `array[i][j] = expr;`
    Store {
        array: String,
        indices: Vec<KExpr>,
        value: KExpr,
    },
    /// Counted for loop with constant bounds.
    For {
        var: String,
        lb: i64,
        ub: i64,
        step: i64,
        pragmas: LoopPragmas,
        body: Vec<KStmt>,
    },
    /// `if (cond) { .. } else { .. }` — lowered to predicated execution.
    If {
        cond: KExpr,
        then: Vec<KStmt>,
        els: Vec<KStmt>,
    },
}

/// A complete kernel.
#[derive(Clone, Debug)]
pub struct Kernel {
    pub name: String,
    pub scalars: Vec<ScalarDecl>,
    pub arrays: Vec<ArrayDecl>,
    pub locals: Vec<ScalarDecl>,
    /// Loop-variable widths: Vivado HLS defaults counters to the C type
    /// (32-bit `int`) unless the source narrows them — the "manual
    /// optimization" of the paper's Table 4 sets these smaller.
    pub loop_var_width: u32,
    pub body: Vec<KStmt>,
}

impl Kernel {
    pub fn new(name: impl Into<String>) -> Self {
        Kernel {
            name: name.into(),
            scalars: Vec::new(),
            arrays: Vec::new(),
            locals: Vec::new(),
            loop_var_width: 32,
            body: Vec::new(),
        }
    }

    /// Add an input array argument.
    pub fn in_array(&mut self, name: &str, elem_width: u32, dims: &[u64]) -> &mut Self {
        self.arrays.push(ArrayDecl {
            name: name.into(),
            elem_width,
            dims: dims.to_vec(),
            partition_dims: vec![],
            is_arg: true,
            dir: ArrayDir::In,
        });
        self
    }

    /// Add an output array argument.
    pub fn out_array(&mut self, name: &str, elem_width: u32, dims: &[u64]) -> &mut Self {
        self.arrays.push(ArrayDecl {
            name: name.into(),
            elem_width,
            dims: dims.to_vec(),
            partition_dims: vec![],
            is_arg: true,
            dir: ArrayDir::Out,
        });
        self
    }

    /// Add a local buffer (on-chip RAM), optionally partitioned.
    pub fn local_array(
        &mut self,
        name: &str,
        elem_width: u32,
        dims: &[u64],
        partition_dims: &[usize],
    ) -> &mut Self {
        self.arrays.push(ArrayDecl {
            name: name.into(),
            elem_width,
            dims: dims.to_vec(),
            partition_dims: partition_dims.to_vec(),
            is_arg: false,
            dir: ArrayDir::InOut,
        });
        self
    }

    /// Add a scalar argument.
    pub fn scalar_arg(&mut self, name: &str, width: u32) -> &mut Self {
        self.scalars.push(ScalarDecl {
            name: name.into(),
            width,
        });
        self
    }

    /// Declare a scalar local.
    pub fn local(&mut self, name: &str, width: u32) -> &mut Self {
        self.locals.push(ScalarDecl {
            name: name.into(),
            width,
        });
        self
    }

    /// Find an array by name.
    pub fn array(&self, name: &str) -> Option<&ArrayDecl> {
        self.arrays.iter().find(|a| a.name == name)
    }

    /// Width of a named scalar/local (loop vars get `loop_var_width`).
    pub fn scalar_width(&self, name: &str) -> Option<u32> {
        self.scalars
            .iter()
            .chain(&self.locals)
            .find(|s| s.name == name)
            .map(|s| s.width)
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "kernel {}(...)", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_banking_math() {
        let a = ArrayDecl {
            name: "w".into(),
            elem_width: 32,
            dims: vec![4, 8],
            partition_dims: vec![0],
            is_arg: false,
            dir: ArrayDir::InOut,
        };
        assert_eq!(a.num_banks(), 4);
        assert_eq!(a.bank_size(), 8);
        assert_eq!(a.num_elements(), 32);
    }

    #[test]
    fn kernel_builder() {
        let mut k = Kernel::new("vadd");
        k.in_array("a", 32, &[64])
            .in_array("b", 32, &[64])
            .out_array("c", 32, &[64]);
        k.local("t", 32);
        assert_eq!(k.arrays.len(), 3);
        assert_eq!(k.scalar_width("t"), Some(32));
        assert!(k.array("a").is_some());
        assert!(k.array("zz").is_none());
    }
}
