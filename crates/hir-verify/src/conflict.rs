//! Static memory-port conflict detection (paper §2, §4.5).
//!
//! Each memref value is one port of an on-chip buffer. Two *different*
//! accesses through the same port in the same clock cycle are undefined
//! behaviour unless they provably hit the same address or provably land in
//! different banks (a distributed-dimension index differs statically).
//!
//! Within a loop of static initiation interval `II`, two accesses at offsets
//! `o1`, `o2` from the iteration time collide iff `o1 ≡ o2 (mod II)`.

use crate::validity::ScheduleInfo;
use hir::dialect::opname;
use hir::ops::{ConstantOp, FuncOp, MemReadOp, MemWriteOp};
use hir::types::MemrefInfo;
use ir::{Diagnostic, DiagnosticEngine, Module, OpId, ValueId};
use std::collections::HashMap;

#[derive(Clone, Debug, PartialEq)]
enum Index {
    /// Statically known (a `hir.constant` operand).
    Const(i64),
    /// Dynamic; identified by its SSA value.
    Dynamic(ValueId),
}

#[derive(Clone, Debug)]
struct Access {
    op: OpId,
    root: ValueId,
    offset: i64,
    indices: Vec<Index>,
    is_read: bool,
    /// Access sits inside an `hir.if` branch: statically unknowable.
    predicated: bool,
}

/// Detect port conflicts in `func`, emitting diagnostics. Returns the number
/// of conflicts found.
pub fn check_port_conflicts(
    m: &Module,
    func: FuncOp,
    info: &ScheduleInfo,
    diags: &mut DiagnosticEngine,
) -> usize {
    if func.is_external(m) {
        return 0;
    }
    // Group accesses by memref value (port).
    let mut per_port: HashMap<ValueId, Vec<Access>> = HashMap::new();
    m.walk(func.id(), &mut |op| {
        let (mem, indices, is_read, root, offset) = match m.op(op).name().as_str() {
            opname::MEM_READ => {
                let r = MemReadOp(op);
                let Some(t) = hir::ops::time_operand(m, op) else {
                    return;
                };
                (r.memref(m), r.indices(m), true, t, r.offset(m))
            }
            opname::MEM_WRITE => {
                let w = MemWriteOp(op);
                let Some(t) = hir::ops::time_operand(m, op) else {
                    return;
                };
                (w.memref(m), w.indices(m), false, t, w.offset(m))
            }
            _ => return,
        };
        let indices = indices
            .into_iter()
            .map(
                |v| match m.defining_op(v).and_then(|d| ConstantOp::wrap(m, d)) {
                    Some(c) => Index::Const(c.int_value(m)),
                    None => Index::Dynamic(v),
                },
            )
            .collect();
        let predicated = m.enclosing_op(op, opname::IF).is_some();
        per_port.entry(mem).or_default().push(Access {
            op,
            root,
            offset,
            indices,
            is_read,
            predicated,
        });
    });

    let mut conflicts = 0;
    for (mem, accesses) in per_port {
        obs::counter_add("verify", "port_accesses_checked", accesses.len() as u64);
        let Some(memref_info) = MemrefInfo::from_type(&m.value_type(mem)) else {
            continue;
        };
        for i in 0..accesses.len() {
            for j in (i + 1)..accesses.len() {
                let (a, b) = (&accesses[i], &accesses[j]);
                if a.predicated || b.predicated {
                    // Gated by runtime conditions; the interpreter and the
                    // generated RTL assertions check these dynamically.
                    continue;
                }
                if a.root != b.root {
                    // Different scopes: cannot reason statically; the
                    // interpreter/Verilog assertions check at runtime.
                    continue;
                }
                // Inside a loop with static II the port is exercised every II
                // cycles: offsets collide iff congruent mod II. Elsewhere the
                // schedule runs once: offsets collide iff equal.
                let collide = match info.root_ii.get(&a.root) {
                    Some(&ii) => (a.offset - b.offset).rem_euclid(ii) == 0,
                    None => a.offset == b.offset,
                };
                if !collide {
                    continue;
                }
                // Exemption 1: a distributed dimension differs statically.
                let different_bank = memref_info
                    .dims
                    .iter()
                    .zip(a.indices.iter().zip(&b.indices))
                    .any(|(dim, (ia, ib))| {
                        dim.is_distributed()
                            && matches!((ia, ib), (Index::Const(x), Index::Const(y)) if x != y)
                    });
                if different_bank {
                    continue;
                }
                // Exemption 2: provably the same address (all indices equal).
                let same_address = a.indices == b.indices;
                if same_address && a.is_read && b.is_read {
                    continue;
                }
                conflicts += 1;
                let what = match (a.is_read, b.is_read) {
                    (true, true) => "reads",
                    (false, false) => "writes",
                    _ => "a read and a write",
                };
                diags.emit(
                    Diagnostic::error(
                        m.op(b.op).loc().clone(),
                        format!(
                            "Schedule error: two {what} on the same memory port in the same \
                             cycle (offsets {} and {})!",
                            a.offset, b.offset
                        ),
                    )
                    .with_snippet(hir::pretty_op(m, b.op))
                    .with_note_snippet(
                        m.op(a.op).loc().clone(),
                        "Conflicting access here.",
                        hir::pretty_op(m, a.op),
                    ),
                );
            }
        }
    }
    obs::counter_add("verify", "port_conflicts", conflicts as u64);
    conflicts
}
