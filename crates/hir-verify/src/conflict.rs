//! Static memory-port conflict detection (paper §2, §4.5).
//!
//! Each memref value is one port of an on-chip buffer. Two *different*
//! accesses through the same port in the same clock cycle are undefined
//! behaviour unless they provably hit the same address or provably land in
//! different banks (a distributed-dimension index differs statically).
//!
//! Within a loop of static initiation interval `II`, two accesses at offsets
//! `o1`, `o2` from the iteration time collide iff `o1 ≡ o2 (mod II)`.

use crate::validity::ScheduleInfo;
use hir::dialect::opname;
use hir::ops::{ConstantOp, FuncOp, MemReadOp, MemWriteOp};
use hir::types::MemrefInfo;
use ir::{Diagnostic, DiagnosticEngine, Module, OpId, ValueId};
use std::collections::HashMap;

#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum Index {
    /// Statically known (a `hir.constant` operand).
    Const(i64),
    /// Dynamic; identified by its SSA value.
    Dynamic(ValueId),
}

#[derive(Clone, Debug)]
struct Access {
    op: OpId,
    root: ValueId,
    offset: i64,
    indices: Vec<Index>,
    is_read: bool,
    /// Access sits inside an `hir.if` branch: statically unknowable.
    predicated: bool,
}

/// Detect port conflicts in `func`, emitting diagnostics. Returns the number
/// of conflicts found.
pub fn check_port_conflicts(
    m: &Module,
    func: FuncOp,
    info: &ScheduleInfo,
    diags: &mut DiagnosticEngine,
) -> usize {
    if func.is_external(m) {
        return 0;
    }
    // Group accesses by memref value (port).
    let mut per_port: HashMap<ValueId, Vec<Access>> = HashMap::new();
    m.walk(func.id(), &mut |op| {
        let (mem, indices, is_read, root, offset) = match m.op(op).name().as_str() {
            opname::MEM_READ => {
                let r = MemReadOp(op);
                let Some(t) = hir::ops::time_operand(m, op) else {
                    return;
                };
                (r.memref(m), r.indices(m), true, t, r.offset(m))
            }
            opname::MEM_WRITE => {
                let w = MemWriteOp(op);
                let Some(t) = hir::ops::time_operand(m, op) else {
                    return;
                };
                (w.memref(m), w.indices(m), false, t, w.offset(m))
            }
            _ => return,
        };
        let indices = indices
            .into_iter()
            .map(
                |v| match m.defining_op(v).and_then(|d| ConstantOp::wrap(m, d)) {
                    Some(c) => Index::Const(c.int_value(m)),
                    None => Index::Dynamic(v),
                },
            )
            .collect();
        let predicated = m.enclosing_op(op, opname::IF).is_some();
        per_port.entry(mem).or_default().push(Access {
            op,
            root,
            offset,
            indices,
            is_read,
            predicated,
        });
    });

    let mut conflicts = 0;
    for (mem, accesses) in per_port {
        obs::counter_add("verify", "port_accesses_checked", accesses.len() as u64);
        let Some(memref_info) = MemrefInfo::from_type(&m.value_type(mem)) else {
            continue;
        };
        conflicts += check_port(m, &memref_info, &accesses, info, diags);
    }
    obs::counter_add("verify", "port_conflicts", conflicts as u64);
    conflicts
}

/// Check one port's accesses with a grouping sweep instead of an all-pairs
/// scan: accesses only collide timewise within one (root, offset mod II)
/// bucket, and inside a bucket they are partitioned into same-address
/// classes and bank-signature groups so that provably-exempt pairs are
/// never enumerated. A conflict-free port costs O(k) hashing; only actual
/// conflicts pay per-pair diagnostics.
fn check_port(
    m: &Module,
    memref_info: &MemrefInfo,
    accesses: &[Access],
    info: &ScheduleInfo,
    diags: &mut DiagnosticEngine,
) -> usize {
    // Predicated accesses are gated by runtime conditions; the interpreter
    // and the generated RTL assertions check those dynamically. Accesses
    // under different roots are in different scopes: nothing can be proven
    // statically, so only same-root accesses are compared. Inside a loop
    // with static II the port is exercised every II cycles: offsets collide
    // iff congruent mod II. Elsewhere the schedule runs once: offsets
    // collide iff equal.
    let mut buckets: HashMap<(ValueId, i64), Vec<usize>> = HashMap::new();
    for (idx, a) in accesses.iter().enumerate() {
        if a.predicated {
            continue;
        }
        let key = match info.root_ii.get(&a.root) {
            Some(&ii) => a.offset.rem_euclid(ii),
            None => a.offset,
        };
        buckets.entry((a.root, key)).or_default().push(idx);
    }

    let dist_dims: Vec<usize> = memref_info
        .dims
        .iter()
        .enumerate()
        .filter(|(_, d)| d.is_distributed())
        .map(|(k, _)| k)
        .collect();

    let mut conflicts = 0;
    for members in buckets.into_values() {
        if members.len() < 2 {
            continue;
        }
        // Same-address classes: accesses with identical index vectors.
        let mut classes: HashMap<&[Index], Vec<usize>> = HashMap::new();
        for &i in &members {
            classes.entry(&accesses[i].indices).or_default().push(i);
        }
        let class_list: Vec<Vec<usize>> = classes.into_values().collect();

        // Within a class every pair hits the same address: parallel reads
        // are fine, anything involving a write conflicts.
        for class in &class_list {
            if class.iter().all(|&i| accesses[i].is_read) {
                continue;
            }
            for x in 0..class.len() {
                for y in (x + 1)..class.len() {
                    let (a, b) = (class[x], class[y]);
                    if accesses[a].is_read && accesses[b].is_read {
                        continue;
                    }
                    conflicts += report_conflict(m, accesses, a, b, diags);
                }
            }
        }

        // Across classes the addresses differ (or are not provably equal),
        // so only the different-bank exemption applies: exempt iff some
        // distributed dimension has two distinct constant indices. Classes
        // whose distributed indices are all constant are grouped by that
        // signature — distinct signatures are provably different banks and
        // never enumerated. Classes with a dynamic distributed index must
        // be compared against everyone.
        let sig_of = |class: &Vec<usize>| -> Option<Vec<i64>> {
            let ind = &accesses[class[0]].indices;
            dist_dims
                .iter()
                .map(|&k| match ind.get(k) {
                    Some(&Index::Const(x)) => Some(x),
                    _ => None,
                })
                .collect()
        };
        let sigs: Vec<Option<Vec<i64>>> = class_list.iter().map(sig_of).collect();
        let mut by_sig: HashMap<&[i64], Vec<usize>> = HashMap::new();
        let mut partial: Vec<usize> = Vec::new();
        for (c, sig) in sigs.iter().enumerate() {
            match sig {
                Some(s) => by_sig.entry(s).or_default().push(c),
                None => partial.push(c),
            }
        }
        let mut conflicting_class_pairs: Vec<(usize, usize)> = Vec::new();
        for group in by_sig.values() {
            for x in 0..group.len() {
                for y in (x + 1)..group.len() {
                    conflicting_class_pairs.push((group[x], group[y]));
                }
            }
        }
        for (pi, &c1) in partial.iter().enumerate() {
            // Partial vs every class after it (and vs all full-constant
            // classes), using the exact per-dimension exemption.
            let rep1 = &accesses[class_list[c1][0]].indices;
            let mut against: Vec<usize> = partial[(pi + 1)..].to_vec();
            against.extend(by_sig.values().flatten().copied());
            for c2 in against {
                let rep2 = &accesses[class_list[c2][0]].indices;
                let different_bank = dist_dims.iter().any(|&k| {
                    matches!(
                        (rep1.get(k), rep2.get(k)),
                        (Some(Index::Const(x)), Some(Index::Const(y))) if x != y
                    )
                });
                if !different_bank {
                    conflicting_class_pairs.push((c1, c2));
                }
            }
        }
        for (c1, c2) in conflicting_class_pairs {
            for &a in &class_list[c1] {
                for &b in &class_list[c2] {
                    conflicts += report_conflict(m, accesses, a, b, diags);
                }
            }
        }
    }
    conflicts
}

/// Emit the diagnostic for one conflicting access pair; returns 1.
fn report_conflict(
    m: &Module,
    accesses: &[Access],
    i: usize,
    j: usize,
    diags: &mut DiagnosticEngine,
) -> usize {
    // Report in program-collection order: the earlier access is the note.
    let (i, j) = if i < j { (i, j) } else { (j, i) };
    let (a, b) = (&accesses[i], &accesses[j]);
    let what = match (a.is_read, b.is_read) {
        (true, true) => "reads",
        (false, false) => "writes",
        _ => "a read and a write",
    };
    diags.emit(
        Diagnostic::error(
            m.op(b.op).loc().clone(),
            format!(
                "Schedule error: two {what} on the same memory port in the same \
                 cycle (offsets {} and {})!",
                a.offset, b.offset
            ),
        )
        .with_snippet(hir::pretty_op(m, b.op))
        .with_note_snippet(
            m.op(a.op).loc().clone(),
            "Conflicting access here.",
            hir::pretty_op(m, a.op),
        ),
    );
    1
}
