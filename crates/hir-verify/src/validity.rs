//! Value-validity analysis (paper §6.1).
//!
//! Every SSA value of primitive type in HIR is valid at a *specific time
//! instant*: a root time variable plus a static offset. This module computes
//! that validity for every value in a function and reports *schedule errors*
//! — operands consumed at a cycle where they do not hold valid data — in the
//! style of the paper's Figures 1b and 2b:
//!
//! ```text
//! test/HIR/err_add.mlir:13:5: error:
//! Schedule error: mismatched delay (0 vs 1) in address 0!
//! ```
//!
//! ## The model
//!
//! * A value defined at `(root, d)` inside a loop with static initiation
//!   interval `II` stays valid for the window `[d, d + II)` — the datapath
//!   registers are rewritten every `II` cycles (this is exactly why Figure 1
//!   is an error at `II = 1` but would be legal at `II = 2`).
//! * At function scope and for dynamic-II loops the window is 1 cycle: the
//!   conservative assumption that the scope may be re-entered every cycle.
//! * A value whose root belongs to a *strictly enclosing* scope is valid
//!   anywhere in the inner scope: paper §4.5 makes re-entry of an active
//!   loop undefined behaviour, so enclosing-scope registers are stable for
//!   the whole inner execution (e.g. the outer `%i` used inside the `j`-loop
//!   of the matrix transpose).
//! * Any other cross-root use is a schedule error.

use hir::dialect::opname;
use hir::ops::{
    self, CallOp, DelayOp, ForOp, FuncOp, IfOp, MemReadOp, MemWriteOp, UnrollForOp, YieldOp,
};
use hir::types;
use ir::{Diagnostic, DiagnosticEngine, Module, OpId, SymbolTable, ValueId};
use std::collections::HashMap;

/// When a value carries valid data.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Validity {
    /// Valid at every instant (constants).
    Always,
    /// A memref port (not a timed data value).
    Memref,
    /// A time variable usable as a scheduling root.
    TimeRoot,
    /// Valid at `root + offset` (for one scope window).
    At { root: ValueId, offset: i64 },
    /// Analysis gave up after a reported error.
    Unknown,
}

/// Per-function schedule facts, reusable by optimization passes.
#[derive(Debug, Default)]
pub struct ScheduleInfo {
    /// Validity of each SSA value.
    pub validity: HashMap<ValueId, Validity>,
    /// Scope id owning each root time variable's *instants*.
    pub root_scope: HashMap<ValueId, usize>,
    /// Parent scope of each scope (`scope 0` = function body).
    pub scope_parent: Vec<Option<usize>>,
    /// Validity window length of each root (static II, or 1).
    pub root_window: HashMap<ValueId, i64>,
    /// Static initiation interval of each loop op, when known.
    pub loop_ii: HashMap<OpId, Option<i64>>,
    /// For loop iteration-time roots with a *static* II: that II. Conflict
    /// analysis uses congruence modulo this value.
    pub root_ii: HashMap<ValueId, i64>,
}

impl ScheduleInfo {
    /// Whether scope `a` strictly encloses scope `b`.
    pub fn strictly_encloses(&self, a: usize, b: usize) -> bool {
        let mut cur = self.scope_parent.get(b).copied().flatten();
        while let Some(s) = cur {
            if s == a {
                return true;
            }
            cur = self.scope_parent.get(s).copied().flatten();
        }
        false
    }

    fn window(&self, root: ValueId) -> i64 {
        self.root_window.get(&root).copied().unwrap_or(1)
    }
}

/// Analyze one function, emitting schedule-error diagnostics.
pub fn analyze_function(
    m: &Module,
    func: FuncOp,
    symbols: &SymbolTable,
    diags: &mut DiagnosticEngine,
) -> ScheduleInfo {
    let mut a = Analyzer {
        m,
        symbols,
        info: ScheduleInfo::default(),
        diags,
    };
    a.run(func);
    a.info
}

struct Analyzer<'a> {
    m: &'a Module,
    symbols: &'a SymbolTable,
    info: ScheduleInfo,
    diags: &'a mut DiagnosticEngine,
}

impl Analyzer<'_> {
    fn run(&mut self, func: FuncOp) {
        let m = self.m;
        if func.is_external(m) {
            return;
        }
        // Scope 0: the function body, rooted at %t.
        self.info.scope_parent.push(None);
        let t = func.time_var(m);
        self.info.validity.insert(t, Validity::TimeRoot);
        self.info.root_scope.insert(t, 0);
        self.info.root_window.insert(t, 1);
        for arg in func.args(m) {
            let ty = m.value_type(arg);
            let v = if types::is_memref(&ty) {
                Validity::Memref
            } else if types::is_const(&ty) {
                Validity::Always
            } else {
                // Scalar arguments arrive at %t plus their declared delay.
                Validity::At { root: t, offset: 0 }
            };
            self.info.validity.insert(arg, v);
        }
        // Honour declared argument delays.
        let delays = func.arg_delays(m);
        for (arg, d) in func.args(m).into_iter().zip(delays) {
            if let Some(Validity::At { offset, .. }) = self.info.validity.get_mut(&arg) {
                *offset = d;
            }
        }
        self.analyze_block(func.body(m), 0);
        self.check_return(func);
    }

    fn analyze_block(&mut self, block: ir::BlockId, scope: usize) {
        for &op in self.m.block(block).ops() {
            self.analyze_op(op, scope);
        }
    }

    fn error(&mut self, op: OpId, message: String) -> Validity {
        self.diags.emit(
            Diagnostic::error(self.m.op(op).loc().clone(), message)
                .with_snippet(hir::pretty_op(self.m, op)),
        );
        Validity::Unknown
    }

    fn error_with_def(&mut self, op: OpId, message: String, operand: ValueId) {
        let mut d = Diagnostic::error(self.m.op(op).loc().clone(), message)
            .with_snippet(hir::pretty_op(self.m, op));
        // Block arguments (loop induction variables) are "defined" by the op
        // that owns their block — the paper's Figure 1b points the note at
        // the hir.for line.
        let def = match self.m.value(operand).def() {
            ir::ValueDef::OpResult { op: d, .. } => Some(d),
            ir::ValueDef::BlockArg { block, .. } => Some(self.m.block_parent_op(block)),
        };
        if let Some(def) = def {
            d = d.with_note_snippet(
                self.m.op(def).loc().clone(),
                "Prior definition here.",
                hir::pretty_op(self.m, def),
            );
        }
        self.diags.emit(d);
    }

    fn validity(&self, v: ValueId) -> Validity {
        self.info
            .validity
            .get(&v)
            .cloned()
            .unwrap_or(Validity::Unknown)
    }

    /// Check that `operand` holds valid data when consumed at `(root, at)`.
    /// `what` names the operand in the diagnostic ("address 0", "right
    /// operand", "data"...).
    fn check_use(&mut self, op: OpId, operand: ValueId, root: ValueId, at: i64, what: &str) {
        match self.validity(operand) {
            Validity::Always | Validity::Unknown => {}
            Validity::Memref => {
                self.error(
                    op,
                    format!("Schedule error: memref used as data in {what}!"),
                );
            }
            Validity::TimeRoot => {
                self.error(
                    op,
                    format!("Schedule error: time variable used as data in {what}!"),
                );
            }
            Validity::At { root: dr, offset } => {
                if dr == root {
                    let window = self.info.window(dr);
                    if !(offset <= at && at < offset + window) {
                        self.error_with_def(
                            op,
                            format!(
                                "Schedule error: mismatched delay ({offset} vs {at}) in {what}!"
                            ),
                            operand,
                        );
                    }
                } else {
                    let def_scope = self.info.root_scope.get(&dr).copied();
                    let use_scope = self.info.root_scope.get(&root).copied();
                    let ok = match (def_scope, use_scope) {
                        (Some(d), Some(u)) => self.info.strictly_encloses(d, u),
                        _ => false,
                    };
                    if !ok {
                        self.error_with_def(
                            op,
                            format!(
                                "Schedule error: {what} was defined in a different time scope \
                                 and is not provably stable here!"
                            ),
                            operand,
                        );
                    }
                }
            }
        }
    }

    /// The `(root, offset)` instant at which a scheduled op executes.
    fn op_instant(&mut self, op: OpId) -> Option<(ValueId, i64)> {
        let time = ops::time_operand(self.m, op)?;
        match self.validity(time) {
            Validity::TimeRoot => Some((time, ops::time_offset(self.m, op))),
            Validity::Unknown => None,
            _ => {
                self.error(
                    op,
                    "Schedule error: 'at' operand is not a time variable!".to_string(),
                );
                None
            }
        }
    }

    fn analyze_op(&mut self, op: OpId, scope: usize) {
        let m = self.m;
        match m.op(op).name().as_str() {
            opname::CONSTANT => {
                let res = m.op(op).results()[0];
                self.info.validity.insert(res, Validity::Always);
            }
            opname::ALLOC => {
                for &r in m.op(op).results() {
                    self.info.validity.insert(r, Validity::Memref);
                }
            }
            opname::DELAY => {
                let d = DelayOp(op);
                if let Some((root, at)) = self.op_instant(op) {
                    self.check_use(op, d.input(m), root, at, "input");
                    self.info.validity.insert(
                        d.result(m),
                        Validity::At {
                            root,
                            offset: at + d.by(m),
                        },
                    );
                } else {
                    self.info.validity.insert(d.result(m), Validity::Unknown);
                }
            }
            opname::MEM_READ => {
                let r = MemReadOp(op);
                if let Some((root, at)) = self.op_instant(op) {
                    for (i, idx) in r.indices(m).into_iter().enumerate() {
                        self.check_use(op, idx, root, at, &format!("address {i}"));
                    }
                    self.info.validity.insert(
                        r.result(m),
                        Validity::At {
                            root,
                            offset: at + r.latency(m),
                        },
                    );
                } else {
                    self.info.validity.insert(r.result(m), Validity::Unknown);
                }
            }
            opname::MEM_WRITE => {
                let w = MemWriteOp(op);
                if let Some((root, at)) = self.op_instant(op) {
                    for (i, idx) in w.indices(m).into_iter().enumerate() {
                        self.check_use(op, idx, root, at, &format!("address {i}"));
                    }
                    self.check_use(op, w.value(m), root, at, "data");
                }
            }
            opname::CALL => self.analyze_call(op),
            opname::FOR => self.analyze_for(op, scope),
            opname::UNROLL_FOR => self.analyze_unroll_for(op, scope),
            opname::IF => {
                let i = IfOp(op);
                if let Some((root, at)) = self.op_instant(op) {
                    self.check_use(op, i.condition(m), root, at, "condition");
                }
                self.analyze_block(i.then_block(m), scope);
                if let Some(e) = i.else_block(m) {
                    self.analyze_block(e, scope);
                }
            }
            opname::YIELD | opname::RETURN => {
                // Checked by the enclosing construct.
            }
            _ => self.analyze_compute(op),
        }
    }

    fn analyze_compute(&mut self, op: OpId) {
        let m = self.m;
        let operands = m.op(op).operands().to_vec();
        // Find the governing root: the operand root with the deepest scope.
        let mut best: Option<(ValueId, i64, usize)> = None;
        for &o in &operands {
            if let Validity::At { root, offset } = self.validity(o) {
                let depth = self.scope_depth(root);
                match &mut best {
                    Some((br, boff, bd)) => {
                        if depth > *bd || (depth == *bd && *br == root && offset > *boff) {
                            *br = root;
                            *boff = offset;
                            *bd = depth;
                        }
                    }
                    None => best = Some((root, offset, depth)),
                }
            }
        }
        let result_validity = match best {
            None => Validity::Always, // all-constant inputs
            Some((root, offset, _)) => {
                let names = operand_names(operands.len());
                for (i, &o) in operands.iter().enumerate() {
                    self.check_use(op, o, root, offset, names[i.min(names.len() - 1)]);
                }
                Validity::At { root, offset }
            }
        };
        for &r in m.op(op).results() {
            self.info.validity.insert(r, result_validity.clone());
        }
    }

    fn scope_depth(&self, root: ValueId) -> usize {
        let Some(&scope) = self.info.root_scope.get(&root) else {
            return 0;
        };
        let mut depth = 0;
        let mut cur = self.info.scope_parent.get(scope).copied().flatten();
        while let Some(s) = cur {
            depth += 1;
            cur = self.info.scope_parent.get(s).copied().flatten();
        }
        depth
    }

    fn analyze_call(&mut self, op: OpId) {
        let m = self.m;
        let call = CallOp(op);
        let Some((root, at)) = self.op_instant(op) else {
            for &r in m.op(op).results() {
                self.info.validity.insert(r, Validity::Unknown);
            }
            return;
        };
        let callee = self
            .symbols
            .lookup(&call.callee(m))
            .and_then(|c| FuncOp::wrap(m, c));
        let Some(callee) = callee else {
            self.error(
                op,
                format!("Schedule error: unknown callee @{}!", call.callee(m)),
            );
            return;
        };
        let arg_delays = callee.arg_delays(m);
        for (i, arg) in call.args(m).into_iter().enumerate() {
            if matches!(self.validity(arg), Validity::Memref) {
                continue;
            }
            let d = arg_delays.get(i).copied().unwrap_or(0);
            self.check_use(op, arg, root, at + d, &format!("argument {i}"));
        }
        let result_delays = callee.result_delays(m);
        for (i, &r) in m.op(op).results().iter().enumerate() {
            let d = result_delays.get(i).copied().unwrap_or(0);
            self.info.validity.insert(
                r,
                Validity::At {
                    root,
                    offset: at + d,
                },
            );
        }
    }

    fn analyze_for(&mut self, op: OpId, scope: usize) {
        let m = self.m;
        let lp = ForOp(op);
        let instant = self.op_instant(op);
        if let Some((root, at)) = instant {
            for (operand, what) in [
                (lp.lower_bound(m), "lower bound"),
                (lp.upper_bound(m), "upper bound"),
                (lp.step(m), "step"),
            ] {
                self.check_use(op, operand, root, at, what);
            }
        }
        // New scope for the body.
        let body_scope = self.info.scope_parent.len();
        self.info.scope_parent.push(Some(scope));
        let ti = lp.iter_time(m);
        let iv = lp.induction_var(m);
        self.info.validity.insert(ti, Validity::TimeRoot);
        self.info.root_scope.insert(ti, body_scope);

        // Static II from the yield (when it targets %ti directly).
        let ii = lp.initiation_interval(m);
        self.info.loop_ii.insert(op, ii);
        self.info.root_window.insert(ti, ii.unwrap_or(1).max(1));
        if let Some(ii) = ii {
            self.info.root_ii.insert(ti, ii.max(1));
            if ii < 1 {
                self.error(
                    lp.yield_op(m).id(),
                    format!("Schedule error: hir.for initiation interval must be >= 1, got {ii}!"),
                );
            }
        }
        self.info.validity.insert(
            iv,
            Validity::At {
                root: ti,
                offset: 0,
            },
        );
        self.analyze_block(lp.body(m), body_scope);

        // The yield must target a root in scope.
        let y = lp.yield_op(m);
        let yt = YieldOp(y.id()).time(m);
        if !matches!(self.validity(yt), Validity::TimeRoot | Validity::Unknown) {
            self.error(
                y.id(),
                "Schedule error: hir.yield must target a time variable!".into(),
            );
        }

        // %tf is a new root whose instants live in the parent scope.
        let tf = lp.result_time(m);
        self.info.validity.insert(tf, Validity::TimeRoot);
        self.info.root_scope.insert(tf, scope);
        self.info.root_window.insert(tf, 1);
    }

    fn analyze_unroll_for(&mut self, op: OpId, scope: usize) {
        let m = self.m;
        let lp = UnrollForOp(op);
        let _ = self.op_instant(op);
        let body_scope = self.info.scope_parent.len();
        self.info.scope_parent.push(Some(scope));
        let ti = lp.iter_time(m);
        self.info.validity.insert(ti, Validity::TimeRoot);
        self.info.root_scope.insert(ti, body_scope);
        let ii = (lp.yield_op(m).time(m) == ti).then(|| lp.yield_op(m).offset(m));
        self.info.loop_ii.insert(op, ii);
        self.info.root_window.insert(ti, ii.unwrap_or(1).max(1));
        if let Some(ii) = ii {
            // II = 0 (all iterations at once) has no re-execution cadence.
            if ii >= 1 {
                self.info.root_ii.insert(ti, ii);
            }
        }
        self.info
            .validity
            .insert(lp.induction_var(m), Validity::Always);
        self.analyze_block(lp.body(m), body_scope);
        let tf = lp.result_time(m);
        self.info.validity.insert(tf, Validity::TimeRoot);
        self.info.root_scope.insert(tf, scope);
        self.info.root_window.insert(tf, 1);
    }

    fn check_return(&mut self, func: FuncOp) {
        let m = self.m;
        let Some(ret) = func.return_op(m) else { return };
        let declared = func.result_delays(m);
        let t = func.time_var(m);
        let operands = m.op(ret).operands().to_vec();
        if !operands.is_empty() && declared.len() != operands.len() {
            self.error(
                ret,
                format!(
                    "Schedule error: function returns {} values but declares {} result delays!",
                    operands.len(),
                    declared.len()
                ),
            );
            return;
        }
        for (i, (&v, &d)) in operands.iter().zip(&declared).enumerate() {
            match self.validity(v) {
                Validity::At { root, offset } if root == t && offset == d => {}
                Validity::Always | Validity::Unknown => {}
                Validity::At { root, offset } if root == t => {
                    self.error_with_def(
                        ret,
                        format!(
                            "Schedule error: mismatched delay ({offset} vs {d}) in return value {i}!"
                        ),
                        v,
                    );
                }
                _ => {
                    self.error_with_def(
                        ret,
                        format!(
                            "Schedule error: return value {i} is not scheduled on the function's \
                             time variable!"
                        ),
                        v,
                    );
                }
            }
        }
    }
}

fn operand_names(n: usize) -> &'static [&'static str] {
    match n {
        1 => &["operand"],
        2 => &["left operand", "right operand"],
        3 => &["condition", "left operand", "right operand"],
        _ => &["operand"],
    }
}
