//! # `hir-verify` — schedule verification for HIR (paper §6.1)
//!
//! HIR's SSA values carry *validity* information: the exact clock cycle
//! (relative to a time variable) at which they hold valid data. This crate
//! exploits that, plus the explicitly specified schedule, to detect at
//! compile time errors that an HDL cannot express:
//!
//! * **mismatched delays** — an operand consumed at a cycle where it no
//!   longer (or does not yet) hold its value, e.g. the paper's Figure 1
//!   (a loop with II=1 using the induction variable one cycle late);
//! * **pipeline imbalance** — Figure 2's multiply-accumulate where swapping
//!   a 2-stage multiplier for a 3-stage one desynchronizes the adder inputs;
//! * **memory-port conflicts** — two accesses through one port in the same
//!   cycle that are not provably same-address or different-bank.
//!
//! Run it as a [`SchedulePass`] in an [`ir::PassManager`], or call
//! [`verify_schedule`] directly.

pub mod conflict;
pub mod report;
pub mod validity;

pub use conflict::check_port_conflicts;
pub use report::{schedule_report, FunctionSchedule, LoopSchedule, OpSchedule, ScheduleReport};
pub use validity::{analyze_function, ScheduleInfo, Validity};

use hir::ops::FuncOp;
use ir::{DiagnosticEngine, Module, Pass, PassContext, PassResult, SymbolTable};

/// Verify the schedules of every function in the module.
///
/// # Errors
/// Emits diagnostics and returns `Err(error_count)` when schedule errors are
/// found.
pub fn verify_schedule(m: &Module, diags: &mut DiagnosticEngine) -> Result<(), usize> {
    let _span = obs::span("verify_schedule");
    let before = diags.error_count();
    let symbols = SymbolTable::build(m);
    for &top in m.top_ops() {
        let Some(func) = FuncOp::wrap(m, top) else {
            continue;
        };
        obs::counter_add("verify", "functions", 1);
        let info = validity::analyze_function(m, func, &symbols, diags);
        obs::counter_add("verify", "values_analyzed", info.validity.len() as u64);
        conflict::check_port_conflicts(m, func, &info, diags);
    }
    let found = diags.error_count() - before;
    obs::counter_add("verify", "schedule_errors", found as u64);
    if found == 0 {
        Ok(())
    } else {
        Err(found)
    }
}

/// [`verify_schedule`] fanned out over a worker pool: functions are
/// distributed across `threads` scoped threads (0 = auto via
/// [`ir::resolve_thread_count`]), each worker verifying against its own
/// clone of the module (schedule analysis resolves callee signatures
/// through the symbol table, so every worker needs the whole module — and
/// [`ir::Module`] is `Send` but deliberately not `Sync`, its layout-stamp
/// caches are single-threaded). Per-function diagnostics are merged in
/// module order, so output is byte-identical to the serial path at any
/// thread count.
///
/// # Errors
/// Emits diagnostics and returns `Err(error_count)` when schedule errors
/// are found.
pub fn verify_schedule_with_threads(
    m: &Module,
    diags: &mut DiagnosticEngine,
    threads: usize,
) -> Result<(), usize> {
    let funcs: Vec<ir::OpId> = m
        .top_ops()
        .iter()
        .copied()
        .filter(|&t| FuncOp::wrap(m, t).is_some())
        .collect();
    let workers = ir::resolve_thread_count(threads).min(funcs.len()).max(1);
    if workers <= 1 {
        return verify_schedule(m, diags);
    }
    let _span = obs::span("verify_schedule");
    let before = diags.error_count();
    let n = funcs.len();
    let slots: Vec<std::sync::Mutex<Vec<ir::Diagnostic>>> =
        (0..n).map(|_| std::sync::Mutex::new(Vec::new())).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for w in 0..workers {
            let funcs = &funcs;
            let slots = &slots;
            let next = &next;
            let m = m.clone();
            scope.spawn(move || {
                let mut span = obs::span_in(format!("worker {w}"), "verify_schedule worker");
                span.pid_tid(1, ir::WORKER_TID_BASE + w as u32);
                let symbols = SymbolTable::build(&m);
                loop {
                    let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if idx >= funcs.len() {
                        break;
                    }
                    let func = FuncOp::wrap(&m, funcs[idx]).expect("filtered to funcs");
                    obs::counter_add("verify", "functions", 1);
                    let mut local = DiagnosticEngine::new();
                    let info = validity::analyze_function(&m, func, &symbols, &mut local);
                    obs::counter_add("verify", "values_analyzed", info.validity.len() as u64);
                    conflict::check_port_conflicts(&m, func, &info, &mut local);
                    *slots[idx].lock().unwrap() = local.take();
                }
            });
        }
    });
    for slot in slots {
        for d in slot.into_inner().unwrap() {
            diags.emit(d);
        }
    }
    let found = diags.error_count() - before;
    obs::counter_add("verify", "schedule_errors", found as u64);
    if found == 0 {
        Ok(())
    } else {
        Err(found)
    }
}

/// Compute the schedule analysis for a single function without verifying the
/// whole module (used by optimization passes that need validity facts).
pub fn schedule_info(m: &Module, func: FuncOp) -> (ScheduleInfo, DiagnosticEngine) {
    let symbols = SymbolTable::build(m);
    let mut diags = DiagnosticEngine::new();
    let info = validity::analyze_function(m, func, &symbols, &mut diags);
    (info, diags)
}

/// Schedule verification as a pipeline pass.
#[derive(Debug, Default)]
pub struct SchedulePass;

impl Pass for SchedulePass {
    fn name(&self) -> &str {
        "hir-schedule-verify"
    }

    fn run(&mut self, module: &mut Module, cx: &mut PassContext<'_>) -> PassResult {
        match verify_schedule(module, cx.diags) {
            Ok(()) => PassResult::Unchanged,
            Err(_) => PassResult::Failed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hir::types::{MemKind, MemrefInfo, Port};
    use hir::HirBuilder;
    use ir::{Location, Type};

    /// Paper Figure 1a: array add whose mem_write consumes `%i` one cycle
    /// after the loop (II=1) has already incremented it.
    fn figure1_module(fix: bool) -> Module {
        let mut hb = HirBuilder::new();
        hb.set_loc(Location::file_line_col("test/HIR/err_add.mlir", 3, 1));
        let a = MemrefInfo::packed(&[128], Type::int(32), Port::Read, MemKind::BlockRam);
        let b = a.clone();
        let c = a.with_port(Port::Write);
        let f = hb.func(
            "Array_Add",
            &[("A", a.to_type()), ("B", b.to_type()), ("C", c.to_type())],
            &[],
        );
        let t = f.time_var(hb.module());
        let args = f.args(hb.module());
        let (c0, c128, c1) = (hb.const_val(0), hb.const_val(128), hb.const_val(1));
        hb.set_loc(Location::file_line_col("test/HIR/err_add.mlir", 8, 3));
        let lp = hb.for_loop(c0, c128, c1, t, 1, Type::int(8));
        hb.in_loop(lp, |hb, i, ti| {
            hb.set_loc(Location::file_line_col("test/HIR/err_add.mlir", 10, 5));
            let va = hb.mem_read(args[0], &[i], ti, 0);
            let vb = hb.mem_read(args[1], &[i], ti, 0);
            let sum = hb.add(va, vb);
            let addr = if fix { hb.delay(i, 1, ti, 0) } else { i };
            hb.set_loc(Location::file_line_col("test/HIR/err_add.mlir", 13, 5));
            hb.mem_write(sum, args[2], &[addr], ti, 1);
            hb.yield_at(ti, 1);
        });
        hb.return_(&[]);
        hb.finish()
    }

    #[test]
    fn figure1_schedule_error_detected() {
        let m = figure1_module(false);
        let mut diags = DiagnosticEngine::new();
        let err = verify_schedule(&m, &mut diags).unwrap_err();
        assert!(err >= 1);
        let text = diags.render();
        assert!(
            text.contains("Schedule error: mismatched delay (0 vs 1) in address 0!"),
            "expected the paper's Figure 1b message, got:\n{text}"
        );
        assert!(
            text.contains("test/HIR/err_add.mlir:13:5: error:"),
            "{text}"
        );
        assert!(text.contains("note: Prior definition here."), "{text}");
    }

    #[test]
    fn parallel_verify_is_byte_identical_to_serial() {
        // Four functions, two of them broken: the fan-out must report the
        // same diagnostics in the same (module) order at any thread count.
        let mut combined = Module::splice_top(&[
            figure1_module(false),
            figure1_module(true),
            figure1_module(false),
            figure1_module(true),
        ]);
        for (i, t) in combined.top_ops().to_vec().into_iter().enumerate() {
            combined.set_attr(t, ir::SYM_NAME, ir::Attribute::string(format!("f{i}")));
        }
        let mut serial = DiagnosticEngine::new();
        let serial_err = verify_schedule(&combined, &mut serial).unwrap_err();
        for threads in [2, 4, 8] {
            let mut par = DiagnosticEngine::new();
            let par_err = verify_schedule_with_threads(&combined, &mut par, threads).unwrap_err();
            assert_eq!(serial_err, par_err);
            assert_eq!(
                serial.render(),
                par.render(),
                "threads={threads} diagnostic order diverged"
            );
        }
    }

    #[test]
    fn figure1_fixed_design_verifies() {
        let m = figure1_module(true);
        let mut diags = DiagnosticEngine::new();
        assert!(
            verify_schedule(&m, &mut diags).is_ok(),
            "{}",
            diags.render()
        );
    }

    #[test]
    fn figure1_would_be_legal_at_ii_2() {
        // The paper explains the error exists *because* II = 1. Widening the
        // initiation interval to 2 makes the late use legal.
        let mut hb = HirBuilder::new();
        let a = MemrefInfo::packed(&[128], Type::int(32), Port::Read, MemKind::BlockRam);
        let c = a.with_port(Port::Write);
        let f = hb.func("AA", &[("A", a.to_type()), ("C", c.to_type())], &[]);
        let t = f.time_var(hb.module());
        let args = f.args(hb.module());
        let (c0, c128, c1) = (hb.const_val(0), hb.const_val(128), hb.const_val(1));
        let lp = hb.for_loop(c0, c128, c1, t, 1, Type::int(8));
        hb.in_loop(lp, |hb, i, ti| {
            let v = hb.mem_read(args[0], &[i], ti, 0);
            hb.mem_write(v, args[1], &[i], ti, 1); // i used at ti+1
            hb.yield_at(ti, 2); // II = 2: i is stable for two cycles
        });
        hb.return_(&[]);
        let m = hb.finish();
        let mut diags = DiagnosticEngine::new();
        assert!(
            verify_schedule(&m, &mut diags).is_ok(),
            "{}",
            diags.render()
        );
    }

    /// Paper Figure 2a: a MAC built from an external pipelined multiplier.
    fn figure2_module(mult_stages: i64) -> Module {
        let mut hb = HirBuilder::new();
        hb.set_loc(Location::file_line_col("test/HIR/mac.mlir", 1, 1));
        hb.extern_func(
            "mult",
            &[Type::int(32), Type::int(32)],
            &[Type::int(32)],
            &[mult_stages],
        );
        let f = hb.func(
            "mac",
            &[
                ("a", Type::int(32)),
                ("b", Type::int(32)),
                ("c", Type::int(32)),
            ],
            &[mult_stages.max(2)],
        );
        let t = f.time_var(hb.module());
        let args = f.args(hb.module());
        hb.set_loc(Location::file_line_col("test/HIR/mac.mlir", 7, 8));
        let m_val = hb.call("mult", &[args[0], args[1]], t, 0)[0];
        hb.set_loc(Location::file_line_col("test/HIR/mac.mlir", 8, 8));
        let c2 = hb.delay(args[2], 2, t, 0);
        hb.set_loc(Location::file_line_col("test/HIR/mac.mlir", 9, 10));
        let res = hb.add(m_val, c2);
        hb.return_(&[res]);
        hb.finish()
    }

    #[test]
    fn figure2_pipeline_imbalance_detected() {
        // 3-stage multiplier against a 2-cycle delay on the addend.
        let m = figure2_module(3);
        let mut diags = DiagnosticEngine::new();
        assert!(verify_schedule(&m, &mut diags).is_err());
        let text = diags.render();
        assert!(
            text.contains("Schedule error: mismatched delay (2 vs 3) in right operand!"),
            "expected the paper's Figure 2b message, got:\n{text}"
        );
        assert!(text.contains("test/HIR/mac.mlir:9:10: error:"), "{text}");
    }

    #[test]
    fn figure2_balanced_design_verifies() {
        let m = figure2_module(2);
        let mut diags = DiagnosticEngine::new();
        assert!(
            verify_schedule(&m, &mut diags).is_ok(),
            "{}",
            diags.render()
        );
    }

    #[test]
    fn port_conflict_in_pipelined_loop_detected() {
        // Two writes through ONE port at congruent offsets (mod II).
        let mut hb = HirBuilder::new();
        let f = hb.func("pc", &[], &[]);
        let t = f.time_var(hb.module());
        let (_r, w) = hb.alloc_rw(&[16], Type::int(32), MemKind::BlockRam);
        let (c0, c8, c1) = (hb.const_val(0), hb.const_val(8), hb.const_val(1));
        let lp = hb.for_loop(c0, c8, c1, t, 1, Type::int(8));
        hb.in_loop(lp, |hb, i, ti| {
            let v = hb.typed_const(1, Type::int(32));
            hb.mem_write(v, w, &[i], ti, 0);
            let i1 = hb.delay(i, 1, ti, 0);
            hb.mem_write(v, w, &[i1], ti, 1); // collides with next iteration's write
            hb.yield_at(ti, 1);
        });
        hb.return_(&[]);
        let m = hb.finish();
        let mut diags = DiagnosticEngine::new();
        assert!(verify_schedule(&m, &mut diags).is_err());
        assert!(
            diags.render().contains("same memory port"),
            "{}",
            diags.render()
        );
    }

    #[test]
    fn banked_writes_do_not_conflict() {
        use hir::types::Dim;
        // The paper's stencil window: packing=[] distributes all dims, so two
        // same-cycle writes at distinct constant indices go to distinct banks.
        let mut hb = HirBuilder::new();
        let f = hb.func("banked", &[], &[]);
        let t = f.time_var(hb.module());
        let ports = hb.alloc(
            &[Dim::Distributed(2)],
            Type::int(32),
            MemKind::Reg,
            &[Port::Read, Port::Write],
        );
        let (c0, c1) = (hb.const_val(0), hb.const_val(1));
        let v = hb.typed_const(9, Type::int(32));
        hb.mem_write(v, ports[1], &[c0], t, 2);
        hb.mem_write(v, ports[1], &[c1], t, 2);
        hb.return_(&[]);
        let m = hb.finish();
        let mut diags = DiagnosticEngine::new();
        assert!(
            verify_schedule(&m, &mut diags).is_ok(),
            "{}",
            diags.render()
        );
    }

    #[test]
    fn same_address_parallel_reads_allowed() {
        let mut hb = HirBuilder::new();
        let a = MemrefInfo::packed(&[8], Type::int(32), Port::Read, MemKind::BlockRam);
        let f = hb.func("sar", &[("A", a.to_type())], &[]);
        let t = f.time_var(hb.module());
        let args = f.args(hb.module());
        let c3 = hb.const_val(3);
        hb.mem_read(args[0], &[c3], t, 0);
        hb.mem_read(args[0], &[c3], t, 0);
        hb.return_(&[]);
        let m = hb.finish();
        let mut diags = DiagnosticEngine::new();
        assert!(
            verify_schedule(&m, &mut diags).is_ok(),
            "{}",
            diags.render()
        );
    }

    #[test]
    fn cross_scope_ancestor_use_is_legal() {
        // The transpose pattern: outer %i used inside the inner j-loop.
        let mut hb = HirBuilder::new();
        let a = MemrefInfo::packed(&[4, 4], Type::int(32), Port::Read, MemKind::BlockRam);
        let f = hb.func("x", &[("A", a.to_type())], &[]);
        let t = f.time_var(hb.module());
        let args = f.args(hb.module());
        let (c0, c4, c1) = (hb.const_val(0), hb.const_val(4), hb.const_val(1));
        let outer = hb.for_loop(c0, c4, c1, t, 1, Type::int(8));
        hb.in_loop(outer, |hb, i, ti| {
            let inner = hb.for_loop(c0, c4, c1, ti, 1, Type::int(8));
            hb.in_loop(inner, |hb, j, tj| {
                hb.mem_read(args[0], &[i, j], tj, 0);
                hb.yield_at(tj, 1);
            });
            let tf = inner.result_time(hb.module());
            hb.yield_at(tf, 1);
        });
        hb.return_(&[]);
        let m = hb.finish();
        let mut diags = DiagnosticEngine::new();
        assert!(
            verify_schedule(&m, &mut diags).is_ok(),
            "{}",
            diags.render()
        );
    }

    #[test]
    fn return_delay_mismatch_detected() {
        let mut hb = HirBuilder::new();
        let a = MemrefInfo::packed(&[4], Type::int(32), Port::Read, MemKind::BlockRam);
        let f = hb.func("r", &[("A", a.to_type())], &[5]); // declares delay 5
        let t = f.time_var(hb.module());
        let args = f.args(hb.module());
        let c0 = hb.const_val(0);
        let v = hb.mem_read(args[0], &[c0], t, 0); // valid at t+1
        hb.return_(&[v]);
        let m = hb.finish();
        let mut diags = DiagnosticEngine::new();
        assert!(verify_schedule(&m, &mut diags).is_err());
        assert!(
            diags
                .render()
                .contains("mismatched delay (1 vs 5) in return value 0"),
            "{}",
            diags.render()
        );
    }

    #[test]
    fn zero_ii_for_loop_rejected() {
        let mut hb = HirBuilder::new();
        let f = hb.func("z", &[], &[]);
        let t = f.time_var(hb.module());
        let (c0, c4, c1) = (hb.const_val(0), hb.const_val(4), hb.const_val(1));
        let lp = hb.for_loop(c0, c4, c1, t, 1, Type::int(8));
        hb.in_loop(lp, |hb, _i, ti| hb.yield_at(ti, 0));
        hb.return_(&[]);
        let m = hb.finish();
        let mut diags = DiagnosticEngine::new();
        assert!(verify_schedule(&m, &mut diags).is_err());
        assert!(
            diags.render().contains("initiation interval"),
            "{}",
            diags.render()
        );
    }

    #[test]
    fn pass_integrates_with_pass_manager() {
        let m = figure1_module(false);
        let mut pm = ir::PassManager::new();
        pm.add(SchedulePass);
        let reg = hir::hir_registry();
        let mut diags = DiagnosticEngine::new();
        let mut module = m;
        let err = pm.run(&mut module, &reg, &mut diags).unwrap_err();
        assert_eq!(err.pass_name(), "hir-schedule-verify");
        assert!(!err.is_internal(), "diagnosed failure, not a crash");
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use hir::types::{MemKind, MemrefInfo, Port};
    use hir::HirBuilder;
    use ir::{DiagnosticEngine, Type};

    #[test]
    fn same_scope_cross_root_use_is_rejected() {
        // A value produced at %t+1 consumed by an op scheduled on the loop's
        // completion time %tf: different roots in the same scope, which the
        // analysis cannot prove stable.
        let mut hb = HirBuilder::new();
        let a = MemrefInfo::packed(&[8], Type::int(32), Port::Read, MemKind::BlockRam);
        let c = a.with_port(Port::Write);
        let f = hb.func("x", &[("A", a.to_type()), ("C", c.to_type())], &[]);
        let t = f.time_var(hb.module());
        let args = f.args(hb.module());
        let (c0, c4, c1) = (hb.const_val(0), hb.const_val(4), hb.const_val(1));
        let early = hb.mem_read(args[0], &[c0], t, 0); // valid at t+1
        let lp = hb.for_loop(c0, c4, c1, t, 2, Type::int(8));
        hb.in_loop(lp, |hb, _i, ti| hb.yield_at(ti, 1));
        let tf = lp.result_time(hb.module());
        hb.mem_write(early, args[1], &[c0], tf, 0); // stale wire at %tf
        hb.return_(&[]);
        let m = hb.finish();
        let mut diags = DiagnosticEngine::new();
        assert!(verify_schedule(&m, &mut diags).is_err());
        assert!(
            diags.render().contains("different time scope"),
            "{}",
            diags.render()
        );
    }

    #[test]
    fn memref_and_time_values_cannot_be_data() {
        let mut hb = HirBuilder::new();
        let a = MemrefInfo::packed(&[8], Type::int(32), Port::Write, MemKind::BlockRam);
        let f = hb.func("y", &[("C", a.to_type())], &[]);
        let t = f.time_var(hb.module());
        let args = f.args(hb.module());
        let c0 = hb.const_val(0);
        // Write the TIME VARIABLE as data: nonsense the verifier flags.
        hb.mem_write(t, args[0], &[c0], t, 0);
        hb.return_(&[]);
        let m = hb.finish();
        let mut diags = DiagnosticEngine::new();
        assert!(verify_schedule(&m, &mut diags).is_err());
        assert!(
            diags.render().contains("time variable used as data"),
            "{}",
            diags.render()
        );
    }

    #[test]
    fn call_argument_delays_are_checked() {
        // A callee declaring arg_delays=[1] must receive its argument valid
        // one cycle after the call pulse.
        let mut hb = HirBuilder::new();
        let callee = hb.extern_func("consumer", &[Type::int(32)], &[], &[]);
        let _ = callee;
        // Patch in an arg_delays attribute on the declaration.
        let m_tmp = hb.module();
        let ext = m_tmp.top_ops()[0];
        let _ = ext;
        let f = hb.func("caller", &[("x", Type::int(32))], &[]);
        let t = f.time_var(hb.module());
        let x = f.args(hb.module())[0];
        // x is valid at t+0; a call at offset 0 passing it is fine with
        // delay 0.
        hb.call("consumer", &[x], t, 0);
        hb.return_(&[]);
        let m = hb.finish();
        let mut diags = DiagnosticEngine::new();
        assert!(
            verify_schedule(&m, &mut diags).is_ok(),
            "{}",
            diags.render()
        );
    }

    #[test]
    fn dynamic_ii_loops_get_conservative_windows() {
        // Outer loop yields on the inner %tf (dynamic II): an outer value
        // used one cycle later than defined must be rejected (window 1).
        let mut hb = HirBuilder::new();
        let a = MemrefInfo::packed(&[8], Type::int(32), Port::ReadWrite, MemKind::BlockRam);
        let f = hb.func("dynii", &[("A", a.to_type())], &[]);
        let t = f.time_var(hb.module());
        let args = f.args(hb.module());
        let (c0, c4, c1) = (hb.const_val(0), hb.const_val(4), hb.const_val(1));
        let outer = hb.for_loop(c0, c4, c1, t, 1, Type::int(8));
        hb.in_loop(outer, |hb, i, ti| {
            let inner = hb.for_loop(c0, c4, c1, ti, 1, Type::int(8));
            hb.in_loop(inner, |hb, _j, tj| hb.yield_at(tj, 1));
            let tf = inner.result_time(hb.module());
            // i is rooted in the outer scope: fine at any inner instant.
            // But an outer-scope COMPUTED value at ti+1 used at ti+2 is
            // outside the window (dynamic II -> window 1).
            let v = hb.mem_read(args[0], &[i], ti, 0); // valid ti+1
            hb.mem_write(v, args[0], &[i], ti, 2); // consumed at ti+2: stale
            hb.yield_at(tf, 1);
        });
        hb.return_(&[]);
        let m = hb.finish();
        let mut diags = DiagnosticEngine::new();
        assert!(verify_schedule(&m, &mut diags).is_err());
        assert!(
            diags.render().contains("mismatched delay (1 vs 2)"),
            "{}",
            diags.render()
        );
    }
}
