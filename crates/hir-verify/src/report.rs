//! Human- and machine-readable schedule reports (`hirc --schedule-report`).
//!
//! Reuses the facts the validity analysis ([`crate::validity`]) computes —
//! each scheduled op's root time variable, static offset and latency, each
//! loop's initiation interval, each function's pipeline depth — and renders
//! them as a JSON document (strict [`obs::json`]-parseable) plus an ASCII
//! Gantt view of the per-function timeline.
//!
//! Root naming is positional and deterministic: the function's own time
//! variable is `%t`; the k-th loop in walk order owns `%t<k>` (its iteration
//! time) and `%tf<k>` (its completion time).

use hir::ops::{self, CallOp, DelayOp, ForOp, FuncOp, MemReadOp, UnrollForOp};
use ir::{Module, OpId, SymbolTable, ValueId};
use std::collections::HashMap;
use std::fmt::Write as _;

/// One scheduled op: where it sits on its root's timeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpSchedule {
    /// Op name (`hir.mem_read`, `hir.call`, ...).
    pub op: String,
    /// Rendered source location.
    pub loc: String,
    /// Positional name of the root time variable (`%t`, `%t0`, `%tf1`, ...).
    pub root: String,
    /// The root time variable itself, for cross-checking against
    /// [`crate::validity::analyze_function`].
    pub root_value: ValueId,
    /// Static offset from the root at which the op executes.
    pub offset: i64,
    /// Cycles until the op's result is valid (delay amount, memory read
    /// latency, or the callee's declared result delay; 0 for combinational
    /// ops).
    pub latency: i64,
}

/// One loop: its iteration-time root and initiation interval.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoopSchedule {
    /// Rendered source location of the loop op.
    pub loc: String,
    /// Positional name of the loop's iteration-time root.
    pub root: String,
    /// Static initiation interval, when the yield targets the iteration
    /// time directly (`None` for dynamic-II loops).
    pub ii: Option<i64>,
}

/// Per-function timeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FunctionSchedule {
    pub name: String,
    /// Declared result delays (the function's pipeline contract).
    pub result_delays: Vec<i64>,
    /// Max of the declared result delays and every root-`%t` op's
    /// `offset + latency`: the depth of the function's pipeline.
    pub pipeline_depth: i64,
    pub loops: Vec<LoopSchedule>,
    pub ops: Vec<OpSchedule>,
}

/// The whole module's schedule report.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScheduleReport {
    pub functions: Vec<FunctionSchedule>,
}

/// Build the report for every non-external function, in module order.
pub fn schedule_report(m: &Module) -> ScheduleReport {
    let symbols = SymbolTable::build(m);
    let mut functions = Vec::new();
    for &top in m.top_ops() {
        let Some(func) = FuncOp::wrap(m, top) else {
            continue;
        };
        if func.is_external(m) {
            continue;
        }
        functions.push(function_schedule(m, func, &symbols));
    }
    ScheduleReport { functions }
}

fn function_schedule(m: &Module, func: FuncOp, symbols: &SymbolTable) -> FunctionSchedule {
    let mut roots: HashMap<ValueId, String> = HashMap::new();
    let t = func.time_var(m);
    roots.insert(t, "%t".to_string());
    let mut loops = Vec::new();
    let mut rows = Vec::new();
    let mut loop_ix = 0usize;
    for &op in m.block(func.body(m)).ops() {
        walk(
            m,
            op,
            symbols,
            &mut roots,
            &mut loops,
            &mut rows,
            &mut loop_ix,
        );
    }
    let result_delays = func.result_delays(m);
    let pipeline_depth = rows
        .iter()
        .filter(|r: &&OpSchedule| r.root_value == t)
        .map(|r| r.offset + r.latency)
        .chain(result_delays.iter().copied())
        .max()
        .unwrap_or(0);
    FunctionSchedule {
        name: func.name(m),
        result_delays,
        pipeline_depth,
        loops,
        ops: rows,
    }
}

fn walk(
    m: &Module,
    op: OpId,
    symbols: &SymbolTable,
    roots: &mut HashMap<ValueId, String>,
    loops: &mut Vec<LoopSchedule>,
    rows: &mut Vec<OpSchedule>,
    loop_ix: &mut usize,
) {
    // Loops mint two new roots; name them before the body is walked.
    if let Some(lp) = ForOp::wrap(m, op) {
        let k = *loop_ix;
        *loop_ix += 1;
        let root = format!("%t{k}");
        roots.insert(lp.iter_time(m), root.clone());
        roots.insert(lp.result_time(m), format!("%tf{k}"));
        loops.push(LoopSchedule {
            loc: m.op(op).loc().to_string(),
            root,
            ii: lp.initiation_interval(m),
        });
    } else if let Some(lp) = UnrollForOp::wrap(m, op) {
        let k = *loop_ix;
        *loop_ix += 1;
        let root = format!("%t{k}");
        let ti = lp.iter_time(m);
        roots.insert(ti, root.clone());
        roots.insert(lp.result_time(m), format!("%tf{k}"));
        let ii = (lp.yield_op(m).time(m) == ti).then(|| lp.yield_op(m).offset(m));
        loops.push(LoopSchedule {
            loc: m.op(op).loc().to_string(),
            root,
            ii,
        });
    }
    if let Some(time) = ops::time_operand(m, op) {
        rows.push(OpSchedule {
            op: m.op(op).name().as_str().to_string(),
            loc: m.op(op).loc().to_string(),
            root: roots.get(&time).cloned().unwrap_or_else(|| "?".to_string()),
            root_value: time,
            offset: ops::time_offset(m, op),
            latency: latency_of(m, op, symbols),
        });
    }
    for region in m.op(op).regions().to_vec() {
        for block in m.region(region).blocks().to_vec() {
            for o in m.block(block).ops().to_vec() {
                walk(m, o, symbols, roots, loops, rows, loop_ix);
            }
        }
    }
}

/// Cycles until the op's result is valid (0 when unknown or combinational).
fn latency_of(m: &Module, op: OpId, symbols: &SymbolTable) -> i64 {
    if let Some(d) = DelayOp::wrap(m, op) {
        return d.by(m);
    }
    if let Some(r) = MemReadOp::wrap(m, op) {
        return r.latency(m);
    }
    if let Some(c) = CallOp::wrap(m, op) {
        if let Some(callee) = symbols
            .lookup(&c.callee(m))
            .and_then(|x| FuncOp::wrap(m, x))
        {
            return callee.result_delays(m).into_iter().max().unwrap_or(0);
        }
    }
    0
}

impl ScheduleReport {
    /// Strict-parser-compatible JSON document (one object, trailing newline).
    pub fn to_json(&self) -> String {
        let esc = obs::json::escape;
        let mut out = String::from("{\"functions\":[");
        for (fi, f) in self.functions.iter().enumerate() {
            if fi > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"pipeline_depth\":{},\"result_delays\":[{}],\"loops\":[",
                esc(&f.name),
                f.pipeline_depth,
                f.result_delays
                    .iter()
                    .map(i64::to_string)
                    .collect::<Vec<_>>()
                    .join(",")
            );
            for (li, l) in f.loops.iter().enumerate() {
                if li > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"root\":\"{}\",\"loc\":\"{}\",\"ii\":{}}}",
                    esc(&l.root),
                    esc(&l.loc),
                    match l.ii {
                        Some(ii) => ii.to_string(),
                        None => "null".to_string(),
                    }
                );
            }
            out.push_str("],\"ops\":[");
            for (oi, o) in f.ops.iter().enumerate() {
                if oi > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"op\":\"{}\",\"loc\":\"{}\",\"root\":\"{}\",\"offset\":{},\"latency\":{}}}",
                    esc(&o.op),
                    esc(&o.loc),
                    esc(&o.root),
                    o.offset,
                    o.latency
                );
            }
            out.push_str("]}");
        }
        out.push_str("]}\n");
        out
    }

    /// ASCII Gantt view: one row per scheduled op, bars positioned at the
    /// op's offset on its root's timeline.
    pub fn gantt(&self) -> String {
        const MAX_BAR: i64 = 48;
        let mut out = String::new();
        for f in &self.functions {
            let _ = writeln!(
                out,
                "fn @{}  (pipeline depth {}, result delays {:?})",
                f.name, f.pipeline_depth, f.result_delays
            );
            for l in &f.loops {
                let ii = match l.ii {
                    Some(ii) => format!("II={ii}"),
                    None => "dynamic II".to_string(),
                };
                let _ = writeln!(out, "  loop {:<5} {}  [{}]", l.root, ii, l.loc);
            }
            let wop = f.ops.iter().map(|o| o.op.len()).max().unwrap_or(0).max(2);
            let wroot = f.ops.iter().map(|o| o.root.len()).max().unwrap_or(0).max(4);
            for o in &f.ops {
                let start = o.offset.clamp(0, MAX_BAR);
                let len = o.latency.max(1).min(MAX_BAR - start + 1);
                let bar: String = std::iter::repeat_n(' ', start as usize)
                    .chain(std::iter::repeat_n('#', len as usize))
                    .collect();
                let _ = writeln!(
                    out,
                    "  {:<wroot$} +{:<3} ~{:<3} {:<wop$} |{}|  {}",
                    o.root, o.offset, o.latency, o.op, bar, o.loc
                );
            }
            out.push('\n');
        }
        if self.functions.is_empty() {
            out.push_str("(no functions)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validity;
    use hir::types::{MemKind, MemrefInfo, Port};
    use hir::HirBuilder;
    use ir::{DiagnosticEngine, Type};

    fn mac_module() -> Module {
        let mut hb = HirBuilder::new();
        hb.extern_func(
            "mult",
            &[Type::int(32), Type::int(32)],
            &[Type::int(32)],
            &[2],
        );
        let f = hb.func(
            "mac",
            &[
                ("a", Type::int(32)),
                ("b", Type::int(32)),
                ("c", Type::int(32)),
            ],
            &[2],
        );
        let t = f.time_var(hb.module());
        let args = f.args(hb.module());
        let mv = hb.call("mult", &[args[0], args[1]], t, 0)[0];
        let c2 = hb.delay(args[2], 2, t, 0);
        let res = hb.add(mv, c2);
        hb.return_(&[res]);
        hb.finish()
    }

    #[test]
    fn mac_report_has_call_delay_and_depth() {
        let m = mac_module();
        let report = schedule_report(&m);
        assert_eq!(report.functions.len(), 1, "external mult excluded");
        let f = &report.functions[0];
        assert_eq!(f.name, "mac");
        assert_eq!(f.pipeline_depth, 2);
        assert_eq!(f.result_delays, vec![2]);
        let call = f.ops.iter().find(|o| o.op == hir::opname::CALL).unwrap();
        assert_eq!(
            (call.root.as_str(), call.offset, call.latency),
            ("%t", 0, 2)
        );
        let delay = f.ops.iter().find(|o| o.op == hir::opname::DELAY).unwrap();
        assert_eq!((delay.offset, delay.latency), (0, 2));
    }

    #[test]
    fn loop_report_names_roots_and_ii() {
        let mut hb = HirBuilder::new();
        let a = MemrefInfo::packed(&[16], Type::int(32), Port::Read, MemKind::BlockRam);
        let c = a.with_port(Port::Write);
        let f = hb.func("copy", &[("A", a.to_type()), ("C", c.to_type())], &[]);
        let t = f.time_var(hb.module());
        let args = f.args(hb.module());
        let (c0, c16, c1) = (hb.const_val(0), hb.const_val(16), hb.const_val(1));
        let lp = hb.for_loop(c0, c16, c1, t, 1, Type::int(8));
        hb.in_loop(lp, |hb, i, ti| {
            let v = hb.mem_read(args[0], &[i], ti, 0);
            let i1 = hb.delay(i, 1, ti, 0);
            hb.mem_write(v, args[1], &[i1], ti, 1);
            hb.yield_at(ti, 1);
        });
        hb.return_(&[]);
        let m = hb.finish();
        let report = schedule_report(&m);
        let f = &report.functions[0];
        assert_eq!(f.loops.len(), 1);
        assert_eq!(f.loops[0].root, "%t0");
        assert_eq!(f.loops[0].ii, Some(1));
        let write = f
            .ops
            .iter()
            .find(|o| o.op == hir::opname::MEM_WRITE)
            .unwrap();
        assert_eq!((write.root.as_str(), write.offset), ("%t0", 1));
        let read = f
            .ops
            .iter()
            .find(|o| o.op == hir::opname::MEM_READ)
            .unwrap();
        assert_eq!(read.latency, 1);
    }

    /// Every reported row must agree with the validity analysis: a row's
    /// `(root_value, offset + latency)` is exactly the analysis's validity
    /// for the op's first timed result.
    #[test]
    fn report_offsets_agree_with_validity_analysis() {
        for m in [mac_module()] {
            let report = schedule_report(&m);
            let symbols = ir::SymbolTable::build(&m);
            for &top in m.top_ops() {
                let Some(func) = hir::ops::FuncOp::wrap(&m, top) else {
                    continue;
                };
                if func.is_external(&m) {
                    continue;
                }
                let mut diags = DiagnosticEngine::new();
                let info = validity::analyze_function(&m, func, &symbols, &mut diags);
                assert!(!diags.has_errors(), "{}", diags.render());
                let fr = report
                    .functions
                    .iter()
                    .find(|f| f.name == func.name(&m))
                    .unwrap();
                for row in &fr.ops {
                    if row.op != hir::opname::DELAY
                        && row.op != hir::opname::MEM_READ
                        && row.op != hir::opname::CALL
                    {
                        continue;
                    }
                    // Find the op by location + name to get its result.
                    let op = m
                        .collect_all_ops()
                        .into_iter()
                        .find(|&o| {
                            m.is_live(o)
                                && m.op(o).name().as_str() == row.op
                                && m.op(o).loc().to_string() == row.loc
                        })
                        .unwrap();
                    let result = m.op(op).results()[0];
                    match info.validity.get(&result) {
                        Some(validity::Validity::At { root, offset }) => {
                            assert_eq!(*root, row.root_value, "root mismatch on {}", row.op);
                            assert_eq!(
                                *offset,
                                row.offset + row.latency,
                                "offset mismatch on {}",
                                row.op
                            );
                        }
                        other => panic!("unexpected validity {other:?} for {}", row.op),
                    }
                }
            }
        }
    }

    #[test]
    fn json_parses_strictly_and_gantt_renders() {
        let m = mac_module();
        let report = schedule_report(&m);
        let json = report.to_json();
        let v = obs::json::parse(&json).expect("strict parse");
        let funcs = v
            .as_object()
            .unwrap()
            .get("functions")
            .unwrap()
            .as_array()
            .unwrap();
        assert_eq!(funcs.len(), 1);
        let f0 = funcs[0].as_object().unwrap();
        assert_eq!(f0.get("name").unwrap().as_str(), Some("mac"));
        assert_eq!(f0.get("pipeline_depth").unwrap().as_f64(), Some(2.0));
        let gantt = report.gantt();
        assert!(gantt.contains("fn @mac"), "{gantt}");
        assert!(gantt.contains("hir.call"), "{gantt}");
    }
}
