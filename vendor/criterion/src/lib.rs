//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Supports the subset the workspace benches use: `criterion_group!` /
//! `criterion_main!`, `Criterion::benchmark_group`, `sample_size`,
//! `bench_function`, `Bencher::iter`, and `black_box`. Rather than
//! criterion's full statistical analysis it reports the median and min of
//! the collected samples — enough to eyeball regressions offline.

use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver handed to each `criterion_group!` function.
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: if self.sample_size == 0 {
                20
            } else {
                self.sample_size
            },
            _parent: std::marker::PhantomData,
        }
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let samples = if self.sample_size == 0 {
            20
        } else {
            self.sample_size
        };
        run_bench(name, samples, f);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(&format!("{}/{name}", self.name), self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` runs and times the workload.
pub struct Bencher {
    samples: Vec<Duration>,
    per_sample: usize,
}

impl Bencher {
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        for _ in 0..self.per_sample {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench(name: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        per_sample: samples.max(1),
    };
    // Warmup round (not recorded).
    let mut warm = Bencher {
        samples: Vec::new(),
        per_sample: 1,
    };
    f(&mut warm);
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name}: no samples");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let min = b.samples[0];
    println!(
        "{name}: median {median:?}, min {min:?} over {} samples",
        b.samples.len()
    );
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
