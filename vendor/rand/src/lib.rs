//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal, dependency-free implementation of exactly the API surface the
//! repo uses: `StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range` over
//! integer ranges, and `Rng::gen_bool`. The generator is a SplitMix64 —
//! deterministic, seedable, and statistically fine for test workloads
//! (it is not the upstream ChaCha12 and makes no security claims).

pub mod rngs {
    /// The standard RNG: a SplitMix64 stream.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        // Avoid the all-zero fixpoint and decorrelate small seeds.
        StdRng {
            state: state.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }
}

/// Core generation (subset of `rand::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea, Flood 2014).
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types samplable uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_range(rng: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range requires a non-empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = ((rng() as u128) % span) as i128 + lo as i128;
                v as $t
            }
        }
    )*};
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range requires a non-empty range");
                let span = (hi as u128) - (lo as u128);
                (((rng() as u128) % span) + lo as u128) as $t
            }
        }
    )*};
}

impl_sample_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, i128 => u128, isize => usize);
impl_sample_unsigned!(u8, u16, u32, u64, u128, usize);

/// High-level convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        let mut f = || self.next_u64();
        T::sample_range(&mut f, range.start, range.end)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // 53 random mantissa bits -> uniform in [0, 1).
        let v = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        v < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(va[0], c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let u = r.gen_range(0usize..9);
            assert!(u < 9);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!(0..100).map(|_| r.gen_bool(0.0)).any(|b| b));
        assert!((0..100).map(|_| r.gen_bool(1.0)).all(|b| b));
    }
}
