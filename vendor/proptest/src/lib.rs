//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal, dependency-free implementation of the API surface its tests
//! use: the [`Strategy`] trait with `prop_map` / `prop_recursive` / `boxed`,
//! integer-range and tuple strategies, [`strategy::Just`], `any::<T>()`,
//! `collection::vec`, and the `proptest!` / `prop_oneof!` / `prop_assert!` /
//! `prop_assert_eq!` macros.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! assertion message and case number only), and generation is driven by a
//! deterministic SplitMix64 stream per case, so failures reproduce across
//! runs.

pub mod test_runner {
    use std::fmt;

    /// Deterministic RNG driving value generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x5DEE_CE66_D123_4567,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0);
            self.next_u64() % bound
        }
    }

    /// Runner configuration (`cases` = number of generated inputs per test).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed property (produced by the `prop_assert*` macros).
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        pub message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Drives a property over `cases` deterministic random inputs.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config }
        }

        /// Run `f` once per case; panics (failing the enclosing `#[test]`)
        /// on the first property violation.
        pub fn run_cases<F>(&mut self, name: &str, mut f: F)
        where
            F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
        {
            for case in 0..self.config.cases {
                let mut rng = TestRng::from_seed((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                if let Err(e) = f(&mut rng) {
                    panic!(
                        "property '{name}' failed at case {case}/{}: {}",
                        self.config.cases, e.message
                    );
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::sync::Arc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F, U>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U + Clone,
        {
            Map {
                source: self,
                f,
                _out: PhantomData,
            }
        }

        /// Build recursive structures: `recurse` receives a strategy for the
        /// inner level and returns the strategy for one level up. `depth`
        /// bounds the recursion; the size/branch hints are accepted for API
        /// compatibility but unused.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                let branch = recurse(current).boxed();
                current = Union::new(vec![leaf.clone(), branch]).boxed();
            }
            current
        }

        /// Type-erase into a clonable, shareable strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy (cheap to clone).
    pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Always yields clones of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F, U> {
        source: S,
        f: F,
        _out: PhantomData<fn() -> U>,
    }

    impl<S: Clone, F: Clone, U> Clone for Map<S, F, U> {
        fn clone(&self) -> Self {
            Map {
                source: self.source.clone(),
                f: self.f.clone(),
                _out: PhantomData,
            }
        }
    }

    impl<S, F, U> Strategy for Map<S, F, U>
    where
        S: Strategy,
        F: Fn(S::Value) -> U + Clone,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Uniform choice between alternatives (the `prop_oneof!` backend).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union(self.0.clone())
        }
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union(options)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    ((rng.next_u64() as u128 % span) as i128 + self.start as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($n:ident $idx:tt),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        type Strategy: Strategy<Value = Self>;
        fn arbitrary() -> Self::Strategy;
    }

    /// Full-domain integer/bool strategy.
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(PhantomData)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = Any<$t>;
                fn arbitrary() -> Any<$t> {
                    Any::default()
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = Any<bool>;
        fn arbitrary() -> Any<bool> {
            Any::default()
        }
    }

    /// The canonical strategy for `A` (`any::<u8>()` etc.).
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length bound for collection strategies (half-open like `Range`).
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        pub lo: usize,
        pub hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of `elem` with length in `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr)
        $(#[test] fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            #[test]
            fn $name() {
                let mut runner = $crate::test_runner::TestRunner::new($cfg);
                runner.run_cases(stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(
                        &($strat), __proptest_rng);)*
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fail the current case (with an early `return Err`) when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert!` for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__pa, __pb) = (&$a, &$b);
        if !(__pa == __pb) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __pa, __pb
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__pa, __pb) = (&$a, &$b);
        if !(__pa == __pb) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                __pa, __pb,
                format!($($fmt)+)
            )));
        }
    }};
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__pa, __pb) = (&$a, &$b);
        if __pa == __pb {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                __pa, __pb
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        let s = (0u8..3, -5i64..5);
        for _ in 0..200 {
            let (a, b) = s.generate(&mut rng);
            assert!(a < 3);
            assert!((-5..5).contains(&b));
        }
    }

    #[test]
    fn union_covers_all_arms() {
        let mut rng = TestRng::from_seed(2);
        let s = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug)]
        enum T {
            Leaf(u8),
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf(_) => 1,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = any::<u8>().prop_map(T::Leaf);
        let s = leaf.prop_recursive(4, 24, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::from_seed(3);
        for _ in 0..100 {
            assert!(depth(&s.generate(&mut rng)) <= 6);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_wires_strategies_to_args(v in crate::collection::vec(0i32..10, 1..8)) {
            prop_assert!(!v.is_empty());
            prop_assert!(v.len() < 8, "len {}", v.len());
            for x in &v {
                prop_assert!((0..10).contains(x));
            }
        }
    }
}
